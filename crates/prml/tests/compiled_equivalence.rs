//! The compiled≡interpreted property suite: for arbitrary generated rule
//! sets and event streams, the compiled rule path (lock-free
//! `matched_rules` condition phase + `fire_matched` effect phase) must be
//! indistinguishable from the AST interpreter — same match counts, same
//! effects, same errors (wording included), same resulting schemas and
//! profiles — with the interpreter acting as the untouched oracle.
//!
//! The generator deliberately produces rules the checker rejects (shadowed
//! loop variables, undeclared variables, non-SUS `SetContent` targets,
//! measures used as expressions) and rules whose bodies error at runtime
//! (division by zero, type mismatches, non-collection `Foreach` sources,
//! missing parameters): rejected sets must be rejected by the compiler
//! with the identical message, and erroring firings must error
//! identically, mutating both worlds identically up to the error point.
//!
//! Each stream also exercises the engine-level lifecycle: an erroring
//! round *rolls back* both worlds to their pre-fire state (what the
//! engine's master-rollback does), and every other round *re-publishes*
//! the ruleset by recompiling it from scratch — a freshly compiled set
//! must be a drop-in replacement mid-stream.

use proptest::prelude::*;
use sdwp_geometry::{GeometricType, LineString, Point};
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, Schema, SchemaBuilder};
use sdwp_olap::{CellValue, Cube};
use sdwp_prml::pretty::print_expr;
use sdwp_prml::{
    check_rules, Action, BinaryOp, CompiledRuleSet, EvalContext, EventSpec, Expr, Rule, RuleEngine,
    RuntimeEvent, Statement, StaticLayerSource, UnaryOp,
};
use sdwp_user::{Role, Session, SpatialSelectionInterest, UserProfile};

// ----- fixtures (the paper's sales warehouse, as in the unit tests) -----

fn sales_schema() -> Schema {
    SchemaBuilder::new("SalesDW")
        .dimension(
            DimensionBuilder::new("Store")
                .level(
                    "Store",
                    vec![
                        sdwp_model::Attribute::descriptor("name", AttributeType::Text),
                        sdwp_model::Attribute::new("address", AttributeType::Text),
                    ],
                )
                .simple_level("City", "name")
                .simple_level("State", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("Time")
                .simple_level("Day", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Sales")
                .measure("UnitSales", AttributeType::Float)
                .dimension("Store")
                .dimension("Time")
                .build(),
        )
        .build()
        .unwrap()
}

fn sales_cube() -> Cube {
    let mut cube = Cube::new(sales_schema());
    for i in 0..5 {
        cube.add_dimension_member(
            "Store",
            vec![
                ("Store.name", CellValue::from(format!("S{i}"))),
                ("City.name", CellValue::from(format!("City{i}"))),
                (
                    "Store.geometry",
                    CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                ),
                (
                    "City.geometry",
                    CellValue::Geometry(Point::new(i as f64 * 10.0, 1.0).into()),
                ),
            ],
        )
        .unwrap();
    }
    cube.add_dimension_member("Time", vec![("Day.name", CellValue::from("Mon"))])
        .unwrap();
    cube
}

fn manager_profile() -> UserProfile {
    UserProfile::new("u1", "Octavio")
        .with_role(Role::new("RegionalSalesManager"))
        .with_interest(SpatialSelectionInterest::new("AirportCity"))
}

fn layers() -> StaticLayerSource {
    let mut source = StaticLayerSource::new();
    source.insert(
        "Airport",
        vec![("ALC".to_string(), Point::new(0.0, 1.0).into())],
    );
    source.insert(
        "Train",
        vec![(
            "coastal line".to_string(),
            LineString::from_tuples(&[(0.0, 1.0), (50.0, 1.0)])
                .unwrap()
                .into(),
        )],
    );
    source
}

// ----- generators -------------------------------------------------------

/// Model/user/parameter paths a generated expression may reference. Most
/// resolve; `SUS.DecisionMaker.visits` may be unset (runtime error),
/// `MD.Sales.UnitSales` is a measure (rejected in rule expressions) and
/// `s.name` references a loop variable that may not be in scope.
const PATH_POOL: [&str; 10] = [
    "SUS.DecisionMaker.dm2role.name",
    "SUS.DecisionMaker.name",
    "SUS.DecisionMaker.visits",
    "MD.Sales.Store.City",
    "MD.Sales.Store.City.name",
    "MD.Sales.Store.Store.name",
    "GeoMD.Store.City",
    "MD.Sales.UnitSales",
    "threshold",
    "s.name",
];

const TEXT_POOL: [&str; 4] = ["RegionalSalesManager", "City1", "Mon", "x"];

/// Uniformly picks one element of a static pool (the vendored proptest
/// stand-in has no `prop::sample::select`).
fn pick<T: Copy + 'static>(pool: &'static [T]) -> impl Strategy<Value = T> {
    (0..pool.len()).prop_map(move |i| pool[i])
}

fn binary_op() -> impl Strategy<Value = BinaryOp> {
    pick(&[
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::And,
        BinaryOp::Or,
    ])
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4i32..=8).prop_map(|n| Expr::Number(f64::from(n) * 0.5)),
        pick(&TEXT_POOL).prop_map(|t| Expr::Text(t.to_string())),
        any::<bool>().prop_map(Expr::Boolean),
        pick(&PATH_POOL).prop_map(Expr::path),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (pick(&[UnaryOp::Neg, UnaryOp::Not]), inner.clone()).prop_map(|(op, operand)| {
                Expr::Unary {
                    op,
                    operand: Box::new(operand),
                }
            }),
            (binary_op(), inner.clone(), inner.clone()).prop_map(|(op, left, right)| {
                Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Call {
                function: "Distance".into(),
                args: vec![a, b],
            }),
        ]
    })
}

fn action_strategy() -> impl Strategy<Value = Statement> {
    let sus_target = pick(&[
        "SUS.DecisionMaker.visits",
        "SUS.DecisionMaker.theme",
        "MD.Sales.Store", // rejected: SetContent needs a SUS path
    ])
    .prop_map(Expr::path);
    let select_target = pick(&[
        "s", // a loop variable, declared or not
        "c",
        "MD.Sales.Store.City",
        "GeoMD.Store.City",
    ])
    .prop_map(Expr::path);
    let spatial_element =
        pick(&["MD.Sales.Store.geometry", "MD.Sales.Store.City.geometry"]).prop_map(Expr::path);
    prop_oneof![
        (sus_target, expr_strategy())
            .prop_map(|(target, value)| Statement::Action(Action::SetContent { target, value })),
        select_target.prop_map(|target| Statement::Action(Action::SelectInstance { target })),
        pick(&["Airport", "Train"]).prop_map(|name| Statement::Action(Action::AddLayer {
            name: name.into(),
            geometry: GeometricType::Point,
        })),
        spatial_element.prop_map(|element| Statement::Action(Action::BecomeSpatial {
            element,
            geometry: GeometricType::Point,
        })),
    ]
}

fn loop_header() -> impl Strategy<Value = (Vec<String>, Vec<Expr>)> {
    let source = pick(&[
        "MD.Sales.Store.City",
        "MD.Sales.Store.Store",
        "GeoMD.Store.City",
        "SUS.DecisionMaker.name", // rejected: not an MD/GeoMD path
    ])
    .prop_map(Expr::path)
    .boxed();
    prop_oneof![
        source
            .clone()
            .prop_map(|s| (vec!["s".to_string()], vec![s])),
        (source.clone(), source)
            .prop_map(|(a, b)| (vec!["s".to_string(), "c".to_string()], vec![a, b])),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = Statement> {
    action_strategy().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            action_strategy(),
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2),
            )
                .prop_map(|(condition, then_branch, else_branch)| Statement::If {
                    condition,
                    then_branch,
                    else_branch,
                }),
            (loop_header(), prop::collection::vec(inner, 0..3)).prop_map(
                |((variables, sources), body)| Statement::Foreach {
                    variables,
                    sources,
                    body,
                }
            ),
        ]
    })
}

fn event_strategy() -> impl Strategy<Value = EventSpec> {
    let element = pick(&[
        "GeoMD.Store.City",
        "MD.Sales.Store.City",
        "GeoMD.Store.Store",
    ])
    .prop_map(Expr::path);
    prop_oneof![
        Just(EventSpec::SessionStart),
        Just(EventSpec::SessionEnd),
        (element, expr_strategy()).prop_map(|(element, condition)| {
            EventSpec::SpatialSelection { element, condition }
        }),
    ]
}

/// Derives the round's runtime event from a generated pick: session
/// events, or a spatial selection aimed at a generated rule's own event
/// spec (element text from the rule, expression text from its printed
/// condition when `with_expr`) so the match phase sees both hits and
/// near-misses.
fn event_for(pick: u8, with_expr: bool, rules: &[Rule]) -> RuntimeEvent {
    match pick % 4 {
        0 => RuntimeEvent::SessionStart,
        1 => RuntimeEvent::SessionEnd,
        _ => {
            let spatial = rules.iter().find_map(|rule| match &rule.event {
                EventSpec::SpatialSelection { element, condition } => Some((element, condition)),
                _ => None,
            });
            match spatial {
                Some((element, condition)) => RuntimeEvent::SpatialSelection {
                    element: print_expr(element),
                    expression: with_expr.then(|| print_expr(condition)),
                },
                None => RuntimeEvent::spatial_selection("GeoMD.Store.City"),
            }
        }
    }
}

// ----- the property -----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compiled and interpreted execution agree on arbitrary rule sets and
    /// event streams: match decisions, effects, errors (wording included),
    /// schemas and profiles — across rollback rounds (erroring firings
    /// restore the pre-fire world, like the engine's master rollback) and
    /// re-publish rounds (the ruleset is recompiled mid-stream).
    #[test]
    fn compiled_execution_matches_the_interpreter(
        specs in prop::collection::vec(
            (event_strategy(), prop::collection::vec(stmt_strategy(), 0..4)),
            1..4,
        ),
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 1..6),
        threshold in prop_oneof![Just(None), (-2.0f64..8.0).prop_map(Some)],
    ) {
        let rules: Vec<Rule> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (event, body))| Rule {
                name: format!("r{i}"),
                event,
                body,
            })
            .collect();
        let schema = sales_schema();
        let checked = check_rules(&rules, &schema);
        let mut compiled = match (checked, CompiledRuleSet::compile(&rules, &schema)) {
            (Err(check_err), Err(compile_err)) => {
                // A set the checker rejects is rejected by the compiler
                // with the identical message; nothing to fire.
                prop_assert_eq!(check_err.to_string(), compile_err.to_string());
                return Ok(());
            }
            (Ok(classes), Ok(compiled)) => {
                prop_assert_eq!(classes, compiled.classes());
                compiled
            }
            (checked, compiled) => {
                return Err(TestCaseError::fail(format!(
                    "checker and compiler disagree: {checked:?} vs {:?}",
                    compiled.map(|c| c.len())
                )))
            }
        };

        let mut engine = RuleEngine::new();
        for rule in &rules {
            engine.add_rule(rule.clone());
        }

        // Two identical worlds, advanced in lock-step; the interpreter's
        // is the oracle.
        let mut cube_i = sales_cube();
        let mut profile_i = manager_profile();
        let mut cube_c = sales_cube();
        let mut profile_c = manager_profile();
        let source = layers();
        let session = Session::start(1, "u1");

        for (round, (pick, with_expr)) in picks.iter().enumerate() {
            let event = event_for(*pick, *with_expr, &rules);
            // The pre-fire state both worlds roll back to on error (the
            // engine restores the published snapshot and drops the
            // profile clone without upserting).
            let cube_before = cube_i.clone();
            let profile_before = profile_i.clone();

            let mut ctx = EvalContext::new(&mut cube_i, &mut profile_i)
                .with_session(&session)
                .with_layer_source(&source);
            if let Some(t) = threshold {
                ctx = ctx.with_parameter("threshold", t);
            }
            let interpreted = engine.fire(&event, &mut ctx);
            drop(ctx);

            // Compiled path exactly as the engine runs it: lock-free
            // condition phase first, then the effect phase.
            let matched = compiled.matched_rules(&event);
            let mut ctx = EvalContext::new(&mut cube_c, &mut profile_c)
                .with_session(&session)
                .with_layer_source(&source);
            if let Some(t) = threshold {
                ctx = ctx.with_parameter("threshold", t);
            }
            let compiled_fired = compiled.fire_matched(&matched, &mut ctx);
            drop(ctx);

            let errored = match (interpreted, compiled_fired) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(matched.len(), a.rules_matched, "round {}", round);
                    prop_assert_eq!(&a, &b, "round {}", round);
                    false
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string(), "round {}", round);
                    true
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "round {round}: interpreter {a:?} vs compiled {b:?}"
                    )))
                }
            };

            // However the round went, both worlds mutated identically.
            prop_assert_eq!(cube_i.schema(), cube_c.schema(), "round {}", round);
            prop_assert_eq!(&profile_i, &profile_c, "round {}", round);

            if errored {
                // Rollback round: restore both worlds to the pre-fire
                // state, as the serving engine does, and keep streaming.
                cube_i = cube_before.clone();
                cube_c = cube_before;
                profile_i = profile_before.clone();
                profile_c = profile_before;
            }
            if round % 2 == 1 {
                // Re-publish round: a freshly compiled set must be a
                // drop-in replacement for the one in service.
                compiled = CompiledRuleSet::compile(&rules, &schema).unwrap();
            }
        }
    }
}
