//! Property-based tests: pretty-printing a rule and re-parsing it yields
//! the same AST, for randomly generated rules.

use proptest::prelude::*;
use sdwp_geometry::GeometricType;
use sdwp_prml::ast::{Action, BinaryOp, EventSpec, Expr, Rule, Statement};
use sdwp_prml::{parse_rule, print_rule};

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_map(|s| s)
}

fn path_strategy() -> impl Strategy<Value = Expr> {
    (
        prop_oneof![Just("SUS"), Just("MD"), Just("GeoMD")],
        prop::collection::vec(ident_strategy(), 1..4),
    )
        .prop_map(|(prefix, mut rest)| {
            let mut segments = vec![prefix.to_string()];
            segments.append(&mut rest);
            Expr::Path(segments)
        })
}

fn leaf_expr_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u32..10_000).prop_map(|n| Expr::Number(n as f64)),
        "[a-zA-Z ]{0,12}".prop_map(Expr::Text),
        any::<bool>().prop_map(Expr::Boolean),
        path_strategy(),
        prop_oneof![
            Just(GeometricType::Point),
            Just(GeometricType::Line),
            Just(GeometricType::Polygon),
            Just(GeometricType::Collection),
        ]
        .prop_map(Expr::GeometricType),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr_strategy().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::Ge),
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, left, right)| Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                }),
            (
                prop_oneof![Just("Distance"), Just("Intersection"), Just("Inside")],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(function, a, b)| Expr::Call {
                    function: function.to_string(),
                    args: vec![a, b],
                }),
        ]
    })
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (path_strategy(), leaf_expr_strategy())
            .prop_map(|(target, value)| Action::SetContent { target, value }),
        ident_strategy().prop_map(|v| Action::SelectInstance {
            target: Expr::Path(vec![v]),
        }),
        (path_strategy(), Just(GeometricType::Point))
            .prop_map(|(element, geometry)| Action::BecomeSpatial { element, geometry }),
        (ident_strategy(), Just(GeometricType::Line))
            .prop_map(|(name, geometry)| Action::AddLayer { name, geometry }),
    ]
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    let action = action_strategy().prop_map(Statement::Action);
    action.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (expr_strategy(), prop::collection::vec(inner.clone(), 1..3)).prop_map(
                |(condition, then_branch)| Statement::If {
                    condition,
                    then_branch,
                    else_branch: Vec::new(),
                }
            ),
            (
                ident_strategy(),
                path_strategy(),
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(variable, source, body)| Statement::Foreach {
                    variables: vec![variable],
                    sources: vec![source],
                    body,
                }),
        ]
    })
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        ident_strategy(),
        prop_oneof![
            Just(EventSpec::SessionStart),
            Just(EventSpec::SessionEnd),
            (path_strategy(), expr_strategy()).prop_map(|(element, condition)| {
                EventSpec::SpatialSelection { element, condition }
            }),
        ],
        prop::collection::vec(statement_strategy(), 0..4),
    )
        .prop_map(|(name, event, body)| Rule { name, event, body })
}

/// Keywords that cannot be used as identifiers without confusing the
/// parser; generated rules containing them as names are discarded.
fn uses_reserved_words(rule: &Rule) -> bool {
    const RESERVED: [&str; 20] = [
        "Rule",
        "When",
        "do",
        "endWhen",
        "If",
        "then",
        "else",
        "endIf",
        "Foreach",
        "in",
        "endForeach",
        "SetContent",
        "SelectInstance",
        "BecomeSpatial",
        "AddLayer",
        "and",
        "or",
        "not",
        "true",
        "false",
    ];
    fn expr_has_reserved(expr: &Expr) -> bool {
        match expr {
            Expr::Path(segments) => segments
                .iter()
                .any(|s| RESERVED.iter().any(|r| r.eq_ignore_ascii_case(s))),
            Expr::Binary { left, right, .. } => expr_has_reserved(left) || expr_has_reserved(right),
            Expr::Unary { operand, .. } => expr_has_reserved(operand),
            Expr::Call { args, .. } => args.iter().any(expr_has_reserved),
            Expr::Text(t) => t.contains('\''),
            _ => false,
        }
    }
    fn statement_has_reserved(statement: &Statement) -> bool {
        match statement {
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                expr_has_reserved(condition)
                    || then_branch.iter().any(statement_has_reserved)
                    || else_branch.iter().any(statement_has_reserved)
            }
            Statement::Foreach {
                variables,
                sources,
                body,
            } => {
                variables
                    .iter()
                    .any(|v| RESERVED.iter().any(|r| r.eq_ignore_ascii_case(v)))
                    || sources.iter().any(expr_has_reserved)
                    || body.iter().any(statement_has_reserved)
            }
            Statement::Action(action) => match action {
                Action::SetContent { target, value } => {
                    expr_has_reserved(target) || expr_has_reserved(value)
                }
                Action::SelectInstance { target } => expr_has_reserved(target),
                Action::BecomeSpatial { element, .. } => expr_has_reserved(element),
                Action::AddLayer { name, .. } => {
                    name.contains('\'') || RESERVED.iter().any(|r| r.eq_ignore_ascii_case(name))
                }
            },
        }
    }
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(&rule.name))
        || match &rule.event {
            EventSpec::SpatialSelection { element, condition } => {
                expr_has_reserved(element) || expr_has_reserved(condition)
            }
            _ => false,
        }
        || rule.body.iter().any(statement_has_reserved)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printed_rules_reparse_to_the_same_ast(rule in rule_strategy()) {
        prop_assume!(!uses_reserved_words(&rule));
        let printed = print_rule(&rule);
        let reparsed = parse_rule(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- printed ---\n{printed}")))?;
        prop_assert_eq!(rule, reparsed, "round trip changed the AST:\n{}", printed);
    }
}
