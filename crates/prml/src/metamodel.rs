//! The PRML-for-SDW metamodel (Fig. 5 of the paper).
//!
//! The paper defines PRML through a MOF metamodel and extends it for SDW
//! systems with spatial operators, spatial events and schema-changing
//! actions. This module names those metaclasses and classifies parsed AST
//! nodes against them, so tests (and EXPERIMENTS.md) can demonstrate that
//! every metamodel element of Fig. 5 is constructible and reachable from
//! the concrete syntax.

use crate::ast::{Action, EventSpec, Expr, Rule, Statement};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The metaclasses of the adapted PRML metamodel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetaClass {
    /// The `Rule` metaclass — root of every personalization rule.
    Rule,
    /// The start-session event.
    SessionStartEvent,
    /// The end-session event.
    SessionEndEvent,
    /// The spatial-selection tracking event (new in the SDW adaptation).
    SpatialSelectionEvent,
    /// The condition part of a rule (boolean expression).
    Condition,
    /// Path expressions navigating the SUS / MD / GeoMD models.
    PathExpression,
    /// Boolean expressions (comparisons, and/or/not).
    BooleanExpression,
    /// Arithmetic expressions.
    ArithmeticExpression,
    /// The topological operators returning booleans
    /// (Intersect, Disjoint, Cross, Inside, Equals).
    TopologicalOperator,
    /// The `Distance` operator returning a number.
    DistanceOperator,
    /// The `Intersection` operator returning a geometry collection.
    IntersectionOperator,
    /// The `SetContent` acquisition action.
    SetContentAction,
    /// The `SelectInstance` instance-personalization action.
    SelectInstanceAction,
    /// The `BecomeSpatial` schema-personalization action (new).
    BecomeSpatialAction,
    /// The `AddLayer` schema-personalization action (new).
    AddLayerAction,
    /// The `Foreach` iteration construct.
    ForeachStatement,
    /// The `If` conditional construct.
    IfStatement,
}

impl MetaClass {
    /// Every metaclass of the adapted metamodel.
    pub const ALL: [MetaClass; 17] = [
        MetaClass::Rule,
        MetaClass::SessionStartEvent,
        MetaClass::SessionEndEvent,
        MetaClass::SpatialSelectionEvent,
        MetaClass::Condition,
        MetaClass::PathExpression,
        MetaClass::BooleanExpression,
        MetaClass::ArithmeticExpression,
        MetaClass::TopologicalOperator,
        MetaClass::DistanceOperator,
        MetaClass::IntersectionOperator,
        MetaClass::SetContentAction,
        MetaClass::SelectInstanceAction,
        MetaClass::BecomeSpatialAction,
        MetaClass::AddLayerAction,
        MetaClass::ForeachStatement,
        MetaClass::IfStatement,
    ];

    /// Returns `true` for the metaclasses added by the paper's SDW
    /// adaptation (spatial operators, spatial event, schema actions).
    pub fn is_sdw_extension(&self) -> bool {
        matches!(
            self,
            MetaClass::SpatialSelectionEvent
                | MetaClass::TopologicalOperator
                | MetaClass::DistanceOperator
                | MetaClass::IntersectionOperator
                | MetaClass::BecomeSpatialAction
                | MetaClass::AddLayerAction
        )
    }
}

/// The names of the topological operators of §4.2.3.
pub const TOPOLOGICAL_OPERATORS: [&str; 7] = [
    "Intersect",
    "Disjoint",
    "Cross",
    "Inside",
    "Equals",
    "Contains",
    "Touches",
];

/// Returns the set of metaclasses instantiated by a rule.
pub fn classify_rule(rule: &Rule) -> BTreeSet<MetaClass> {
    let mut set = BTreeSet::new();
    set.insert(MetaClass::Rule);
    match &rule.event {
        EventSpec::SessionStart => {
            set.insert(MetaClass::SessionStartEvent);
        }
        EventSpec::SessionEnd => {
            set.insert(MetaClass::SessionEndEvent);
        }
        EventSpec::SpatialSelection { element, condition } => {
            set.insert(MetaClass::SpatialSelectionEvent);
            classify_expr(element, &mut set);
            classify_expr(condition, &mut set);
        }
    }
    classify_statements(&rule.body, &mut set);
    set
}

fn classify_statements(statements: &[Statement], set: &mut BTreeSet<MetaClass>) {
    for statement in statements {
        match statement {
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                set.insert(MetaClass::IfStatement);
                set.insert(MetaClass::Condition);
                classify_expr(condition, set);
                classify_statements(then_branch, set);
                classify_statements(else_branch, set);
            }
            Statement::Foreach { sources, body, .. } => {
                set.insert(MetaClass::ForeachStatement);
                for s in sources {
                    classify_expr(s, set);
                }
                classify_statements(body, set);
            }
            Statement::Action(action) => {
                match action {
                    Action::SetContent { target, value } => {
                        set.insert(MetaClass::SetContentAction);
                        classify_expr(target, set);
                        classify_expr(value, set);
                    }
                    Action::SelectInstance { target } => {
                        set.insert(MetaClass::SelectInstanceAction);
                        classify_expr(target, set);
                    }
                    Action::BecomeSpatial { element, .. } => {
                        set.insert(MetaClass::BecomeSpatialAction);
                        classify_expr(element, set);
                    }
                    Action::AddLayer { .. } => {
                        set.insert(MetaClass::AddLayerAction);
                    }
                };
            }
        }
    }
}

fn classify_expr(expr: &Expr, set: &mut BTreeSet<MetaClass>) {
    match expr {
        Expr::Path(_) => {
            set.insert(MetaClass::PathExpression);
        }
        Expr::Binary { op, left, right } => {
            if op.is_comparison()
                || matches!(op, crate::ast::BinaryOp::And | crate::ast::BinaryOp::Or)
            {
                set.insert(MetaClass::BooleanExpression);
            } else {
                set.insert(MetaClass::ArithmeticExpression);
            }
            classify_expr(left, set);
            classify_expr(right, set);
        }
        Expr::Unary { operand, .. } => {
            set.insert(MetaClass::BooleanExpression);
            classify_expr(operand, set);
        }
        Expr::Call { function, args } => {
            if function.eq_ignore_ascii_case("Distance") {
                set.insert(MetaClass::DistanceOperator);
            } else if function.eq_ignore_ascii_case("Intersection") {
                set.insert(MetaClass::IntersectionOperator);
            } else if TOPOLOGICAL_OPERATORS
                .iter()
                .any(|op| function.eq_ignore_ascii_case(op))
            {
                set.insert(MetaClass::TopologicalOperator);
            }
            for a in args {
                classify_expr(a, set);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::*;
    use crate::parser::{parse_rule, parse_rules};

    #[test]
    fn example_5_1_instantiates_schema_action_metaclasses() {
        let rule = parse_rule(EXAMPLE_5_1_ADD_SPATIALITY).unwrap();
        let classes = classify_rule(&rule);
        for expected in [
            MetaClass::Rule,
            MetaClass::SessionStartEvent,
            MetaClass::IfStatement,
            MetaClass::Condition,
            MetaClass::PathExpression,
            MetaClass::BooleanExpression,
            MetaClass::AddLayerAction,
            MetaClass::BecomeSpatialAction,
        ] {
            assert!(classes.contains(&expected), "missing {expected:?}");
        }
    }

    #[test]
    fn example_5_3_instantiates_spatial_metaclasses() {
        let rule_a = parse_rule(EXAMPLE_5_3_INT_AIRPORT_CITY).unwrap();
        let classes_a = classify_rule(&rule_a);
        assert!(classes_a.contains(&MetaClass::SpatialSelectionEvent));
        assert!(classes_a.contains(&MetaClass::DistanceOperator));
        assert!(classes_a.contains(&MetaClass::SetContentAction));
        assert!(classes_a.contains(&MetaClass::ArithmeticExpression));

        let rule_b = parse_rule(EXAMPLE_5_3_TRAIN_AIRPORT_CITY).unwrap();
        let classes_b = classify_rule(&rule_b);
        assert!(classes_b.contains(&MetaClass::IntersectionOperator));
        assert!(classes_b.contains(&MetaClass::ForeachStatement));
        assert!(classes_b.contains(&MetaClass::SelectInstanceAction));
    }

    #[test]
    fn paper_corpus_covers_most_of_the_metamodel() {
        // Figure 5 coverage: the four published rules instantiate every
        // metaclass except SessionEnd and the pure topological operators
        // (which the paper lists but does not use in an example).
        let mut covered = BTreeSet::new();
        for text in ALL_PAPER_RULES {
            covered.extend(classify_rule(&parse_rule(text).unwrap()));
        }
        let missing: Vec<MetaClass> = MetaClass::ALL
            .iter()
            .copied()
            .filter(|c| !covered.contains(c))
            .collect();
        assert_eq!(
            missing,
            vec![MetaClass::SessionEndEvent, MetaClass::TopologicalOperator]
        );
        // Both are exercised by an additional rule.
        let extra = parse_rules(
            "Rule:cleanup When SessionEnd do \
             If (Inside(GeoMD.Store.geometry, GeoMD.Airport.geometry)) then \
             SelectInstance(GeoMD.Store) endIf endWhen",
        )
        .unwrap();
        covered.extend(classify_rule(&extra[0]));
        assert_eq!(
            MetaClass::ALL
                .iter()
                .filter(|c| !covered.contains(c))
                .count(),
            0
        );
    }

    #[test]
    fn sdw_extension_flags() {
        assert!(MetaClass::SpatialSelectionEvent.is_sdw_extension());
        assert!(MetaClass::AddLayerAction.is_sdw_extension());
        assert!(!MetaClass::Rule.is_sdw_extension());
        assert!(!MetaClass::IfStatement.is_sdw_extension());
        assert_eq!(MetaClass::ALL.len(), 17);
    }
}
