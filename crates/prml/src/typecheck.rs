//! Static validation of rules against an MD/GeoMD schema.

use crate::ast::{Action, EventSpec, Expr, Rule, Statement};
use crate::error::PrmlError;
use crate::metamodel::TOPOLOGICAL_OPERATORS;
use sdwp_model::{PathExpr, PathPrefix, PathResolver, Schema};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The personalization stage a rule belongs to (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleClass {
    /// The rule changes the schema (contains `AddLayer` / `BecomeSpatial`);
    /// it runs in the first stage, turning the MD model into a GeoMD model.
    Schema,
    /// The rule selects instances (contains `SelectInstance`); it runs in
    /// the second stage, producing the personalized SDW instance.
    Instance,
    /// The rule only acquires knowledge about the user (`SetContent`).
    Acquisition,
    /// The rule contains no actions at all.
    Inert,
}

/// Classifies a rule by the actions it contains. A rule containing both
/// schema and instance actions (like Example 5.3's TrainAirportCity) is
/// classified as a schema rule because its schema effects must be applied
/// before its selections make sense.
pub fn classify(rule: &Rule) -> RuleClass {
    let actions = rule.actions();
    if actions.is_empty() {
        return RuleClass::Inert;
    }
    let has_schema = actions
        .iter()
        .any(|a| matches!(a, Action::AddLayer { .. } | Action::BecomeSpatial { .. }));
    let has_instance = actions
        .iter()
        .any(|a| matches!(a, Action::SelectInstance { .. }));
    if has_schema {
        RuleClass::Schema
    } else if has_instance {
        RuleClass::Instance
    } else {
        RuleClass::Acquisition
    }
}

/// Validates a rule against a schema. Checks:
///
/// * every `MD.` / `GeoMD.` path resolves against the schema, *after*
///   taking into account the layers and spatial levels the rule itself
///   introduces (`AddLayer` / `BecomeSpatial`);
/// * loop variables are declared before use and not shadowed;
/// * spatial operators are called with the right number of arguments;
/// * `SetContent` targets a `SUS.` path (user-model property);
/// * geometric types in actions are well-formed (guaranteed by parsing).
///
/// Returns the rule's [`RuleClass`] on success.
pub fn check_rule(rule: &Rule, schema: &Schema) -> Result<RuleClass, PrmlError> {
    // Apply the rule's own schema actions to a scratch copy of the schema so
    // that later references (e.g. `GeoMD.Train` right after
    // `AddLayer('Train', LINE)`) resolve.
    let mut effective = schema.clone();
    for action in rule.actions() {
        match action {
            Action::AddLayer { name, geometry } => {
                let _ = effective.add_layer(name.clone(), *geometry);
            }
            Action::BecomeSpatial { element, geometry } => {
                if let Some(level) = become_spatial_level(element) {
                    let _ = effective.become_spatial(&level, *geometry);
                }
            }
            _ => {}
        }
    }

    let mut checker = Checker {
        rule: rule.name.clone(),
        schema: &effective,
        variables: HashSet::new(),
    };
    match &rule.event {
        EventSpec::SpatialSelection { element, condition } => {
            checker.check_expr(element)?;
            checker.check_expr(condition)?;
        }
        EventSpec::SessionStart | EventSpec::SessionEnd => {}
    }
    checker.check_statements(&rule.body)?;
    Ok(classify(rule))
}

/// Extracts the level name targeted by a `BecomeSpatial` path: the last
/// segment before a trailing `geometry`, e.g.
/// `MD.Sales.Store.geometry` → `Store`.
pub fn become_spatial_level(element: &Expr) -> Option<String> {
    let segments = element.as_path()?;
    let mut segs: Vec<&String> = segments.iter().collect();
    if segs
        .last()
        .map(|s| s.eq_ignore_ascii_case("geometry"))
        .unwrap_or(false)
    {
        segs.pop();
    }
    segs.last().map(|s| s.to_string())
}

struct Checker<'a> {
    rule: String,
    schema: &'a Schema,
    variables: HashSet<String>,
}

impl Checker<'_> {
    fn error(&self, message: impl Into<String>) -> PrmlError {
        PrmlError::Check {
            rule: self.rule.clone(),
            message: message.into(),
        }
    }

    fn check_statements(&mut self, statements: &[Statement]) -> Result<(), PrmlError> {
        for statement in statements {
            match statement {
                Statement::If {
                    condition,
                    then_branch,
                    else_branch,
                } => {
                    self.check_expr(condition)?;
                    self.check_statements(then_branch)?;
                    self.check_statements(else_branch)?;
                }
                Statement::Foreach {
                    variables,
                    sources,
                    body,
                } => {
                    for source in sources {
                        self.check_expr(source)?;
                        if let Some(path) = source.as_path() {
                            if !is_model_path(path) {
                                return Err(self.error(format!(
                                    "Foreach source '{}' must be an MD or GeoMD path",
                                    path.join(".")
                                )));
                            }
                        }
                    }
                    let mut introduced = Vec::new();
                    for v in variables {
                        if !self.variables.insert(v.clone()) {
                            return Err(self
                                .error(format!("loop variable '{v}' shadows an outer variable")));
                        }
                        introduced.push(v.clone());
                    }
                    self.check_statements(body)?;
                    for v in introduced {
                        self.variables.remove(&v);
                    }
                }
                Statement::Action(action) => self.check_action(action)?,
            }
        }
        Ok(())
    }

    fn check_action(&mut self, action: &Action) -> Result<(), PrmlError> {
        match action {
            Action::SetContent { target, value } => {
                let Some(path) = target.as_path() else {
                    return Err(self.error("SetContent target must be a path expression"));
                };
                if !path
                    .first()
                    .map(|p| p.eq_ignore_ascii_case("SUS"))
                    .unwrap_or(false)
                {
                    return Err(self.error(format!(
                        "SetContent target '{}' must be a SUS (user model) path",
                        path.join(".")
                    )));
                }
                self.check_expr(value)
            }
            Action::SelectInstance { target } => {
                // The target is either a loop variable or a model path.
                match target.as_path() {
                    Some(path) if path.len() == 1 => {
                        let var = &path[0];
                        if !self.variables.contains(var) {
                            return Err(self.error(format!(
                                "SelectInstance target '{var}' is not a declared loop variable"
                            )));
                        }
                        Ok(())
                    }
                    Some(path) if is_model_path(path) => self.check_model_path(path),
                    Some(path) => Err(self.error(format!(
                        "SelectInstance target '{}' is neither a loop variable nor a model path",
                        path.join(".")
                    ))),
                    None => Err(self.error("SelectInstance target must be a path or variable")),
                }
            }
            Action::BecomeSpatial { element, .. } => {
                let Some(path) = element.as_path() else {
                    return Err(self.error("BecomeSpatial element must be a path expression"));
                };
                let level = become_spatial_level(element)
                    .ok_or_else(|| self.error("BecomeSpatial element path is empty"))?;
                if self.schema.find_level(&level).is_none()
                    && self.schema.dimension(&level).is_none()
                {
                    return Err(self.error(format!(
                        "BecomeSpatial targets unknown level '{level}' (path '{}')",
                        path.join(".")
                    )));
                }
                Ok(())
            }
            Action::AddLayer { name, .. } => {
                if name.trim().is_empty() {
                    return Err(self.error("AddLayer needs a non-empty layer name"));
                }
                Ok(())
            }
        }
    }

    fn check_expr(&self, expr: &Expr) -> Result<(), PrmlError> {
        match expr {
            Expr::Path(path) => {
                if path.len() == 1 {
                    // A bare identifier: loop variable or designer parameter.
                    return Ok(());
                }
                let head = &path[0];
                if head.eq_ignore_ascii_case("SUS") {
                    // SUS paths are resolved at runtime against the profile;
                    // only structural sanity is checked here.
                    if path.len() < 2 {
                        return Err(self.error("SUS path needs at least a user segment"));
                    }
                    return Ok(());
                }
                if is_model_path(path) {
                    return self.check_model_path(path);
                }
                // Variable property access (s.geometry, c.name).
                if self.variables.contains(head) {
                    return Ok(());
                }
                Err(self.error(format!(
                    "'{}' is neither a model path (MD/GeoMD/SUS) nor a declared variable",
                    path.join(".")
                )))
            }
            Expr::Binary { left, right, .. } => {
                self.check_expr(left)?;
                self.check_expr(right)
            }
            Expr::Unary { operand, .. } => self.check_expr(operand),
            Expr::Call { function, args } => {
                let arity_ok = if function.eq_ignore_ascii_case("Distance") {
                    (1..=2).contains(&args.len())
                } else if function.eq_ignore_ascii_case("Intersection")
                    || TOPOLOGICAL_OPERATORS
                        .iter()
                        .any(|op| function.eq_ignore_ascii_case(op))
                {
                    args.len() == 2
                } else if ["Length", "Area", "Centroid"]
                    .iter()
                    .any(|f| function.eq_ignore_ascii_case(f))
                {
                    args.len() == 1
                } else {
                    return Err(self.error(format!("unknown operator '{function}'")));
                };
                if !arity_ok {
                    return Err(self.error(format!(
                        "operator '{function}' called with {} arguments",
                        args.len()
                    )));
                }
                for a in args {
                    self.check_expr(a)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn check_model_path(&self, path: &[String]) -> Result<(), PrmlError> {
        let prefix = PathPrefix::parse(&path[0]).unwrap_or(PathPrefix::Md);
        let expr = PathExpr::new(prefix, path[1..].to_vec());
        match PathResolver::new(self.schema).resolve(&expr) {
            Ok(_) => Ok(()),
            // Referencing the geometry of a level that is not (yet) spatial
            // is accepted statically: the warehouse already stores the
            // geometry data and a schema rule may introduce the spatiality
            // before this rule runs (Fig. 1's two-stage process).
            Err(sdwp_model::ModelError::NotSpatial { .. }) => Ok(()),
            Err(e) => Err(self.error(e.to_string())),
        }
    }
}

/// Validates a rule set as a whole, following the paper's two-stage process
/// (Fig. 1): the schema effects of *every* rule (AddLayer / BecomeSpatial)
/// are applied to a scratch schema first, then each rule is checked against
/// that effective GeoMD schema. This lets instance and acquisition rules
/// reference layers that earlier schema rules introduce.
///
/// Returns the classification of each rule, in input order.
pub fn check_rules(rules: &[Rule], schema: &Schema) -> Result<Vec<RuleClass>, PrmlError> {
    let effective = augmented_schema(rules, schema);
    rules
        .iter()
        .map(|rule| check_rule(rule, &effective))
        .collect()
}

/// Applies the schema effects (`AddLayer` / `BecomeSpatial`) of every rule
/// to a copy of the schema — the effective GeoMD schema the two-stage
/// process of Fig. 1 produces. [`check_rules`] validates against it, and
/// the rule compiler resolves paths against the same schema so both agree
/// on what a fully personalized warehouse looks like.
pub fn augmented_schema(rules: &[Rule], schema: &Schema) -> Schema {
    let mut effective = schema.clone();
    for rule in rules {
        for action in rule.actions() {
            match action {
                Action::AddLayer { name, geometry } => {
                    let _ = effective.add_layer(name.clone(), *geometry);
                }
                Action::BecomeSpatial { element, geometry } => {
                    if let Some(level) = become_spatial_level(element) {
                        let _ = effective.become_spatial(&level, *geometry);
                    }
                }
                _ => {}
            }
        }
    }
    effective
}

fn is_model_path(path: &[String]) -> bool {
    path.first()
        .map(|p| p.eq_ignore_ascii_case("MD") || p.eq_ignore_ascii_case("GeoMD"))
        .unwrap_or(false)
        && path.len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::*;
    use crate::parser::parse_rule;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    /// The Fig. 2 sales schema (no spatiality yet).
    fn md_schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .simple_level("State", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Customer")
                    .simple_level("Customer", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Product")
                    .simple_level("Product", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .simple_level("Day", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure("StoreCost", AttributeType::Float)
                    .measure("StoreSales", AttributeType::Float)
                    .dimension("Store")
                    .dimension("Customer")
                    .dimension("Product")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn paper_rules_validate_against_the_sales_schema() {
        let schema = md_schema();
        let rules: Vec<Rule> = ALL_PAPER_RULES
            .iter()
            .map(|t| parse_rule(t).unwrap())
            .collect();
        // Checked as a set: the Airport layer added by rule 5.1 is visible
        // to the later rules, mirroring the two-stage process of Fig. 1.
        check_rules(&rules, &schema).unwrap();
    }

    #[test]
    fn classification_matches_the_papers_stages() {
        let schema = md_schema();
        let rules: Vec<Rule> = ALL_PAPER_RULES
            .iter()
            .map(|t| parse_rule(t).unwrap())
            .collect();
        let classes = check_rules(&rules, &schema).unwrap();
        assert_eq!(
            classes,
            vec![
                RuleClass::Schema,      // 5.1 addSpatiality
                RuleClass::Instance,    // 5.2 5kmStores
                RuleClass::Acquisition, // 5.3 IntAirportCity
                RuleClass::Schema,      // 5.3 TrainAirportCity (adds the Train layer)
            ]
        );
    }

    #[test]
    fn inert_rule_classification() {
        let rule = parse_rule("Rule:noop When SessionEnd do endWhen").unwrap();
        assert_eq!(classify(&rule), RuleClass::Inert);
    }

    #[test]
    fn unknown_model_path_is_rejected() {
        let schema = md_schema();
        let rule = parse_rule(
            "Rule:bad When SessionStart do \
             If (MD.Sales.Warehouse.name = 'x') then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        let err = check_rule(&rule, &schema).unwrap_err();
        assert!(matches!(err, PrmlError::Check { .. }));
    }

    #[test]
    fn undeclared_variable_is_rejected() {
        let schema = md_schema();
        let rule = parse_rule("Rule:bad When SessionStart do SelectInstance(s) endWhen").unwrap();
        assert!(check_rule(&rule, &schema).is_err());
        // Variable property access outside a loop is also rejected.
        let rule2 = parse_rule(
            "Rule:bad2 When SessionStart do \
             If (Distance(s.geometry, MD.Sales.Store.name) < 5) then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        assert!(check_rule(&rule2, &schema).is_err());
    }

    #[test]
    fn set_content_must_target_the_user_model() {
        let schema = md_schema();
        let rule =
            parse_rule("Rule:bad When SessionStart do SetContent(MD.Sales.UnitSales, 1) endWhen")
                .unwrap();
        assert!(check_rule(&rule, &schema).is_err());
        let ok = parse_rule(
            "Rule:ok When SessionStart do SetContent(SUS.DecisionMaker.theme, 'dark') endWhen",
        )
        .unwrap();
        assert_eq!(check_rule(&ok, &schema).unwrap(), RuleClass::Acquisition);
    }

    #[test]
    fn operator_arity_is_checked() {
        let schema = md_schema();
        let bad = parse_rule(
            "Rule:bad When SessionStart do \
             If (Inside(MD.Sales.Store.name) = true) then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        assert!(check_rule(&bad, &schema).is_err());
        let unknown = parse_rule(
            "Rule:bad2 When SessionStart do \
             If (Buffer(MD.Sales.Store.name, 5) = true) then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        assert!(check_rule(&unknown, &schema).is_err());
    }

    #[test]
    fn become_spatial_unknown_level_is_rejected() {
        let schema = md_schema();
        let rule = parse_rule(
            "Rule:bad When SessionStart do BecomeSpatial(MD.Sales.Warehouse.geometry, POINT) endWhen",
        )
        .unwrap();
        assert!(check_rule(&rule, &schema).is_err());
    }

    #[test]
    fn shadowed_loop_variable_is_rejected() {
        let schema = md_schema();
        let rule = parse_rule(
            "Rule:bad When SessionStart do \
             Foreach s in (GeoMD.Store) Foreach s in (GeoMD.Store) SelectInstance(s) endForeach endForeach endWhen",
        )
        .unwrap();
        assert!(check_rule(&rule, &schema).is_err());
    }

    #[test]
    fn become_spatial_level_extraction() {
        assert_eq!(
            become_spatial_level(&Expr::path("MD.Sales.Store.geometry")),
            Some("Store".to_string())
        );
        assert_eq!(
            become_spatial_level(&Expr::path("GeoMD.Store.City")),
            Some("City".to_string())
        );
        assert_eq!(become_spatial_level(&Expr::Number(1.0)), None);
    }
}
