//! Recursive-descent parser for PRML rule text.

use crate::ast::{Action, BinaryOp, EventSpec, Expr, Rule, Statement, UnaryOp};
use crate::error::{PrmlError, SourcePos};
use crate::lexer::{tokenize, SpannedToken, Token};
use sdwp_geometry::GeometricType;

/// Parses a single rule from text.
pub fn parse_rule(input: &str) -> Result<Rule, PrmlError> {
    let rules = parse_rules(input)?;
    match rules.len() {
        1 => Ok(rules.into_iter().next().expect("length checked")),
        n => Err(PrmlError::Parse {
            pos: SourcePos::default(),
            message: format!("expected exactly one rule, found {n}"),
        }),
    }
}

/// Parses a sequence of rules from text.
pub fn parse_rules(input: &str) -> Result<Vec<Rule>, PrmlError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, index: 0 };
    let mut rules = Vec::new();
    while !parser.at_end() {
        rules.push(parser.parse_rule()?);
    }
    Ok(rules)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    index: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    fn pos(&self) -> SourcePos {
        self.tokens
            .get(self.index)
            .or_else(|| self.tokens.last())
            .map(|t| t.pos)
            .unwrap_or_default()
    }

    fn error(&self, message: impl Into<String>) -> PrmlError {
        PrmlError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.index).map(|t| t.token.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn expect_token(&mut self, expected: &Token, what: &str) -> Result<(), PrmlError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.index += 1;
                Ok(())
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    /// Peeks whether the next token is the given keyword (case-insensitive).
    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(keyword))
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), PrmlError> {
        if self.peek_keyword(keyword) {
            self.index += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected keyword '{keyword}'")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, PrmlError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.index = self.index.saturating_sub(1);
                Err(self.error(format!("expected {what}")))
            }
        }
    }

    // Rule := 'Rule' ':' name 'When' event 'do' statements 'endWhen'
    fn parse_rule(&mut self) -> Result<Rule, PrmlError> {
        self.expect_keyword("Rule")?;
        self.expect_token(&Token::Colon, "':' after 'Rule'")?;
        let name = self.expect_ident("a rule name")?;
        self.expect_keyword("When")?;
        let event = self.parse_event()?;
        self.expect_keyword("do")?;
        let body = self.parse_statements(&["endWhen"])?;
        self.expect_keyword("endWhen")?;
        Ok(Rule { name, event, body })
    }

    fn parse_event(&mut self) -> Result<EventSpec, PrmlError> {
        if self.peek_keyword("SessionStart") {
            self.index += 1;
            return Ok(EventSpec::SessionStart);
        }
        if self.peek_keyword("SessionEnd") {
            self.index += 1;
            return Ok(EventSpec::SessionEnd);
        }
        if self.peek_keyword("SpatialSelection") {
            self.index += 1;
            self.expect_token(&Token::LParen, "'(' after SpatialSelection")?;
            let element = self.parse_expr()?;
            self.expect_token(&Token::Comma, "',' between element and condition")?;
            let condition = self.parse_expr()?;
            self.expect_token(&Token::RParen, "')' closing SpatialSelection")?;
            return Ok(EventSpec::SpatialSelection { element, condition });
        }
        Err(self.error(
            "expected an event: SessionStart, SessionEnd or SpatialSelection(element, condition)",
        ))
    }

    /// Parses statements until one of the stop keywords is reached (the
    /// stop keyword itself is not consumed).
    fn parse_statements(&mut self, stops: &[&str]) -> Result<Vec<Statement>, PrmlError> {
        let mut statements = Vec::new();
        loop {
            if self.at_end() {
                return Err(self.error(format!("expected one of {stops:?} before end of input")));
            }
            if stops.iter().any(|s| self.peek_keyword(s)) {
                return Ok(statements);
            }
            statements.push(self.parse_statement()?);
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, PrmlError> {
        if self.peek_keyword("If") {
            self.index += 1;
            self.expect_token(&Token::LParen, "'(' after If")?;
            let condition = self.parse_expr()?;
            self.expect_token(&Token::RParen, "')' closing the If condition")?;
            self.expect_keyword("then")?;
            let then_branch = self.parse_statements(&["endIf", "else"])?;
            let else_branch = if self.peek_keyword("else") {
                self.index += 1;
                self.parse_statements(&["endIf"])?
            } else {
                Vec::new()
            };
            self.expect_keyword("endIf")?;
            return Ok(Statement::If {
                condition,
                then_branch,
                else_branch,
            });
        }
        if self.peek_keyword("Foreach") {
            self.index += 1;
            let mut variables = vec![self.expect_ident("a loop variable")?];
            while self.peek() == Some(&Token::Comma) {
                self.index += 1;
                variables.push(self.expect_ident("a loop variable")?);
            }
            self.expect_keyword("in")?;
            self.expect_token(&Token::LParen, "'(' before the Foreach sources")?;
            let mut sources = vec![self.parse_expr()?];
            while self.peek() == Some(&Token::Comma) {
                self.index += 1;
                sources.push(self.parse_expr()?);
            }
            self.expect_token(&Token::RParen, "')' after the Foreach sources")?;
            if variables.len() != sources.len() {
                return Err(self.error(format!(
                    "Foreach declares {} variables but {} sources",
                    variables.len(),
                    sources.len()
                )));
            }
            let body = self.parse_statements(&["endForeach"])?;
            self.expect_keyword("endForeach")?;
            return Ok(Statement::Foreach {
                variables,
                sources,
                body,
            });
        }
        // Actions.
        if self.peek_keyword("SetContent") {
            self.index += 1;
            self.expect_token(&Token::LParen, "'(' after SetContent")?;
            let target = self.parse_expr()?;
            self.expect_token(&Token::Comma, "',' between property and value")?;
            let value = self.parse_expr()?;
            self.expect_token(&Token::RParen, "')' closing SetContent")?;
            return Ok(Statement::Action(Action::SetContent { target, value }));
        }
        if self.peek_keyword("SelectInstance") {
            self.index += 1;
            self.expect_token(&Token::LParen, "'(' after SelectInstance")?;
            let target = self.parse_expr()?;
            self.expect_token(&Token::RParen, "')' closing SelectInstance")?;
            return Ok(Statement::Action(Action::SelectInstance { target }));
        }
        if self.peek_keyword("BecomeSpatial") {
            self.index += 1;
            self.expect_token(&Token::LParen, "'(' after BecomeSpatial")?;
            let element = self.parse_expr()?;
            self.expect_token(&Token::Comma, "',' between element and geometric type")?;
            let geometry = self.parse_geometric_type()?;
            self.expect_token(&Token::RParen, "')' closing BecomeSpatial")?;
            return Ok(Statement::Action(Action::BecomeSpatial {
                element,
                geometry,
            }));
        }
        if self.peek_keyword("AddLayer") {
            self.index += 1;
            self.expect_token(&Token::LParen, "'(' after AddLayer")?;
            let name = match self.advance() {
                Some(Token::Text(s)) => s,
                Some(Token::Ident(s)) => s,
                _ => return Err(self.error("expected a layer name")),
            };
            self.expect_token(&Token::Comma, "',' between layer name and geometric type")?;
            let geometry = self.parse_geometric_type()?;
            self.expect_token(&Token::RParen, "')' closing AddLayer")?;
            return Ok(Statement::Action(Action::AddLayer { name, geometry }));
        }
        Err(self.error(
            "expected a statement: If, Foreach, SetContent, SelectInstance, BecomeSpatial or AddLayer",
        ))
    }

    fn parse_geometric_type(&mut self) -> Result<GeometricType, PrmlError> {
        let ident = self.expect_ident("a geometric type (POINT, LINE, POLYGON, COLLECTION)")?;
        GeometricType::parse(&ident).ok_or_else(|| {
            self.error(format!(
                "unknown geometric type '{ident}' (expected POINT, LINE, POLYGON or COLLECTION)"
            ))
        })
    }

    // Expressions, precedence climbing: or < and < comparison < additive <
    // multiplicative < unary < primary.
    fn parse_expr(&mut self) -> Result<Expr, PrmlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, PrmlError> {
        let mut left = self.parse_and()?;
        while self.peek_keyword("or") {
            self.index += 1;
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, PrmlError> {
        let mut left = self.parse_comparison()?;
        while self.peek_keyword("and") {
            self.index += 1;
            let right = self.parse_comparison()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> Result<Expr, PrmlError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::Ne) => Some(BinaryOp::Ne),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.index += 1;
                let right = self.parse_additive()?;
                Ok(Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, PrmlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.index += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, PrmlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.index += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, PrmlError> {
        if self.peek() == Some(&Token::Minus) {
            self.index += 1;
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.peek_keyword("not") {
            self.index += 1;
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, PrmlError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.index += 1;
                Ok(Expr::Number(n))
            }
            Some(Token::Text(s)) => {
                self.index += 1;
                Ok(Expr::Text(s))
            }
            Some(Token::LParen) => {
                self.index += 1;
                let inner = self.parse_expr()?;
                self.expect_token(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Ident(ident)) => {
                self.index += 1;
                // Literals.
                if ident.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Boolean(true));
                }
                if ident.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Boolean(false));
                }
                if let Some(g) = parse_geometric_literal(&ident) {
                    return Ok(Expr::GeometricType(g));
                }
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.index += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.parse_expr()?);
                        while self.peek() == Some(&Token::Comma) {
                            self.index += 1;
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_token(&Token::RParen, "')' closing the argument list")?;
                    return Ok(Expr::Call {
                        function: ident,
                        args,
                    });
                }
                // Dotted path (or bare identifier).
                let mut segments = vec![ident];
                while self.peek() == Some(&Token::Dot) {
                    self.index += 1;
                    segments.push(self.expect_ident("a path segment after '.'")?);
                }
                Ok(Expr::Path(segments))
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

/// Recognises upper-case geometric-type literals only (so that a loop
/// variable named `line` keeps working as a path).
fn parse_geometric_literal(ident: &str) -> Option<GeometricType> {
    if ident.chars().all(|c| c.is_ascii_uppercase()) {
        GeometricType::parse(ident)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::corpus::{
        EXAMPLE_5_1_ADD_SPATIALITY as EXAMPLE_5_1, EXAMPLE_5_2_5KM_STORES as EXAMPLE_5_2,
        EXAMPLE_5_3_INT_AIRPORT_CITY as EXAMPLE_5_3A,
        EXAMPLE_5_3_TRAIN_AIRPORT_CITY as EXAMPLE_5_3B,
    };

    #[test]
    fn parses_example_5_1() {
        let rule = parse_rule(EXAMPLE_5_1).unwrap();
        assert_eq!(rule.name, "addSpatiality");
        assert_eq!(rule.event, EventSpec::SessionStart);
        assert_eq!(rule.body.len(), 1);
        let actions = rule.actions();
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            Action::AddLayer { name, geometry: GeometricType::Point } if name == "Airport"
        ));
        assert!(matches!(actions[1], Action::BecomeSpatial { .. }));
        // The condition compares the role path against the literal.
        match &rule.body[0] {
            Statement::If { condition, .. } => match condition {
                Expr::Binary {
                    op: BinaryOp::Eq,
                    left,
                    right,
                } => {
                    assert!(left.has_prefix("SUS"));
                    assert_eq!(**right, Expr::Text("RegionalSalesManager".into()));
                }
                other => panic!("unexpected condition {other:?}"),
            },
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn parses_example_5_2() {
        let rule = parse_rule(EXAMPLE_5_2).unwrap();
        assert_eq!(rule.name, "5kmStores");
        match &rule.body[0] {
            Statement::Foreach {
                variables,
                sources,
                body,
            } => {
                assert_eq!(variables, &vec!["s".to_string()]);
                assert!(sources[0].has_prefix("GeoMD"));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected Foreach, got {other:?}"),
        }
    }

    #[test]
    fn parses_example_5_3a() {
        let rule = parse_rule(EXAMPLE_5_3A).unwrap();
        assert_eq!(rule.name, "IntAirportCity");
        match &rule.event {
            EventSpec::SpatialSelection { element, condition } => {
                assert!(element.has_prefix("GeoMD"));
                assert!(matches!(
                    condition,
                    Expr::Binary {
                        op: BinaryOp::Lt,
                        ..
                    }
                ));
            }
            other => panic!("expected SpatialSelection, got {other:?}"),
        }
        assert_eq!(rule.actions().len(), 1);
    }

    #[test]
    fn parses_example_5_3b() {
        let rule = parse_rule(EXAMPLE_5_3B).unwrap();
        assert_eq!(rule.name, "TrainAirportCity");
        let actions = rule.actions();
        assert_eq!(actions.len(), 2); // AddLayer + SelectInstance
                                      // The inner Foreach iterates three variables over three sources.
        match &rule.body[0] {
            Statement::If { then_branch, .. } => match &then_branch[1] {
                Statement::Foreach {
                    variables, sources, ..
                } => {
                    assert_eq!(variables.len(), 3);
                    assert_eq!(sources.len(), 3);
                }
                other => panic!("expected Foreach, got {other:?}"),
            },
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn parses_multiple_rules() {
        let text = format!("{EXAMPLE_5_1}\n{EXAMPLE_5_3A}");
        let rules = parse_rules(&text).unwrap();
        assert_eq!(rules.len(), 2);
        assert!(parse_rule(&text).is_err()); // parse_rule demands exactly one
    }

    #[test]
    fn operator_precedence() {
        let rule = parse_rule(
            "Rule:p When SessionStart do If (1 + 2 * 3 = 7) then AddLayer('x', POINT) endIf endWhen",
        )
        .unwrap();
        match &rule.body[0] {
            Statement::If { condition, .. } => match condition {
                Expr::Binary {
                    op: BinaryOp::Eq,
                    left,
                    ..
                } => match &**left {
                    Expr::Binary {
                        op: BinaryOp::Add,
                        right,
                        ..
                    } => {
                        assert!(matches!(
                            **right,
                            Expr::Binary {
                                op: BinaryOp::Mul,
                                ..
                            }
                        ));
                    }
                    other => panic!("expected Add at the top of the left side, got {other:?}"),
                },
                other => panic!("expected Eq, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn boolean_connectives_and_not() {
        let rule = parse_rule(
            "Rule:b When SessionStart do \
             If (true and not false or 1 < 2) then AddLayer('x', LINE) endIf endWhen",
        )
        .unwrap();
        match &rule.body[0] {
            Statement::If { condition, .. } => {
                assert!(matches!(
                    condition,
                    Expr::Binary {
                        op: BinaryOp::Or,
                        ..
                    }
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn else_branch() {
        let rule = parse_rule(
            "Rule:e When SessionStart do \
             If (true) then AddLayer('a', POINT) else AddLayer('b', LINE) endIf endWhen",
        )
        .unwrap();
        match &rule.body[0] {
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_rule("").is_err());
        assert!(parse_rule("Rule addSpatiality When SessionStart do endWhen").is_err());
        assert!(parse_rule("Rule:x When BogusEvent do endWhen").is_err());
        assert!(parse_rule("Rule:x When SessionStart do If (true) then endWhen").is_err());
        assert!(
            parse_rule("Rule:x When SessionStart do AddLayer('a', SPHERE) endIf endWhen").is_err()
        );
        assert!(parse_rule(
            "Rule:x When SessionStart do Foreach a, b in (GeoMD.Store) endForeach endWhen"
        )
        .is_err());
        assert!(parse_rule("Rule:x When SessionStart do SelectInstance(s endWhen").is_err());
    }

    #[test]
    fn geometric_literals_are_case_sensitive() {
        // Upper-case POINT is a literal; lower-case 'point' stays a path so
        // loop variables and attribute names are not hijacked.
        let rule = parse_rule(
            "Rule:g When SessionStart do If (point = 1) then AddLayer('a', POINT) endIf endWhen",
        )
        .unwrap();
        match &rule.body[0] {
            Statement::If {
                condition: Expr::Binary { left, .. },
                ..
            } => {
                assert_eq!(left.as_path().unwrap(), &["point".to_string()]);
            }
            _ => unreachable!(),
        }
    }
}
