//! The personalization rules published in the paper (Section 5), verbatim.
//!
//! These constants are shared by unit tests, integration tests, examples
//! and benchmarks so the whole repository exercises exactly the rule text
//! the paper presents.

/// Example 5.1 — *Spatial Schema Rule*: when a regional sales manager logs
/// in, add the Airport layer and make the Store level spatial.
pub const EXAMPLE_5_1_ADD_SPATIALITY: &str = "\
Rule:addSpatiality When SessionStart do
If (SUS.DecisionMaker.dm2role.name=
'RegionalSalesManager') then
AddLayer('Airport', POINT)
BecomeSpatial(MD.Sales.Store.geometry, POINT)
endIf
endWhen";

/// Example 5.2 — *Spatial Instance Rule*: keep only the stores at less than
/// 5 km of the decision maker's location.
pub const EXAMPLE_5_2_5KM_STORES: &str = "\
Rule:5kmStores When SessionStart do
Foreach s in (GeoMD.Store)
If(Distance(s.geometry,
SUS.DecisionMaker.dm2session.s2location.geometry)
<5km)
then
SelectInstance(s)
endIf
endForeach
endWhen";

/// Example 5.3 (first rule) — *Spatial User Interest Rule*: every time the
/// user selects cities at less than 20 km of an airport, increment the
/// AirportCity interest degree.
pub const EXAMPLE_5_3_INT_AIRPORT_CITY: &str = "\
Rule:IntAirportCity When
SpatialSelection(GeoMD.Store.City,
Distance(GeoMD.Store.City.geometry,
GeoMD.Airport.geometry)<20km) do
SetContent(SUS.DecisionMaker.dm2airportcity.degree,
SUS.DecisionMaker.dm2airportcity.degree+1)
endWhen";

/// Example 5.3 (second rule) — once the AirportCity interest exceeds the
/// designer-defined threshold, add the Train layer and also select the
/// cities with a good train connection to an airport.
pub const EXAMPLE_5_3_TRAIN_AIRPORT_CITY: &str = "\
Rule:TrainAirportCity When SessionStart do
If (SUS.DecisionMaker.dm2airportcity.degree
>threshold) then
AddLayer('Train', LINE)
Foreach t, c, a in ( GeoMD.Train, GeoMD.Store.City,
GeoMD.Airport)
If(Distance(Intersection(Intersection(t.geometry,
c.geometry),a.geometry))<50km) then
SelectInstance(c)
endIf
endForeach
endIf
endWhen";

/// Every rule of the paper, in presentation order.
pub const ALL_PAPER_RULES: [&str; 4] = [
    EXAMPLE_5_1_ADD_SPATIALITY,
    EXAMPLE_5_2_5KM_STORES,
    EXAMPLE_5_3_INT_AIRPORT_CITY,
    EXAMPLE_5_3_TRAIN_AIRPORT_CITY,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn every_paper_rule_parses() {
        for text in ALL_PAPER_RULES {
            let rule = parse_rule(text).unwrap_or_else(|e| panic!("{e}\nin rule:\n{text}"));
            assert!(!rule.name.is_empty());
        }
    }

    #[test]
    fn paper_rule_names() {
        let names: Vec<String> = ALL_PAPER_RULES
            .iter()
            .map(|t| parse_rule(t).unwrap().name)
            .collect();
        assert_eq!(
            names,
            vec![
                "addSpatiality",
                "5kmStores",
                "IntAirportCity",
                "TrainAirportCity"
            ]
        );
    }
}
