//! Pretty-printer: renders the AST back to PRML concrete syntax.
//!
//! The printer is the inverse of the parser up to whitespace and layout:
//! `parse(pretty(parse(text)))` equals `parse(text)`, which the
//! property-based tests in `tests/prml_roundtrip.rs` verify.

use crate::ast::{Action, EventSpec, Expr, Rule, Statement, UnaryOp};
use std::fmt::Write as _;

/// Renders a rule as PRML text.
pub fn print_rule(rule: &Rule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Rule:{} When {} do",
        rule.name,
        print_event(&rule.event)
    );
    print_statements(&rule.body, 1, &mut out);
    out.push_str("endWhen\n");
    out
}

/// Renders an event specification.
pub fn print_event(event: &EventSpec) -> String {
    match event {
        EventSpec::SessionStart => "SessionStart".to_string(),
        EventSpec::SessionEnd => "SessionEnd".to_string(),
        EventSpec::SpatialSelection { element, condition } => format!(
            "SpatialSelection({}, {})",
            print_expr(element),
            print_expr(condition)
        ),
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_statements(statements: &[Statement], level: usize, out: &mut String) {
    for statement in statements {
        match statement {
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                indent(level, out);
                let _ = writeln!(out, "If ({}) then", print_expr(condition));
                print_statements(then_branch, level + 1, out);
                if !else_branch.is_empty() {
                    indent(level, out);
                    out.push_str("else\n");
                    print_statements(else_branch, level + 1, out);
                }
                indent(level, out);
                out.push_str("endIf\n");
            }
            Statement::Foreach {
                variables,
                sources,
                body,
            } => {
                indent(level, out);
                let srcs: Vec<String> = sources.iter().map(print_expr).collect();
                let _ = writeln!(
                    out,
                    "Foreach {} in ({})",
                    variables.join(", "),
                    srcs.join(", ")
                );
                print_statements(body, level + 1, out);
                indent(level, out);
                out.push_str("endForeach\n");
            }
            Statement::Action(action) => {
                indent(level, out);
                let _ = writeln!(out, "{}", print_action(action));
            }
        }
    }
}

/// Renders an action.
pub fn print_action(action: &Action) -> String {
    match action {
        Action::SetContent { target, value } => {
            format!("SetContent({}, {})", print_expr(target), print_expr(value))
        }
        Action::SelectInstance { target } => format!("SelectInstance({})", print_expr(target)),
        Action::BecomeSpatial { element, geometry } => {
            format!("BecomeSpatial({}, {})", print_expr(element), geometry)
        }
        Action::AddLayer { name, geometry } => format!("AddLayer('{name}', {geometry})"),
    }
}

/// Renders an expression. Parentheses are emitted around every binary
/// operation so the output re-parses with identical associativity.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Expr::Text(s) => format!("'{s}'"),
        Expr::Boolean(b) => b.to_string(),
        Expr::GeometricType(g) => g.to_string(),
        Expr::Path(segments) => segments.join("."),
        Expr::Binary { op, left, right } => format!(
            "({} {} {})",
            print_expr(left),
            op.symbol(),
            print_expr(right)
        ),
        Expr::Unary { op, operand } => match op {
            UnaryOp::Neg => format!("(-{})", print_expr(operand)),
            UnaryOp::Not => format!("(not {})", print_expr(operand)),
        },
        Expr::Call { function, args } => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            format!("{function}({})", rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::ALL_PAPER_RULES;
    use crate::parser::parse_rule;

    #[test]
    fn paper_rules_round_trip() {
        for text in ALL_PAPER_RULES {
            let original = parse_rule(text).unwrap();
            let printed = print_rule(&original);
            let reparsed = parse_rule(&printed)
                .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{printed}"));
            assert_eq!(original, reparsed, "round trip changed the AST:\n{printed}");
        }
    }

    #[test]
    fn expressions_render_readably() {
        let rule = parse_rule(crate::corpus::EXAMPLE_5_2_5KM_STORES).unwrap();
        let printed = print_rule(&rule);
        assert!(printed.contains("Rule:5kmStores When SessionStart do"));
        assert!(printed.contains("Foreach s in (GeoMD.Store)"));
        assert!(printed.contains("SelectInstance(s)"));
        assert!(printed
            .contains("Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry)"));
        assert!(printed.trim_end().ends_with("endWhen"));
    }

    #[test]
    fn literals_and_unary() {
        assert_eq!(print_expr(&Expr::Number(5.0)), "5");
        assert_eq!(print_expr(&Expr::Number(2.5)), "2.5");
        assert_eq!(print_expr(&Expr::Text("x".into())), "'x'");
        assert_eq!(print_expr(&Expr::Boolean(true)), "true");
        assert_eq!(
            print_expr(&Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(Expr::Boolean(false))
            }),
            "(not false)"
        );
        assert_eq!(
            print_expr(&Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(Expr::Number(3.0))
            }),
            "(-3)"
        );
    }

    #[test]
    fn actions_render() {
        assert_eq!(
            print_action(&Action::AddLayer {
                name: "Airport".into(),
                geometry: sdwp_geometry::GeometricType::Point
            }),
            "AddLayer('Airport', POINT)"
        );
        assert_eq!(
            print_action(&Action::SelectInstance {
                target: Expr::path("s")
            }),
            "SelectInstance(s)"
        );
    }
}
