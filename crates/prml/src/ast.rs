//! Abstract syntax tree for PRML-for-SDW rules.

use sdwp_geometry::GeometricType;
use serde::{Deserialize, Serialize};

/// A complete personalization rule: `Rule:<name> When <event> do <body>
/// endWhen`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule name.
    pub name: String,
    /// The triggering event.
    pub event: EventSpec,
    /// The body statements executed when the event fires (and conditions
    /// hold).
    pub body: Vec<Statement>,
}

/// The event part of a rule (the paper's tracking events, §4.2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventSpec {
    /// Triggered when the user logs in and the analysis session starts.
    SessionStart,
    /// Triggered when the analysis session ends.
    SessionEnd,
    /// Triggered when the user selects instances of `element` satisfying
    /// the spatial expression `condition`.
    SpatialSelection {
        /// The GeoMD element being selected (a path expression).
        element: Expr,
        /// The spatial expression that must be satisfied.
        condition: Expr,
    },
}

/// A statement in a rule body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `If (<condition>) then <then> [else <else>] endIf`
    If {
        /// The condition expression.
        condition: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Statement>,
        /// Statements executed otherwise.
        else_branch: Vec<Statement>,
    },
    /// `Foreach v1, v2 in (source1, source2) <body> endForeach`
    ///
    /// The sources are iterated as a cartesian product, matching the
    /// paper's Example 5.3 which iterates trains × cities × airports.
    Foreach {
        /// The loop variable names.
        variables: Vec<String>,
        /// The iterable sources (one per variable).
        sources: Vec<Expr>,
        /// The loop body.
        body: Vec<Statement>,
    },
    /// A personalization action.
    Action(Action),
}

/// The personalization actions of §4.2.4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// `SetContent(property, value)` — update the user model (or another
    /// model property).
    SetContent {
        /// The property to update (a path expression).
        target: Expr,
        /// The new value.
        value: Expr,
    },
    /// `SelectInstance(i)` — keep instance `i` in the personalized view.
    SelectInstance {
        /// The instance to select (a loop variable or path).
        target: Expr,
    },
    /// `BecomeSpatial(element, geometricType)` — attach a geometric
    /// description to an MD element.
    BecomeSpatial {
        /// The element to make spatial (a path expression).
        element: Expr,
        /// The geometric type to attach.
        geometry: GeometricType,
    },
    /// `AddLayer('name', geometricType)` — add an external thematic layer.
    AddLayer {
        /// The layer name.
        name: String,
        /// The layer's geometric type.
        geometry: GeometricType,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
}

impl BinaryOp {
    /// The concrete-syntax spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
        }
    }

    /// Returns `true` for comparison operators (which produce booleans).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical negation.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal (unit suffixes already normalised to km).
    Number(f64),
    /// A single-quoted string literal.
    Text(String),
    /// A boolean literal.
    Boolean(bool),
    /// A geometric-type literal (POINT, LINE, POLYGON, COLLECTION).
    GeometricType(GeometricType),
    /// A dotted path: either a model path (`SUS.…`, `MD.…`, `GeoMD.…`), a
    /// loop-variable access (`s.geometry`) or a bare identifier (a
    /// designer-defined parameter such as `threshold`).
    Path(Vec<String>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// A function call (Distance, Intersection, Intersect, Inside, …).
    Call {
        /// Function name as written.
        function: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a path from dotted text.
    pub fn path(text: &str) -> Expr {
        Expr::Path(text.split('.').map(|s| s.trim().to_string()).collect())
    }

    /// The path segments when this expression is a path.
    pub fn as_path(&self) -> Option<&[String]> {
        match self {
            Expr::Path(segments) => Some(segments),
            _ => None,
        }
    }

    /// Returns `true` when the expression is a model path with the given
    /// prefix (case-insensitive).
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.as_path()
            .and_then(|s| s.first())
            .map(|head| head.eq_ignore_ascii_case(prefix))
            .unwrap_or(false)
    }

    /// Collects every path expression in this expression tree.
    pub fn collect_paths<'a>(&'a self, out: &mut Vec<&'a [String]>) {
        match self {
            Expr::Path(segments) => out.push(segments),
            Expr::Binary { left, right, .. } => {
                left.collect_paths(out);
                right.collect_paths(out);
            }
            Expr::Unary { operand, .. } => operand.collect_paths(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_paths(out);
                }
            }
            _ => {}
        }
    }
}

impl Rule {
    /// Collects every action in the rule body (recursively).
    pub fn actions(&self) -> Vec<&Action> {
        fn walk<'a>(statements: &'a [Statement], out: &mut Vec<&'a Action>) {
            for s in statements {
                match s {
                    Statement::Action(a) => out.push(a),
                    Statement::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, out);
                        walk(else_branch, out);
                    }
                    Statement::Foreach { body, .. } => walk(body, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_path_helpers() {
        let p = Expr::path("SUS.DecisionMaker.dm2role.name");
        assert_eq!(p.as_path().unwrap().len(), 4);
        assert!(p.has_prefix("sus"));
        assert!(!p.has_prefix("MD"));
        assert!(Expr::Number(1.0).as_path().is_none());
        assert!(!Expr::Number(1.0).has_prefix("SUS"));
    }

    #[test]
    fn collect_paths_walks_the_tree() {
        let e = Expr::Binary {
            op: BinaryOp::Lt,
            left: Box::new(Expr::Call {
                function: "Distance".into(),
                args: vec![
                    Expr::path("s.geometry"),
                    Expr::path("GeoMD.Airport.geometry"),
                ],
            }),
            right: Box::new(Expr::Number(5.0)),
        };
        let mut paths = Vec::new();
        e.collect_paths(&mut paths);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn operator_metadata() {
        assert_eq!(BinaryOp::Le.symbol(), "<=");
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }

    #[test]
    fn rule_actions_are_collected_recursively() {
        let rule = Rule {
            name: "r".into(),
            event: EventSpec::SessionStart,
            body: vec![Statement::If {
                condition: Expr::Boolean(true),
                then_branch: vec![
                    Statement::Action(Action::AddLayer {
                        name: "Airport".into(),
                        geometry: GeometricType::Point,
                    }),
                    Statement::Foreach {
                        variables: vec!["s".into()],
                        sources: vec![Expr::path("GeoMD.Store")],
                        body: vec![Statement::Action(Action::SelectInstance {
                            target: Expr::path("s"),
                        })],
                    },
                ],
                else_branch: vec![Statement::Action(Action::SetContent {
                    target: Expr::path("SUS.DecisionMaker.theme"),
                    value: Expr::Text("plain".into()),
                })],
            }],
        };
        assert_eq!(rule.actions().len(), 3);
    }
}
