//! Expression evaluation.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::error::PrmlError;
use crate::eval::context::EvalContext;
use crate::eval::value::{InstanceRef, InstanceSource, Value};
use sdwp_geometry::{distance, intersection, measures, predicates, Geometry, GeometryCollection};
use sdwp_model::{PathExpr, PathPrefix, PathResolver, PathTarget};
use sdwp_olap::cube::{attribute_column, geometry_column};
use sdwp_user::{resolve_sus_path, SusPath};

/// Evaluates an expression in the given context.
pub fn evaluate(expr: &Expr, ctx: &EvalContext<'_>) -> Result<Value, PrmlError> {
    match expr {
        Expr::Number(n) => Ok(Value::Number(*n)),
        Expr::Text(s) => Ok(Value::Text(s.clone())),
        Expr::Boolean(b) => Ok(Value::Boolean(*b)),
        Expr::GeometricType(g) => Ok(Value::GeometricType(*g)),
        Expr::Path(segments) => evaluate_path(segments, ctx),
        Expr::Unary { op, operand } => {
            let value = evaluate(operand, ctx)?;
            unary_value(*op, &value)
        }
        Expr::Binary { op, left, right } => evaluate_binary(*op, left, right, ctx),
        Expr::Call { function, args } => evaluate_call(function, args, ctx),
    }
}

/// Evaluates an expression and requires a boolean result (rule conditions).
pub fn evaluate_condition(expr: &Expr, ctx: &EvalContext<'_>) -> Result<bool, PrmlError> {
    let value = evaluate(expr, ctx)?;
    value.as_bool().ok_or_else(|| {
        PrmlError::eval(
            "",
            format!(
                "condition evaluated to {} instead of a boolean",
                value.type_name()
            ),
        )
    })
}

pub(crate) fn type_error(expected: &str, found: &Value) -> PrmlError {
    PrmlError::eval(
        "",
        format!("expected a {expected}, found {}", found.type_name()),
    )
}

fn evaluate_binary(
    op: BinaryOp,
    left: &Expr,
    right: &Expr,
    ctx: &EvalContext<'_>,
) -> Result<Value, PrmlError> {
    let lhs = evaluate(left, ctx)?;
    let rhs = evaluate(right, ctx)?;
    binary_values(op, &lhs, &rhs)
}

/// Applies a unary operator to an already-evaluated operand — the single
/// semantic kernel shared by the AST interpreter and the compiled
/// instruction stream, so the two paths cannot drift apart.
pub(crate) fn unary_value(op: UnaryOp, value: &Value) -> Result<Value, PrmlError> {
    match op {
        UnaryOp::Neg => value
            .as_number()
            .map(|n| Value::Number(-n))
            .ok_or_else(|| type_error("number", value)),
        UnaryOp::Not => value
            .as_bool()
            .map(|b| Value::Boolean(!b))
            .ok_or_else(|| type_error("boolean", value)),
    }
}

/// Applies a binary operator to already-evaluated operands (both sides are
/// always evaluated first — `And`/`Or` do not short-circuit). Shared by
/// the interpreter and the compiled executor, including constant folding
/// at compile time.
pub(crate) fn binary_values(op: BinaryOp, lhs: &Value, rhs: &Value) -> Result<Value, PrmlError> {
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
            let a = lhs.as_number().ok_or_else(|| type_error("number", lhs))?;
            let b = rhs.as_number().ok_or_else(|| type_error("number", rhs))?;
            let result = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(PrmlError::eval("", "division by zero"));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Number(result))
        }
        BinaryOp::And | BinaryOp::Or => {
            let a = lhs.as_bool().ok_or_else(|| type_error("boolean", lhs))?;
            let b = rhs.as_bool().ok_or_else(|| type_error("boolean", rhs))?;
            Ok(Value::Boolean(if op == BinaryOp::And {
                a && b
            } else {
                a || b
            }))
        }
        BinaryOp::Eq | BinaryOp::Ne => {
            let equal = values_equal(lhs, rhs);
            Ok(Value::Boolean(if op == BinaryOp::Eq {
                equal
            } else {
                !equal
            }))
        }
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            let ordering = compare_values(lhs, rhs).ok_or_else(|| {
                PrmlError::eval(
                    "",
                    format!(
                        "cannot order {} against {}",
                        lhs.type_name(),
                        rhs.type_name()
                    ),
                )
            })?;
            use std::cmp::Ordering::*;
            let result = match op {
                BinaryOp::Lt => ordering == Less,
                BinaryOp::Le => ordering != Greater,
                BinaryOp::Gt => ordering == Greater,
                BinaryOp::Ge => ordering != Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(result))
        }
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => (x - y).abs() < 1e-12,
        (Value::Text(x), Value::Text(y)) => x == y,
        (Value::Boolean(x), Value::Boolean(y)) => x == y,
        (Value::GeometricType(x), Value::GeometricType(y)) => x == y,
        (Value::Geometry(x), Value::Geometry(y)) => predicates::equals(x, y),
        (Value::Instance(x), Value::Instance(y)) => x == y,
        (Value::Null, Value::Null) => true,
        _ => false,
    }
}

fn compare_values(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Text(x), Value::Text(y)) => Some(x.cmp(y)),
        _ => {
            let x = a.as_number()?;
            let y = b.as_number()?;
            x.partial_cmp(&y)
        }
    }
}

fn evaluate_path(segments: &[String], ctx: &EvalContext<'_>) -> Result<Value, PrmlError> {
    let head = segments
        .first()
        .ok_or_else(|| PrmlError::eval("", "empty path expression"))?;

    // 1. SUS.* — the user model.
    if head.eq_ignore_ascii_case("SUS") {
        let path =
            SusPath::parse(&segments.join(".")).map_err(|e| PrmlError::eval("", e.to_string()))?;
        let value = resolve_sus_path(ctx.profile, ctx.session, &path)
            .map_err(|e| PrmlError::eval("", e.to_string()))?;
        return Ok(Value::from_user(value));
    }

    // 2. MD.* / GeoMD.* — the multidimensional model.
    if head.eq_ignore_ascii_case("MD") || head.eq_ignore_ascii_case("GeoMD") {
        return evaluate_model_path(segments, ctx);
    }

    // 3. Loop variable (possibly with property access).
    if let Some(value) = ctx.variable(head) {
        let value = value.clone();
        if segments.len() == 1 {
            return Ok(value);
        }
        return access_properties(&value, &segments[1..], ctx);
    }

    // 4. Designer parameter.
    if segments.len() == 1 {
        if let Some(parameter) = ctx.parameter(head) {
            return Ok(Value::Number(parameter));
        }
    }

    Err(PrmlError::eval(
        "",
        format!(
            "'{}' is not a model path, loop variable or parameter",
            segments.join(".")
        ),
    ))
}

pub(crate) fn evaluate_model_path(
    segments: &[String],
    ctx: &EvalContext<'_>,
) -> Result<Value, PrmlError> {
    let prefix = PathPrefix::parse(&segments[0]).unwrap_or(PathPrefix::GeoMd);
    let expr = PathExpr::new(prefix, segments[1..].to_vec());
    let target = PathResolver::new(ctx.cube.schema())
        .resolve(&expr)
        .map_err(|e| PrmlError::eval("", e.to_string()))?;
    let olap_err = |e: sdwp_olap::OlapError| PrmlError::eval("", e.to_string());

    match target {
        PathTarget::Level { dimension, level } => {
            let table = &ctx
                .cube
                .dimension_table(&dimension)
                .map_err(olap_err)?
                .table;
            let instances = (0..table.len())
                .map(|row| {
                    Value::Instance(InstanceRef::level(dimension.clone(), level.clone(), row))
                })
                .collect();
            Ok(Value::Collection(instances))
        }
        PathTarget::Layer { layer } => {
            let table = &ctx.cube.layer_table(&layer).map_err(olap_err)?.table;
            let instances = (0..table.len())
                .map(|row| Value::Instance(InstanceRef::layer(layer.clone(), row)))
                .collect();
            Ok(Value::Collection(instances))
        }
        PathTarget::LevelGeometry { dimension, level } => {
            let table = &ctx
                .cube
                .dimension_table(&dimension)
                .map_err(olap_err)?
                .table;
            let column = table.column(&geometry_column(&level)).map_err(olap_err)?;
            let geometries = (0..table.len())
                .filter_map(|row| column.get_geometry(row).cloned())
                .map(Value::Geometry)
                .collect();
            Ok(Value::Collection(geometries))
        }
        PathTarget::LayerGeometry { layer } => {
            let table = &ctx.cube.layer_table(&layer).map_err(olap_err)?.table;
            let column = table.column("geometry").map_err(olap_err)?;
            let geometries = (0..table.len())
                .filter_map(|row| column.get_geometry(row).cloned())
                .map(Value::Geometry)
                .collect();
            Ok(Value::Collection(geometries))
        }
        PathTarget::LevelAttribute {
            dimension,
            level,
            attribute,
        } => {
            let table = &ctx
                .cube
                .dimension_table(&dimension)
                .map_err(olap_err)?
                .table;
            let column_name = attribute_column(&level, &attribute);
            let values = (0..table.len())
                .map(|row| {
                    table
                        .get(row, &column_name)
                        .map(Value::from_cell)
                        .map_err(olap_err)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Collection(values))
        }
        PathTarget::Fact { fact } | PathTarget::Measure { fact, .. } => Err(PrmlError::eval(
            "",
            format!("fact '{fact}' cannot be used directly in a rule expression"),
        )),
        PathTarget::Dimension { dimension } => {
            let dim =
                ctx.cube.schema().dimension(&dimension).ok_or_else(|| {
                    PrmlError::eval("", format!("unknown dimension '{dimension}'"))
                })?;
            let leaf = dim
                .leaf_level()
                .map(|l| l.name.clone())
                .unwrap_or_else(|| dimension.clone());
            let table = &ctx
                .cube
                .dimension_table(&dimension)
                .map_err(olap_err)?
                .table;
            let instances = (0..table.len())
                .map(|row| {
                    Value::Instance(InstanceRef::level(dimension.clone(), leaf.clone(), row))
                })
                .collect();
            Ok(Value::Collection(instances))
        }
    }
}

/// Accesses properties of a value (e.g. `s.geometry`, `c.name`).
pub(crate) fn access_properties(
    value: &Value,
    properties: &[String],
    ctx: &EvalContext<'_>,
) -> Result<Value, PrmlError> {
    let mut current = value.clone();
    for property in properties {
        current = access_property(&current, property, ctx)?;
    }
    Ok(current)
}

fn access_property(
    value: &Value,
    property: &str,
    ctx: &EvalContext<'_>,
) -> Result<Value, PrmlError> {
    let olap_err = |e: sdwp_olap::OlapError| PrmlError::eval("", e.to_string());
    match value {
        Value::Instance(instance) => match &instance.source {
            InstanceSource::Level { dimension, level } => {
                let table = &ctx.cube.dimension_table(dimension).map_err(olap_err)?.table;
                if property.eq_ignore_ascii_case("geometry") {
                    let column = table.column(&geometry_column(level)).map_err(olap_err)?;
                    return Ok(column
                        .get_geometry(instance.row)
                        .cloned()
                        .map(Value::Geometry)
                        .unwrap_or(Value::Null));
                }
                // Attribute of the instance's level, falling back to any
                // level of the dimension that declares the attribute.
                let direct = attribute_column(level, property);
                if table.column_index(&direct).is_some() {
                    return Ok(Value::from_cell(
                        table.get(instance.row, &direct).map_err(olap_err)?,
                    ));
                }
                let dim = ctx.cube.schema().dimension(dimension).ok_or_else(|| {
                    PrmlError::eval("", format!("unknown dimension '{dimension}'"))
                })?;
                for other_level in &dim.levels {
                    let column = attribute_column(&other_level.name, property);
                    if table.column_index(&column).is_some() {
                        return Ok(Value::from_cell(
                            table.get(instance.row, &column).map_err(olap_err)?,
                        ));
                    }
                }
                Err(PrmlError::eval(
                    "",
                    format!("instance of level '{level}' has no property '{property}'"),
                ))
            }
            InstanceSource::Layer { layer } => {
                let table = &ctx.cube.layer_table(layer).map_err(olap_err)?.table;
                if property.eq_ignore_ascii_case("geometry") {
                    let column = table.column("geometry").map_err(olap_err)?;
                    return Ok(column
                        .get_geometry(instance.row)
                        .cloned()
                        .map(Value::Geometry)
                        .unwrap_or(Value::Null));
                }
                if property.eq_ignore_ascii_case("name") {
                    return Ok(Value::from_cell(
                        table.get(instance.row, "name").map_err(olap_err)?,
                    ));
                }
                Err(PrmlError::eval(
                    "",
                    format!("layer instance has no property '{property}'"),
                ))
            }
            InstanceSource::Fact { fact } => {
                let table = &ctx.cube.fact_table(fact).map_err(olap_err)?.table;
                Ok(Value::from_cell(
                    table.get(instance.row, property).map_err(olap_err)?,
                ))
            }
        },
        Value::Geometry(_) if property.eq_ignore_ascii_case("geometry") => Ok(value.clone()),
        other => Err(PrmlError::eval(
            "",
            format!("cannot access '{property}' on a {}", other.type_name()),
        )),
    }
}

/// Materialises any value into a geometry: geometries pass through,
/// instances look up their geometry in the cube, collections become
/// geometry collections of their members' geometries.
pub fn geometry_of(value: &Value, ctx: &EvalContext<'_>) -> Result<Geometry, PrmlError> {
    match value {
        Value::Geometry(g) => Ok(g.clone()),
        Value::Instance(_) => {
            let geometry = access_property(value, "geometry", ctx)?;
            match geometry {
                Value::Geometry(g) => Ok(g),
                Value::Null => Err(PrmlError::eval("", "instance has no geometry value")),
                other => Err(type_error("geometry", &other)),
            }
        }
        Value::Collection(members) => {
            let mut collection = GeometryCollection::empty();
            for member in members {
                collection.push(geometry_of(member, ctx)?);
            }
            Ok(Geometry::Collection(collection))
        }
        other => Err(type_error("geometry", other)),
    }
}

fn evaluate_call(function: &str, args: &[Expr], ctx: &EvalContext<'_>) -> Result<Value, PrmlError> {
    let values: Vec<Value> = args
        .iter()
        .map(|a| evaluate(a, ctx))
        .collect::<Result<_, _>>()?;
    call_values(function, values, ctx)
}

/// Applies an operator to already-evaluated arguments — shared by the
/// interpreter and the compiled executor.
pub(crate) fn call_values(
    function: &str,
    values: Vec<Value>,
    ctx: &EvalContext<'_>,
) -> Result<Value, PrmlError> {
    let lower = function.to_ascii_lowercase();
    match lower.as_str() {
        "distance" => match values.len() {
            // One argument: the length of "the corresponding segment"
            // (paper, Example 5.3) — for a collection produced by nested
            // Intersection calls this is the length of its shortest member
            // (an empty collection yields +∞ so threshold conditions fail).
            1 => {
                let g = geometry_of(&values[0], ctx)?;
                let length = match &g {
                    Geometry::Collection(members) if members.is_empty() => f64::INFINITY,
                    Geometry::Collection(members) => members
                        .iter()
                        .map(measures::length)
                        .fold(f64::INFINITY, f64::min),
                    other => measures::length(other),
                };
                Ok(Value::Number(length))
            }
            2 => {
                // Missing operands (e.g. the user reported no location)
                // yield an infinite distance so threshold conditions fail
                // gracefully instead of aborting the session.
                if values.iter().any(Value::is_null) {
                    return Ok(Value::Number(f64::INFINITY));
                }
                let a = geometry_of(&values[0], ctx)?;
                let b = geometry_of(&values[1], ctx)?;
                Ok(Value::Number(distance::distance(&a, &b, ctx.metric)))
            }
            n => Err(PrmlError::eval(
                "",
                format!("Distance expects 1 or 2 arguments, got {n}"),
            )),
        },
        "intersection" => {
            if values.len() != 2 {
                return Err(PrmlError::eval(
                    "",
                    format!("Intersection expects 2 arguments, got {}", values.len()),
                ));
            }
            if values.iter().any(Value::is_null) {
                return Ok(Value::Geometry(Geometry::Collection(
                    GeometryCollection::empty(),
                )));
            }
            let a = geometry_of(&values[0], ctx)?;
            let b = geometry_of(&values[1], ctx)?;
            Ok(Value::Geometry(Geometry::Collection(
                intersection::intersection(&a, &b),
            )))
        }
        "length" => {
            let g = geometry_of(&values[0], ctx)?;
            Ok(Value::Number(measures::length(&g)))
        }
        "area" => {
            let g = geometry_of(&values[0], ctx)?;
            Ok(Value::Number(measures::area(&g)))
        }
        "centroid" => {
            let g = geometry_of(&values[0], ctx)?;
            let c = measures::centroid(&g).map_err(|e| PrmlError::eval("", e.to_string()))?;
            Ok(Value::Geometry(sdwp_geometry::Point::from_coord(c).into()))
        }
        _ => {
            // Topological predicates.
            if values.len() != 2 {
                return Err(PrmlError::eval(
                    "",
                    format!(
                        "operator '{function}' expects 2 arguments, got {}",
                        values.len()
                    ),
                ));
            }
            if values.iter().any(Value::is_null) {
                return Ok(Value::Boolean(false));
            }
            let a = geometry_of(&values[0], ctx)?;
            let b = geometry_of(&values[1], ctx)?;
            predicates::evaluate_named(function, &a, &b)
                .map(Value::Boolean)
                .ok_or_else(|| PrmlError::eval("", format!("unknown operator '{function}'")))
        }
    }
}
