//! The rule engine: event matching, rule firing and effect reporting.

use crate::ast::{EventSpec, Rule, Statement};
use crate::error::PrmlError;
use crate::eval::action::execute_action;
use crate::eval::context::{EvalContext, RuleEffect};
use crate::eval::expr::{evaluate, evaluate_condition};
use crate::eval::value::Value;
use crate::parser::parse_rules;
use crate::pretty::print_expr;
use serde::{Deserialize, Serialize};

/// A runtime event delivered to the engine (§4.2.1's tracking events).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeEvent {
    /// The user logged in; the analysis session starts.
    SessionStart,
    /// The analysis session ended.
    SessionEnd,
    /// The user selected instances of `element` satisfying a spatial
    /// expression. `expression` optionally carries the normalised
    /// expression text for exact matching; when absent, rules match on the
    /// element alone.
    SpatialSelection {
        /// The selected GeoMD element, as a dotted path (e.g.
        /// `GeoMD.Store.City`).
        element: String,
        /// The satisfied spatial expression, pretty-printed, when known.
        expression: Option<String>,
    },
}

impl RuntimeEvent {
    /// Convenience constructor for a spatial-selection event matched by
    /// element only.
    pub fn spatial_selection(element: impl Into<String>) -> Self {
        RuntimeEvent::SpatialSelection {
            element: element.into(),
            expression: None,
        }
    }
}

/// The outcome of delivering one event to the engine.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FireReport {
    /// Effects of every rule that fired, in firing order.
    pub effects: Vec<RuleEffect>,
    /// Number of rules whose event specification matched the event
    /// (fired rules; their conditions may still have evaluated to false).
    pub rules_matched: usize,
}

impl FireReport {
    /// The effect record of a specific rule, when it fired.
    pub fn effect_of(&self, rule: &str) -> Option<&RuleEffect> {
        self.effects.iter().find(|e| e.rule == rule)
    }

    /// Merges all selections across fired rules into
    /// `(dimension → selected member rows)` pairs, keeping per-rule sets
    /// separate (the caller applies them conjunctively).
    pub fn selection_sets(&self) -> Vec<(&str, &std::collections::BTreeSet<usize>)> {
        self.effects
            .iter()
            .flat_map(|e| {
                e.selections
                    .iter()
                    .map(move |(dim, rows)| (dim.as_str(), rows))
            })
            .collect()
    }
}

/// A PRML rule engine: an ordered set of rules plus designer parameters.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    rules: Vec<Rule>,
}

impl RuleEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        RuleEngine::default()
    }

    /// Adds an already-parsed rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Parses rule text (one or more rules) and adds the rules.
    pub fn add_rules_text(&mut self, text: &str) -> Result<&mut Self, PrmlError> {
        for rule in parse_rules(text)? {
            self.rules.push(rule);
        }
        Ok(self)
    }

    /// The registered rules, in registration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Delivers an event: every rule whose event specification matches is
    /// executed against the context, in registration order.
    pub fn fire(
        &self,
        event: &RuntimeEvent,
        ctx: &mut EvalContext<'_>,
    ) -> Result<FireReport, PrmlError> {
        let mut report = FireReport::default();
        for rule in &self.rules {
            if !event_matches(&rule.event, event) {
                continue;
            }
            report.rules_matched += 1;
            let mut effect = RuleEffect::new(rule.name.clone());
            execute_statements(&rule.body, ctx, &mut effect)
                .map_err(|e| attach_rule(e, &rule.name))?;
            report.effects.push(effect);
        }
        Ok(report)
    }
}

/// Attaches the rule name to anonymous evaluation errors.
pub(crate) fn attach_rule(error: PrmlError, rule: &str) -> PrmlError {
    match error {
        PrmlError::Eval { rule: r, message } if r.is_empty() => PrmlError::Eval {
            rule: rule.to_string(),
            message,
        },
        other => other,
    }
}

/// Does a rule's event specification match a runtime event?
pub(crate) fn event_matches(spec: &EventSpec, event: &RuntimeEvent) -> bool {
    match (spec, event) {
        (EventSpec::SessionStart, RuntimeEvent::SessionStart) => true,
        (EventSpec::SessionEnd, RuntimeEvent::SessionEnd) => true,
        (
            EventSpec::SpatialSelection { element, condition },
            RuntimeEvent::SpatialSelection {
                element: event_element,
                expression,
            },
        ) => {
            let spec_element = print_expr(element);
            if !spec_element.eq_ignore_ascii_case(event_element) {
                return false;
            }
            match expression {
                None => true,
                Some(text) => {
                    let spec_condition = print_expr(condition);
                    normalise(&spec_condition) == normalise(text)
                }
            }
        }
        _ => false,
    }
}

pub(crate) fn normalise(text: &str) -> String {
    text.chars()
        .filter(|c| !c.is_whitespace() && *c != '(' && *c != ')')
        .collect::<String>()
        .to_lowercase()
}

fn execute_statements(
    statements: &[Statement],
    ctx: &mut EvalContext<'_>,
    effect: &mut RuleEffect,
) -> Result<(), PrmlError> {
    for statement in statements {
        match statement {
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                if evaluate_condition(condition, ctx)? {
                    execute_statements(then_branch, ctx, effect)?;
                } else {
                    execute_statements(else_branch, ctx, effect)?;
                }
            }
            Statement::Foreach {
                variables,
                sources,
                body,
            } => {
                // Evaluate every source to a collection, then iterate the
                // cartesian product of the collections (Example 5.3
                // iterates trains × cities × airports).
                let mut collections: Vec<Vec<Value>> = Vec::with_capacity(sources.len());
                for source in sources {
                    let value = evaluate(source, ctx)?;
                    match value {
                        Value::Collection(items) => collections.push(items),
                        other => {
                            return Err(PrmlError::eval(
                                "",
                                format!(
                                    "Foreach source must be a collection, got a {}",
                                    other.type_name()
                                ),
                            ))
                        }
                    }
                }
                // A loop whose body selects instances of a dimension scopes
                // the personalization to that dimension even when zero
                // instances end up selected: "all the succeeding analysis
                // will have only the selected instances" (paper §5.2), so an
                // empty selection must restrict the view rather than leave
                // it untouched.
                for (variable, collection) in variables.iter().zip(&collections) {
                    if !body_selects_variable(body, variable) {
                        continue;
                    }
                    if let Some(Value::Instance(instance)) = collection.first() {
                        if let crate::eval::value::InstanceSource::Level { dimension, .. } =
                            &instance.source
                        {
                            effect.selections.entry(dimension.clone()).or_default();
                        }
                    }
                }
                iterate_product(variables, &collections, body, ctx, effect)?;
            }
            Statement::Action(action) => execute_action(action, ctx, effect)?,
        }
    }
    Ok(())
}

/// Returns `true` when a statement block (recursively) contains a
/// `SelectInstance` action whose target is the given loop variable.
pub(crate) fn body_selects_variable(statements: &[Statement], variable: &str) -> bool {
    statements.iter().any(|statement| match statement {
        Statement::Action(crate::ast::Action::SelectInstance { target }) => target
            .as_path()
            .map(|p| p.len() == 1 && p[0] == variable)
            .unwrap_or(false),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            body_selects_variable(then_branch, variable)
                || body_selects_variable(else_branch, variable)
        }
        Statement::Foreach { body, .. } => body_selects_variable(body, variable),
        _ => false,
    })
}

fn iterate_product(
    variables: &[String],
    collections: &[Vec<Value>],
    body: &[Statement],
    ctx: &mut EvalContext<'_>,
    effect: &mut RuleEffect,
) -> Result<(), PrmlError> {
    fn recurse(
        depth: usize,
        variables: &[String],
        collections: &[Vec<Value>],
        body: &[Statement],
        ctx: &mut EvalContext<'_>,
        effect: &mut RuleEffect,
    ) -> Result<(), PrmlError> {
        if depth == variables.len() {
            return execute_statements(body, ctx, effect);
        }
        for item in &collections[depth] {
            ctx.push_variable(variables[depth].clone(), item.clone());
            let result = recurse(depth + 1, variables, collections, body, ctx, effect);
            ctx.pop_variable(&variables[depth]);
            result?;
        }
        Ok(())
    }
    recurse(0, variables, collections, body, ctx, effect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::*;
    use crate::eval::context::StaticLayerSource;
    use sdwp_geometry::{LineString, Point};
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, Schema, SchemaBuilder};
    use sdwp_olap::{CellValue, Cube};
    use sdwp_user::{LocationContext, Role, Session, SpatialSelectionInterest, UserProfile};

    /// The Fig. 2 sales schema.
    fn sales_schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .level(
                        "Store",
                        vec![
                            sdwp_model::Attribute::descriptor("name", AttributeType::Text),
                            sdwp_model::Attribute::new("address", AttributeType::Text),
                        ],
                    )
                    .simple_level("City", "name")
                    .simple_level("State", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .simple_level("Day", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap()
    }

    /// A cube with five stores on a line, 10 km apart, in cities named
    /// after their index, plus sales rows.
    fn sales_cube() -> Cube {
        let mut cube = Cube::new(sales_schema());
        for i in 0..5 {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    ("City.name", CellValue::from(format!("City{i}"))),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                    ),
                    (
                        "City.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 1.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        cube.add_dimension_member("Time", vec![("Day.name", CellValue::from("Mon"))])
            .unwrap();
        for s in 0..5usize {
            cube.add_fact_row(
                "Sales",
                vec![("Store", s), ("Time", 0)],
                vec![("UnitSales", CellValue::Float(1.0))],
            )
            .unwrap();
        }
        cube
    }

    fn manager_profile() -> UserProfile {
        UserProfile::new("u1", "Octavio")
            .with_role(Role::new("RegionalSalesManager"))
            .with_interest(SpatialSelectionInterest::new("AirportCity"))
    }

    fn airports() -> StaticLayerSource {
        let mut source = StaticLayerSource::new();
        source.insert(
            "Airport",
            vec![("ALC".to_string(), Point::new(0.0, 1.0).into())],
        );
        source.insert(
            "Train",
            vec![(
                "coastal line".to_string(),
                LineString::from_tuples(&[(0.0, 1.0), (50.0, 1.0)])
                    .unwrap()
                    .into(),
            )],
        );
        source
    }

    #[test]
    fn example_5_1_fires_for_the_regional_sales_manager() {
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let layers = airports();
        let session = Session::start(1, "u1");
        let mut engine = RuleEngine::new();
        engine.add_rules_text(EXAMPLE_5_1_ADD_SPATIALITY).unwrap();

        let mut ctx = EvalContext::new(&mut cube, &mut profile)
            .with_session(&session)
            .with_layer_source(&layers);
        let report = engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap();
        assert_eq!(report.rules_matched, 1);
        let effect = report.effect_of("addSpatiality").unwrap();
        assert!(effect.changed_schema());
        assert_eq!(effect.added_layers.len(), 1);
        assert_eq!(effect.become_spatial.len(), 1);
        // Fig. 6: the Airport layer exists and Store is a spatial level.
        assert!(cube.schema().layer("Airport").is_some());
        assert!(cube.schema().find_level("Store").unwrap().1.is_spatial());
        // The layer instances were pulled from the external source.
        assert_eq!(cube.layer_table("Airport").unwrap().table.len(), 1);
    }

    #[test]
    fn example_5_1_does_not_fire_for_other_roles() {
        let mut cube = sales_cube();
        let mut profile = UserProfile::new("u2", "Ana").with_role(Role::new("Analyst"));
        let layers = airports();
        let mut engine = RuleEngine::new();
        engine.add_rules_text(EXAMPLE_5_1_ADD_SPATIALITY).unwrap();
        let mut ctx = EvalContext::new(&mut cube, &mut profile).with_layer_source(&layers);
        let report = engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap();
        // The rule matched the event but its condition was false.
        assert_eq!(report.rules_matched, 1);
        assert!(!report.effects[0].changed_schema());
        assert!(cube.schema().layer("Airport").is_none());
    }

    #[test]
    fn example_5_2_selects_stores_within_5km() {
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        // The user sits at x = 12: stores at 10 and 20 are within... no,
        // 20 is 8 km away? |20-12| = 8 > 5; store at 10 is 2 km away.
        let session = Session::start_at(1, "u1", LocationContext::at_point("office", 12.0, 0.0));
        let mut engine = RuleEngine::new();
        engine.add_rules_text(EXAMPLE_5_2_5KM_STORES).unwrap();
        let mut ctx = EvalContext::new(&mut cube, &mut profile).with_session(&session);
        let report = engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap();
        let effect = report.effect_of("5kmStores").unwrap();
        let selected = effect.selections.get("Store").unwrap();
        assert_eq!(selected.iter().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn example_5_3_interest_tracking_and_threshold() {
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let layers = airports();
        let session = Session::start(1, "u1");
        // The full paper rule set: the schema rule 5.1 runs first at session
        // start (adding the Airport layer the later rules reference), as in
        // the two-stage process of Fig. 1.
        let mut engine = RuleEngine::new();
        engine
            .add_rules_text(EXAMPLE_5_1_ADD_SPATIALITY)
            .unwrap()
            .add_rules_text(EXAMPLE_5_3_INT_AIRPORT_CITY)
            .unwrap()
            .add_rules_text(EXAMPLE_5_3_TRAIN_AIRPORT_CITY)
            .unwrap();

        // Deliver three spatial-selection events: the degree rises to 3.
        for _ in 0..3 {
            let mut ctx = EvalContext::new(&mut cube, &mut profile)
                .with_session(&session)
                .with_layer_source(&layers)
                .with_parameter("threshold", 2.0);
            let report = engine
                .fire(
                    &RuntimeEvent::spatial_selection("GeoMD.Store.City"),
                    &mut ctx,
                )
                .unwrap();
            assert_eq!(report.rules_matched, 1);
            assert_eq!(report.effects[0].set_contents, 1);
        }
        assert_eq!(profile.interest("AirportCity").unwrap().degree, 3.0);

        // Next session start: the degree (3) exceeds the threshold (2), so
        // the Train layer is added and the cities with a close train
        // connection to the airport are selected.
        let mut ctx = EvalContext::new(&mut cube, &mut profile)
            .with_session(&session)
            .with_layer_source(&layers)
            .with_parameter("threshold", 2.0);
        let report = engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap();
        let effect = report.effect_of("TrainAirportCity").unwrap();
        assert!(effect.added_layers.iter().any(|(name, _)| name == "Train"));
        let selected = effect.selections.get("Store").expect("cities selected");
        // The train line runs along y=1 from x=0 to x=50; the airport sits
        // at (0, 1). Splitting the line at each city and then at the airport
        // isolates the city→airport segment, whose length must be under
        // 50 km. Cities at x = 10, 20, 30, 40 qualify (segments of 10–40 km);
        // the city co-located with the airport degenerates to the whole
        // 50 km line and is excluded.
        assert_eq!(
            selected.iter().copied().collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn threshold_not_exceeded_means_no_selection() {
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let layers = airports();
        let mut engine = RuleEngine::new();
        engine
            .add_rules_text(EXAMPLE_5_3_TRAIN_AIRPORT_CITY)
            .unwrap();
        let mut ctx = EvalContext::new(&mut cube, &mut profile)
            .with_layer_source(&layers)
            .with_parameter("threshold", 5.0);
        let report = engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap();
        let effect = &report.effects[0];
        assert!(!effect.selected_instances());
        assert!(cube.schema().layer("Train").is_none());
    }

    #[test]
    fn spatial_selection_event_matching() {
        let mut engine = RuleEngine::new();
        engine.add_rules_text(EXAMPLE_5_3_INT_AIRPORT_CITY).unwrap();
        let mut cube = sales_cube();
        let mut profile = manager_profile();

        // Wrong element: no rule matches.
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let report = engine
            .fire(&RuntimeEvent::spatial_selection("GeoMD.Customer"), &mut ctx)
            .unwrap();
        assert_eq!(report.rules_matched, 0);

        // Matching element with an explicit matching expression.
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let event = RuntimeEvent::SpatialSelection {
            element: "GeoMD.Store.City".into(),
            expression: Some(
                "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20".into(),
            ),
        };
        // The schema has no Airport layer yet, so evaluating the rule body
        // only touches the SUS path, which works fine.
        let report = engine.fire(&event, &mut ctx).unwrap();
        assert_eq!(report.rules_matched, 1);

        // Matching element with a non-matching expression.
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let event = RuntimeEvent::SpatialSelection {
            element: "GeoMD.Store.City".into(),
            expression: Some("Inside(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)".into()),
        };
        let report = engine.fire(&event, &mut ctx).unwrap();
        assert_eq!(report.rules_matched, 0);
    }

    #[test]
    fn session_end_rules() {
        let mut engine = RuleEngine::new();
        engine
            .add_rules_text(
                "Rule:bye When SessionEnd do SetContent(SUS.DecisionMaker.lastSeen, 'today') endWhen",
            )
            .unwrap();
        assert_eq!(engine.len(), 1);
        assert!(!engine.is_empty());
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let report = engine.fire(&RuntimeEvent::SessionEnd, &mut ctx).unwrap();
        assert_eq!(report.rules_matched, 1);
        assert_eq!(report.effects[0].set_contents, 1);
        assert_eq!(
            profile.custom.get("lastSeen"),
            Some(&sdwp_user::Value::Text("today".into()))
        );
        // SessionStart does not trigger the SessionEnd rule.
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let report = engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap();
        assert_eq!(report.rules_matched, 0);
    }

    #[test]
    fn selection_sets_helper() {
        let mut report = FireReport::default();
        let mut effect = RuleEffect::new("r");
        effect
            .selections
            .entry("Store".into())
            .or_default()
            .insert(1);
        report.effects.push(effect);
        let sets = report.selection_sets();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].0, "Store");
        assert!(report.effect_of("r").is_some());
        assert!(report.effect_of("other").is_none());
    }

    #[test]
    fn division_by_zero_and_bad_conditions_error() {
        let mut engine = RuleEngine::new();
        engine
            .add_rules_text(
                "Rule:bad When SessionStart do If (1 / 0 > 1) then AddLayer('x', POINT) endIf endWhen",
            )
            .unwrap();
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let err = engine
            .fire(&RuntimeEvent::SessionStart, &mut ctx)
            .unwrap_err();
        assert!(err.to_string().contains("division by zero"));

        let mut engine2 = RuleEngine::new();
        engine2
            .add_rules_text(
                "Rule:bad2 When SessionStart do If (5 + 5) then AddLayer('x', POINT) endIf endWhen",
            )
            .unwrap();
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        assert!(engine2.fire(&RuntimeEvent::SessionStart, &mut ctx).is_err());
    }

    #[test]
    fn unknown_parameter_is_an_error() {
        let mut engine = RuleEngine::new();
        engine
            .add_rules_text(EXAMPLE_5_3_TRAIN_AIRPORT_CITY)
            .unwrap();
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        // No 'threshold' parameter is defined in the context.
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let err = engine
            .fire(&RuntimeEvent::SessionStart, &mut ctx)
            .unwrap_err();
        assert!(err.to_string().contains("threshold"));
    }
}
