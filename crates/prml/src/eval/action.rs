//! Execution of personalization actions.

use crate::ast::Action;
use crate::error::PrmlError;
use crate::eval::context::{EvalContext, RuleEffect};
use crate::eval::expr::evaluate;
use crate::eval::value::{InstanceSource, Value};
use crate::typecheck::become_spatial_level;
use sdwp_user::{assign_sus_path, SusPath};

/// Executes a single action, updating the context and recording the effect.
pub fn execute_action(
    action: &Action,
    ctx: &mut EvalContext<'_>,
    effect: &mut RuleEffect,
) -> Result<(), PrmlError> {
    match action {
        Action::AddLayer { name, geometry } => {
            // Schema side: register the layer (idempotent when the geometry
            // matches).
            ctx.cube
                .schema_mut()
                .add_layer(name.clone(), *geometry)
                .map_err(|e| PrmlError::eval(&effect.rule, e.to_string()))?;
            // Instance side: materialise the layer table and populate it
            // from the external layer source the first time.
            let already_loaded = ctx
                .cube
                .layer_table(name)
                .map(|t| !t.table.is_empty())
                .unwrap_or(false);
            ctx.cube.ensure_layer_table(name);
            if !already_loaded {
                if let Some(instances) = ctx.layer_source.layer_instances(name) {
                    for (instance_name, geometry) in instances {
                        ctx.cube
                            .add_layer_instance(name, instance_name, geometry)
                            .map_err(|e| PrmlError::eval(&effect.rule, e.to_string()))?;
                    }
                }
            }
            effect.added_layers.push((name.clone(), *geometry));
            Ok(())
        }
        Action::BecomeSpatial { element, geometry } => {
            let level = become_spatial_level(element).ok_or_else(|| {
                PrmlError::eval(&effect.rule, "BecomeSpatial element must be a path")
            })?;
            ctx.cube
                .schema_mut()
                .become_spatial(&level, *geometry)
                .map_err(|e| PrmlError::eval(&effect.rule, e.to_string()))?;
            effect.become_spatial.push((level, *geometry));
            Ok(())
        }
        Action::SelectInstance { target } => {
            let rule_name = effect.rule.clone();
            let value = evaluate(target, ctx).map_err(|e| rename(e, &rule_name))?;
            select_value(&value, effect, &rule_name)
        }
        Action::SetContent { target, value } => {
            let segments = target
                .as_path()
                .ok_or_else(|| PrmlError::eval(&effect.rule, "SetContent target must be a path"))?;
            if !segments
                .first()
                .map(|s| s.eq_ignore_ascii_case("SUS"))
                .unwrap_or(false)
            {
                return Err(PrmlError::eval(
                    &effect.rule,
                    format!(
                        "SetContent target '{}' must be a SUS (user model) path",
                        segments.join(".")
                    ),
                ));
            }
            let new_value = evaluate(value, ctx).map_err(|e| rename(e, &effect.rule))?;
            let path = SusPath::parse(&segments.join("."))
                .map_err(|e| PrmlError::eval(&effect.rule, e.to_string()))?;
            assign_sus_path(ctx.profile, &path, new_value.into_user())
                .map_err(|e| PrmlError::eval(&effect.rule, e.to_string()))?;
            effect.set_contents += 1;
            Ok(())
        }
    }
}

/// Registers a selected value (an instance or a collection of instances) in
/// the rule effect. Geometries and other scalars cannot be selected.
pub(crate) fn select_value(
    value: &Value,
    effect: &mut RuleEffect,
    rule: &str,
) -> Result<(), PrmlError> {
    match value {
        Value::Instance(instance) => {
            match &instance.source {
                InstanceSource::Level { dimension, .. } => {
                    effect
                        .selections
                        .entry(dimension.clone())
                        .or_default()
                        .insert(instance.row);
                }
                InstanceSource::Layer { layer } => {
                    effect
                        .layer_selections
                        .entry(layer.clone())
                        .or_default()
                        .insert(instance.row);
                }
                InstanceSource::Fact { fact } => {
                    // Fact rows are tracked as a dimension-like selection on
                    // the fact name; the view applies them as fact rows.
                    effect
                        .selections
                        .entry(format!("__fact__{fact}"))
                        .or_default()
                        .insert(instance.row);
                }
            }
            Ok(())
        }
        Value::Collection(members) => {
            for member in members {
                select_value(member, effect, rule)?;
            }
            Ok(())
        }
        other => Err(PrmlError::eval(
            rule,
            format!(
                "SelectInstance expects an instance, got a {}",
                other.type_name()
            ),
        )),
    }
}

/// Attaches a rule name to errors raised by nested evaluation.
pub(crate) fn rename(error: PrmlError, rule: &str) -> PrmlError {
    match error {
        PrmlError::Eval { rule: r, message } if r.is_empty() => PrmlError::Eval {
            rule: rule.to_string(),
            message,
        },
        other => other,
    }
}
