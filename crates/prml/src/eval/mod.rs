//! Rule evaluation: executing PRML rules against a cube, a user profile and
//! an analysis session.

pub mod action;
pub mod context;
pub mod engine;
pub mod expr;
pub mod value;

pub use context::{EvalContext, LayerSource, NoExternalLayers, RuleEffect};
pub use engine::{FireReport, RuleEngine, RuntimeEvent};
pub use value::{InstanceRef, InstanceSource, Value};
