//! Runtime values produced while evaluating rule expressions.

use sdwp_geometry::{GeometricType, Geometry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where an instance reference points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceSource {
    /// A member of a dimension, viewed at a particular hierarchy level.
    Level {
        /// Dimension name.
        dimension: String,
        /// Level name.
        level: String,
    },
    /// An instance of a thematic layer.
    Layer {
        /// Layer name.
        layer: String,
    },
    /// A row of a fact table.
    Fact {
        /// Fact name.
        fact: String,
    },
}

/// A reference to one instance of the (Geo)MD model: a dimension member, a
/// layer instance or a fact row. This is what `Foreach` variables are bound
/// to and what `SelectInstance` receives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceRef {
    /// Which table the instance lives in.
    pub source: InstanceSource,
    /// The row id within that table.
    pub row: usize,
}

impl InstanceRef {
    /// A reference to a dimension member at a given level.
    pub fn level(dimension: impl Into<String>, level: impl Into<String>, row: usize) -> Self {
        InstanceRef {
            source: InstanceSource::Level {
                dimension: dimension.into(),
                level: level.into(),
            },
            row,
        }
    }

    /// A reference to a layer instance.
    pub fn layer(layer: impl Into<String>, row: usize) -> Self {
        InstanceRef {
            source: InstanceSource::Layer {
                layer: layer.into(),
            },
            row,
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A number (all PRML numbers are f64; distances are in km).
    Number(f64),
    /// Text.
    Text(String),
    /// A boolean.
    Boolean(bool),
    /// A geometry.
    Geometry(Geometry),
    /// A geometric-type literal.
    GeometricType(GeometricType),
    /// A reference to a model instance.
    Instance(InstanceRef),
    /// An ordered collection of values (iteration sources, Intersection
    /// results).
    Collection(Vec<Value>),
    /// Absence of a value.
    Null,
}

impl Value {
    /// Numeric view.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Geometry view (only for direct geometry values; instances are
    /// materialised by the evaluation context).
    pub fn as_geometry(&self) -> Option<&Geometry> {
        match self {
            Value::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// Instance view.
    pub fn as_instance(&self) -> Option<&InstanceRef> {
        match self {
            Value::Instance(i) => Some(i),
            _ => None,
        }
    }

    /// Collection view.
    pub fn as_collection(&self) -> Option<&[Value]> {
        match self {
            Value::Collection(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::Text(_) => "text",
            Value::Boolean(_) => "boolean",
            Value::Geometry(_) => "geometry",
            Value::GeometricType(_) => "geometric type",
            Value::Instance(_) => "instance",
            Value::Collection(_) => "collection",
            Value::Null => "null",
        }
    }

    /// Converts a user-model value into a runtime value.
    pub fn from_user(value: sdwp_user::Value) -> Value {
        match value {
            sdwp_user::Value::Text(s) => Value::Text(s),
            sdwp_user::Value::Integer(i) => Value::Number(i as f64),
            sdwp_user::Value::Float(f) => Value::Number(f),
            sdwp_user::Value::Boolean(b) => Value::Boolean(b),
            sdwp_user::Value::Geometry(g) => Value::Geometry(g),
            sdwp_user::Value::Null => Value::Null,
        }
    }

    /// Converts a runtime value into a user-model value (for `SetContent`).
    pub fn into_user(self) -> sdwp_user::Value {
        match self {
            Value::Number(n) => sdwp_user::Value::Float(n),
            Value::Text(s) => sdwp_user::Value::Text(s),
            Value::Boolean(b) => sdwp_user::Value::Boolean(b),
            Value::Geometry(g) => sdwp_user::Value::Geometry(g),
            Value::GeometricType(g) => sdwp_user::Value::Text(g.to_string()),
            Value::Instance(i) => sdwp_user::Value::Text(format!("{i:?}")),
            Value::Collection(_) => sdwp_user::Value::Text("<collection>".into()),
            Value::Null => sdwp_user::Value::Null,
        }
    }

    /// Converts an OLAP cell value into a runtime value.
    pub fn from_cell(value: sdwp_olap::CellValue) -> Value {
        match value {
            sdwp_olap::CellValue::Integer(i) => Value::Number(i as f64),
            sdwp_olap::CellValue::Float(f) => Value::Number(f),
            sdwp_olap::CellValue::Text(s) => Value::Text(s),
            sdwp_olap::CellValue::Boolean(b) => Value::Boolean(b),
            sdwp_olap::CellValue::Date(d) => Value::Number(d as f64),
            sdwp_olap::CellValue::Geometry(g) => Value::Geometry(g),
            sdwp_olap::CellValue::Null => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(n) => write!(f, "{n}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Geometry(g) => write!(f, "{g}"),
            Value::GeometricType(g) => write!(f, "{g}"),
            Value::Instance(i) => write!(f, "instance#{} ({:?})", i.row, i.source),
            Value::Collection(v) => write!(f, "collection[{}]", v.len()),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_geometry::Point;

    #[test]
    fn views() {
        assert_eq!(Value::Number(3.0).as_number(), Some(3.0));
        assert_eq!(Value::Boolean(true).as_number(), Some(1.0));
        assert_eq!(Value::Text("x".into()).as_number(), None);
        assert_eq!(Value::Boolean(false).as_bool(), Some(false));
        assert_eq!(Value::Text("a".into()).as_text(), Some("a"));
        assert!(Value::Null.is_null());
        assert!(Value::Collection(vec![])
            .as_collection()
            .unwrap()
            .is_empty());
        let inst = Value::Instance(InstanceRef::level("Store", "Store", 3));
        assert_eq!(inst.as_instance().unwrap().row, 3);
        assert_eq!(inst.type_name(), "instance");
    }

    #[test]
    fn user_value_round_trip() {
        let v = Value::from_user(sdwp_user::Value::Integer(4));
        assert_eq!(v, Value::Number(4.0));
        assert_eq!(Value::Number(2.5).into_user(), sdwp_user::Value::Float(2.5));
        assert_eq!(
            Value::from_user(sdwp_user::Value::Text("x".into())).as_text(),
            Some("x")
        );
        assert!(Value::from_user(sdwp_user::Value::Null).is_null());
    }

    #[test]
    fn cell_value_conversion() {
        assert_eq!(
            Value::from_cell(sdwp_olap::CellValue::Integer(7)),
            Value::Number(7.0)
        );
        assert_eq!(
            Value::from_cell(sdwp_olap::CellValue::Text("a".into())),
            Value::Text("a".into())
        );
        let g: Geometry = Point::new(1.0, 2.0).into();
        assert_eq!(
            Value::from_cell(sdwp_olap::CellValue::Geometry(g.clone())),
            Value::Geometry(g)
        );
        assert!(Value::from_cell(sdwp_olap::CellValue::Null).is_null());
    }

    #[test]
    fn instance_constructors_and_display() {
        let l = InstanceRef::level("Store", "City", 2);
        assert!(matches!(l.source, InstanceSource::Level { .. }));
        let a = InstanceRef::layer("Airport", 0);
        assert!(matches!(a.source, InstanceSource::Layer { .. }));
        assert!(Value::Instance(a).to_string().contains("instance#0"));
        assert_eq!(
            Value::Collection(vec![Value::Null]).to_string(),
            "collection[1]"
        );
    }
}
