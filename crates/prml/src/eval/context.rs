//! The evaluation context: everything a rule can read or modify.

use crate::eval::value::Value;
use sdwp_geometry::distance::DistanceMetric;
use sdwp_geometry::{GeometricType, Geometry};
use sdwp_olap::Cube;
use sdwp_user::{Session, UserProfile};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Provides instance data for external geographic layers.
///
/// When an `AddLayer` action introduces a layer (e.g. `Airport`), the data
/// for that layer comes from *outside* the analysed domain — spatial data
/// infrastructures, geoportals, volunteered geographic information in the
/// paper's terms. Implementations of this trait play that role: the core
/// engine wires its layer registry in, the data generator wires synthetic
/// layers in.
pub trait LayerSource {
    /// Returns the named layer's instances as `(name, geometry)` pairs, or
    /// `None` when the source does not know the layer.
    fn layer_instances(&self, layer: &str) -> Option<Vec<(String, Geometry)>>;
}

/// A [`LayerSource`] that knows no layers (useful in tests and when all
/// layers are pre-materialised in the cube).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExternalLayers;

impl LayerSource for NoExternalLayers {
    fn layer_instances(&self, _layer: &str) -> Option<Vec<(String, Geometry)>> {
        None
    }
}

/// A [`LayerSource`] backed by an in-memory map, keyed case-insensitively
/// by layer name.
#[derive(Debug, Clone, Default)]
pub struct StaticLayerSource {
    layers: BTreeMap<String, Vec<(String, Geometry)>>,
}

impl StaticLayerSource {
    /// Creates an empty source.
    pub fn new() -> Self {
        StaticLayerSource::default()
    }

    /// Registers (or replaces) a layer's instances.
    pub fn insert(
        &mut self,
        layer: impl Into<String>,
        instances: Vec<(String, Geometry)>,
    ) -> &mut Self {
        self.layers.insert(layer.into().to_lowercase(), instances);
        self
    }
}

impl LayerSource for StaticLayerSource {
    fn layer_instances(&self, layer: &str) -> Option<Vec<(String, Geometry)>> {
        self.layers.get(&layer.to_lowercase()).cloned()
    }
}

/// The effects one rule produced when it fired.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RuleEffect {
    /// The rule that fired.
    pub rule: String,
    /// Layers added by `AddLayer`, with their geometric types.
    pub added_layers: Vec<(String, GeometricType)>,
    /// Levels made spatial by `BecomeSpatial`, with their geometric types.
    pub become_spatial: Vec<(String, GeometricType)>,
    /// Dimension members selected by `SelectInstance`, per dimension.
    pub selections: BTreeMap<String, BTreeSet<usize>>,
    /// Layer instances selected by `SelectInstance`, per layer.
    pub layer_selections: BTreeMap<String, BTreeSet<usize>>,
    /// Number of `SetContent` updates applied to the user model.
    pub set_contents: usize,
}

impl RuleEffect {
    /// Creates an empty effect record for a rule.
    pub fn new(rule: impl Into<String>) -> Self {
        RuleEffect {
            rule: rule.into(),
            ..RuleEffect::default()
        }
    }

    /// Returns `true` when the rule changed the schema.
    pub fn changed_schema(&self) -> bool {
        !self.added_layers.is_empty() || !self.become_spatial.is_empty()
    }

    /// Returns `true` when the rule selected instances.
    pub fn selected_instances(&self) -> bool {
        self.selections.values().any(|s| !s.is_empty())
            || self.layer_selections.values().any(|s| !s.is_empty())
    }

    /// Total number of selected dimension members across dimensions.
    pub fn selected_member_count(&self) -> usize {
        self.selections.values().map(BTreeSet::len).sum()
    }
}

/// Everything a rule evaluation can read and modify: the cube (schema and
/// instances), the decision maker's profile, the current session, external
/// layer data, designer parameters and the loop-variable scope.
pub struct EvalContext<'a> {
    /// The cube being personalized (schema + instance data).
    pub cube: &'a mut Cube,
    /// The decision maker's profile (read by conditions, updated by
    /// `SetContent`).
    pub profile: &'a mut UserProfile,
    /// The current analysis session, when one is active.
    pub session: Option<&'a Session>,
    /// External layer data used to populate layers created by `AddLayer`.
    pub layer_source: &'a dyn LayerSource,
    /// Designer-defined parameters referenced by bare identifiers in rule
    /// text (e.g. the `threshold` of Example 5.3).
    pub parameters: BTreeMap<String, f64>,
    /// The distance metric used by the `Distance` operator.
    pub metric: DistanceMetric,
    variables: Vec<(String, Value)>,
}

impl<'a> EvalContext<'a> {
    /// Creates a context over a cube and a profile, with no session, no
    /// external layers, no parameters and the Euclidean metric.
    pub fn new(cube: &'a mut Cube, profile: &'a mut UserProfile) -> Self {
        EvalContext {
            cube,
            profile,
            session: None,
            layer_source: &NoExternalLayers,
            parameters: BTreeMap::new(),
            metric: DistanceMetric::Euclidean,
            variables: Vec::new(),
        }
    }

    /// Sets the active session.
    pub fn with_session(mut self, session: &'a Session) -> Self {
        self.session = Some(session);
        self
    }

    /// Sets the external layer source.
    pub fn with_layer_source(mut self, source: &'a dyn LayerSource) -> Self {
        self.layer_source = source;
        self
    }

    /// Defines a designer parameter (e.g. `threshold`).
    pub fn with_parameter(mut self, name: impl Into<String>, value: f64) -> Self {
        self.parameters.insert(name.into().to_lowercase(), value);
        self
    }

    /// Sets the distance metric used by `Distance`.
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Looks up a designer parameter.
    pub fn parameter(&self, name: &str) -> Option<f64> {
        self.parameters.get(&name.to_lowercase()).copied()
    }

    /// Pushes a loop-variable binding.
    pub fn push_variable(&mut self, name: impl Into<String>, value: Value) {
        self.variables.push((name.into(), value));
    }

    /// Pops the most recent binding of the named variable.
    pub fn pop_variable(&mut self, name: &str) {
        if let Some(index) = self.variables.iter().rposition(|(n, _)| n == name) {
            self.variables.remove(index);
        }
    }

    /// Looks up a loop variable (innermost binding wins).
    pub fn variable(&self, name: &str) -> Option<&Value> {
        self.variables
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdwp_geometry::Point;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    fn cube() -> Cube {
        Cube::new(
            SchemaBuilder::new("DW")
                .dimension(
                    DimensionBuilder::new("Store")
                        .simple_level("Store", "name")
                        .build(),
                )
                .fact(
                    FactBuilder::new("Sales")
                        .measure("UnitSales", AttributeType::Float)
                        .dimension("Store")
                        .build(),
                )
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn variable_scoping() {
        let mut cube = cube();
        let mut profile = UserProfile::new("u", "U");
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        assert!(ctx.variable("s").is_none());
        ctx.push_variable("s", Value::Number(1.0));
        ctx.push_variable("s", Value::Number(2.0));
        assert_eq!(ctx.variable("s"), Some(&Value::Number(2.0)));
        ctx.pop_variable("s");
        assert_eq!(ctx.variable("s"), Some(&Value::Number(1.0)));
        ctx.pop_variable("s");
        assert!(ctx.variable("s").is_none());
        ctx.pop_variable("s"); // popping a missing variable is a no-op
    }

    #[test]
    fn parameters_are_case_insensitive() {
        let mut cube = cube();
        let mut profile = UserProfile::new("u", "U");
        let ctx = EvalContext::new(&mut cube, &mut profile).with_parameter("Threshold", 3.0);
        assert_eq!(ctx.parameter("threshold"), Some(3.0));
        assert_eq!(ctx.parameter("THRESHOLD"), Some(3.0));
        assert_eq!(ctx.parameter("other"), None);
    }

    #[test]
    fn layer_sources() {
        assert!(NoExternalLayers.layer_instances("Airport").is_none());
        let mut source = StaticLayerSource::new();
        source.insert(
            "Airport",
            vec![("ALC".to_string(), Point::new(1.0, 2.0).into())],
        );
        let instances = source.layer_instances("airport").unwrap();
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].0, "ALC");
        assert!(source.layer_instances("Train").is_none());
    }

    #[test]
    fn rule_effect_queries() {
        let mut effect = RuleEffect::new("addSpatiality");
        assert!(!effect.changed_schema());
        assert!(!effect.selected_instances());
        effect
            .added_layers
            .push(("Airport".into(), GeometricType::Point));
        assert!(effect.changed_schema());
        effect
            .selections
            .entry("Store".into())
            .or_default()
            .extend([1, 2, 3]);
        assert!(effect.selected_instances());
        assert_eq!(effect.selected_member_count(), 3);
    }
}
