//! PRML (Personalization Rules Modeling Language) adapted to spatial data
//! warehouses.
//!
//! PRML is the rule-based language the paper borrows from Web Engineering
//! and extends with spatial constructs (§4.2). Rules are
//! Event-Condition-Action triples written in the concrete syntax of the
//! paper's examples:
//!
//! ```text
//! Rule:addSpatiality When SessionStart do
//!   If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
//!     AddLayer('Airport', POINT)
//!     BecomeSpatial(MD.Sales.Store.geometry, POINT)
//!   endIf
//! endWhen
//! ```
//!
//! The crate provides:
//!
//! * a lexer and recursive-descent parser producing a typed AST
//!   ([`parser::parse_rules`], [`ast`]);
//! * a pretty-printer that round-trips the AST back to rule text
//!   ([`pretty`]);
//! * the PRML-for-SDW metamodel of the paper's Fig. 5 ([`metamodel`]);
//! * a static checker validating rules against an MD/GeoMD schema
//!   ([`typecheck`]);
//! * an evaluator that executes rules against a cube, a user profile and a
//!   session, producing schema changes, instance selections and user-model
//!   updates ([`eval`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod compile;
pub mod corpus;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod metamodel;
pub mod parser;
pub mod pretty;
pub mod typecheck;

pub use ast::{Action, BinaryOp, EventSpec, Expr, Rule, Statement, UnaryOp};
pub use compile::{CompiledRule, CompiledRuleSet, MatchSpec};
pub use error::PrmlError;
pub use eval::context::{
    EvalContext, LayerSource, NoExternalLayers, RuleEffect, StaticLayerSource,
};
pub use eval::engine::{FireReport, RuleEngine, RuntimeEvent};
pub use eval::value::{InstanceRef, InstanceSource, Value};
pub use metamodel::{classify_rule, MetaClass};
pub use parser::{parse_rule, parse_rules};
pub use pretty::print_rule;
pub use typecheck::{augmented_schema, check_rule, check_rules, classify, RuleClass};
