//! Errors for parsing, checking and evaluating PRML rules.

use std::fmt;

/// A position in rule source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Errors produced by the PRML toolchain.
#[derive(Debug, Clone, PartialEq)]
pub enum PrmlError {
    /// The lexer met an unexpected character.
    Lex {
        /// Position of the offending character.
        pos: SourcePos,
        /// Description of the problem.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Position of the offending token.
        pos: SourcePos,
        /// Description of the problem.
        message: String,
    },
    /// Static checking failed (unknown path, wrong operand type, …).
    Check {
        /// The rule that failed.
        rule: String,
        /// Description of the problem.
        message: String,
    },
    /// Evaluation failed.
    Eval {
        /// The rule being evaluated (empty when outside a rule).
        rule: String,
        /// Description of the problem.
        message: String,
    },
}

impl PrmlError {
    /// Creates an evaluation error.
    pub fn eval(rule: impl Into<String>, message: impl Into<String>) -> Self {
        PrmlError::Eval {
            rule: rule.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for PrmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrmlError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            PrmlError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            PrmlError::Check { rule, message } => {
                write!(f, "rule '{rule}' failed validation: {message}")
            }
            PrmlError::Eval { rule, message } => {
                if rule.is_empty() {
                    write!(f, "evaluation error: {message}")
                } else {
                    write!(f, "evaluation error in rule '{rule}': {message}")
                }
            }
        }
    }
}

impl std::error::Error for PrmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_positions() {
        let e = PrmlError::Parse {
            pos: SourcePos { line: 3, column: 7 },
            message: "expected 'do'".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 3, column 7: expected 'do'"
        );
        let c = PrmlError::Check {
            rule: "addSpatiality".into(),
            message: "unknown level".into(),
        };
        assert!(c.to_string().contains("addSpatiality"));
        let ev = PrmlError::eval("", "division by zero");
        assert_eq!(ev.to_string(), "evaluation error: division by zero");
        let ev2 = PrmlError::eval("5kmStores", "bad");
        assert!(ev2.to_string().contains("5kmStores"));
        let lx = PrmlError::Lex {
            pos: SourcePos::default(),
            message: "stray '#'".into(),
        };
        assert!(lx.to_string().contains("stray"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&PrmlError::eval("r", "m"));
    }
}
