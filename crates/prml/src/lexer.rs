//! Tokenizer for PRML rule text.

use crate::error::{PrmlError, SourcePos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (`Rule`, `When`, `SessionStart`, `Distance`,
    /// `SUS`, `s`, …).
    Ident(String),
    /// A number literal. Unit suffixes are normalised to kilometres:
    /// `5km` → 5.0, `500m` → 0.5.
    Number(f64),
    /// A single-quoted string literal.
    Text(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it starts in the source.
    pub pos: SourcePos,
}

/// Tokenizes PRML rule text.
///
/// Comments start with `//` or `--` and run to the end of the line.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>, PrmlError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut column = 1usize;

    let advance = |i: &mut usize, line: &mut usize, column: &mut usize, c: char| {
        *i += 1;
        if c == '\n' {
            *line += 1;
            *column = 1;
        } else {
            *column += 1;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let pos = SourcePos { line, column };

        // Whitespace.
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut column, c);
            continue;
        }
        // Comments: // ... or -- ...
        if (c == '/' && chars.get(i + 1) == Some(&'/'))
            || (c == '-' && chars.get(i + 1) == Some(&'-'))
        {
            while i < chars.len() && chars[i] != '\n' {
                let ch = chars[i];
                advance(&mut i, &mut line, &mut column, ch);
            }
            continue;
        }
        // String literals.
        if c == '\'' {
            advance(&mut i, &mut line, &mut column, c);
            let mut text = String::new();
            let mut closed = false;
            while i < chars.len() {
                let ch = chars[i];
                advance(&mut i, &mut line, &mut column, ch);
                if ch == '\'' {
                    closed = true;
                    break;
                }
                text.push(ch);
            }
            if !closed {
                return Err(PrmlError::Lex {
                    pos,
                    message: "unterminated string literal".into(),
                });
            }
            tokens.push(SpannedToken {
                token: Token::Text(text),
                pos,
            });
            continue;
        }
        // Numbers (optionally with a unit suffix such as km / m). A number
        // immediately followed by letters that are *not* a known unit is
        // treated as an identifier — the paper names a rule `5kmStores`.
        if c.is_ascii_digit() {
            let mut number = String::new();
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                let ch = chars[i];
                number.push(ch);
                advance(&mut i, &mut line, &mut column, ch);
            }
            let mut suffix = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                let ch = chars[i];
                suffix.push(ch);
                advance(&mut i, &mut line, &mut column, ch);
            }
            let base: f64 = number.parse().map_err(|_| PrmlError::Lex {
                pos,
                message: format!("invalid number '{number}'"),
            })?;
            let token = match suffix.to_ascii_lowercase().as_str() {
                "" | "km" => Token::Number(base),
                "m" => Token::Number(base / 1000.0),
                _ => Token::Ident(format!("{number}{suffix}")),
            };
            tokens.push(SpannedToken { token, pos });
            continue;
        }
        // Identifiers (may contain digits after the first character).
        if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                let ch = chars[i];
                ident.push(ch);
                advance(&mut i, &mut line, &mut column, ch);
            }
            tokens.push(SpannedToken {
                token: Token::Ident(ident),
                pos,
            });
            continue;
        }
        // Operators and punctuation.
        let two = if i + 1 < chars.len() {
            Some((c, chars[i + 1]))
        } else {
            None
        };
        let (token, width) = match (c, two) {
            ('<', Some((_, '='))) => (Token::Le, 2),
            ('<', Some((_, '>'))) => (Token::Ne, 2),
            ('>', Some((_, '='))) => (Token::Ge, 2),
            ('!', Some((_, '='))) => (Token::Ne, 2),
            ('(', _) => (Token::LParen, 1),
            (')', _) => (Token::RParen, 1),
            (',', _) => (Token::Comma, 1),
            ('.', _) => (Token::Dot, 1),
            (':', _) => (Token::Colon, 1),
            ('=', _) => (Token::Eq, 1),
            ('<', _) => (Token::Lt, 1),
            ('>', _) => (Token::Gt, 1),
            ('+', _) => (Token::Plus, 1),
            ('-', _) => (Token::Minus, 1),
            ('*', _) => (Token::Star, 1),
            ('/', _) => (Token::Slash, 1),
            _ => {
                return Err(PrmlError::Lex {
                    pos,
                    message: format!("unexpected character '{c}'"),
                })
            }
        };
        for _ in 0..width {
            let ch = chars[i];
            advance(&mut i, &mut line, &mut column, ch);
        }
        tokens.push(SpannedToken { token, pos });
    }

    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("Rule:x When SessionStart do endWhen"),
            vec![
                Token::Ident("Rule".into()),
                Token::Colon,
                Token::Ident("x".into()),
                Token::Ident("When".into()),
                Token::Ident("SessionStart".into()),
                Token::Ident("do".into()),
                Token::Ident("endWhen".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_units() {
        assert_eq!(kinds("5"), vec![Token::Number(5.0)]);
        assert_eq!(kinds("5km"), vec![Token::Number(5.0)]);
        assert_eq!(kinds("2.5km"), vec![Token::Number(2.5)]);
        assert_eq!(kinds("500m"), vec![Token::Number(0.5)]);
        // A number glued to non-unit letters becomes an identifier (the
        // paper names a rule '5kmStores').
        assert_eq!(kinds("5kmStores"), vec![Token::Ident("5kmStores".into())]);
        assert_eq!(kinds("5miles"), vec![Token::Ident("5miles".into())]);
    }

    #[test]
    fn strings_and_operators() {
        assert_eq!(
            kinds("name = 'RegionalSalesManager'"),
            vec![
                Token::Ident("name".into()),
                Token::Eq,
                Token::Text("RegionalSalesManager".into()),
            ]
        );
        assert_eq!(
            kinds("a <= b >= c <> d != e < f > g"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
                Token::Ne,
                Token::Ident("e".into()),
                Token::Lt,
                Token::Ident("f".into()),
                Token::Gt,
                Token::Ident("g".into()),
            ]
        );
        assert_eq!(
            kinds("degree+1"),
            vec![
                Token::Ident("degree".into()),
                Token::Plus,
                Token::Number(1.0)
            ]
        );
    }

    #[test]
    fn paths_and_calls() {
        assert_eq!(
            kinds("Distance(s.geometry, 5km)"),
            vec![
                Token::Ident("Distance".into()),
                Token::LParen,
                Token::Ident("s".into()),
                Token::Dot,
                Token::Ident("geometry".into()),
                Token::Comma,
                Token::Number(5.0),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // comment here\nb -- another\nc");
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("abc\n  #").unwrap_err();
        match err {
            PrmlError::Lex { pos, .. } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.column, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\nbb\n  c").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[2].pos, SourcePos { line: 3, column: 3 });
    }
}
