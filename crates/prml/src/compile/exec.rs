//! Execution of compiled rule bodies against an evaluation context.
//!
//! The executor shares every semantic kernel with the AST interpreter
//! ([`binary_values`], [`unary_value`], [`call_values`],
//! [`access_properties`], [`evaluate_model_path`], [`execute_action`],
//! [`select_value`]) — only the dispatch differs: a postfix value stack
//! with slot-indexed variable reads instead of tree walking with a
//! name-scanned scope.

use crate::compile::program::{Binding, CStmt, ModelPlan, Op, Prog};
use crate::error::PrmlError;
use crate::eval::action::{execute_action, rename, select_value};
use crate::eval::context::{EvalContext, RuleEffect};
use crate::eval::expr::{
    access_properties, binary_values, call_values, evaluate_model_path, unary_value,
};
use crate::eval::value::{InstanceRef, InstanceSource, Value};
use sdwp_user::{assign_sus_path, resolve_sus_path};

/// Runs a compiled expression program, returning the single value it
/// leaves on the stack.
pub(crate) fn run_prog(
    prog: &Prog,
    slots: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, PrmlError> {
    let mut stack: Vec<Value> = Vec::with_capacity(4);
    for op in &prog.ops {
        match op {
            Op::Const(value) => stack.push(value.clone()),
            Op::Fail(message) => return Err(PrmlError::eval("", message.clone())),
            Op::Slot(slot) => stack.push(slots[usize::from(*slot)].clone()),
            Op::SlotProps { slot, props } => {
                let base = &slots[usize::from(*slot)];
                stack.push(access_properties(base, props, ctx)?);
            }
            Op::Param { key, display } => {
                let value = ctx.parameter(key).ok_or_else(|| {
                    PrmlError::eval(
                        "",
                        format!("'{display}' is not a model path, loop variable or parameter"),
                    )
                })?;
                stack.push(Value::Number(value));
            }
            Op::Sus(path) => {
                let value = resolve_sus_path(ctx.profile, ctx.session, path)
                    .map_err(|e| PrmlError::eval("", e.to_string()))?;
                stack.push(Value::from_user(value));
            }
            Op::Model(plan) => stack.push(run_model_plan(plan, ctx)?),
            Op::Unary(op) => {
                let value = stack.pop().expect("unary operand on stack");
                stack.push(unary_value(*op, &value)?);
            }
            Op::Binary(op) => {
                let rhs = stack.pop().expect("binary rhs on stack");
                let lhs = stack.pop().expect("binary lhs on stack");
                stack.push(binary_values(*op, &lhs, &rhs)?);
            }
            Op::Call { function, argc } => {
                let args = stack.split_off(stack.len() - argc);
                stack.push(call_values(function, args, ctx)?);
            }
        }
    }
    Ok(stack.pop().expect("program leaves exactly one value"))
}

fn run_model_plan(plan: &ModelPlan, ctx: &EvalContext<'_>) -> Result<Value, PrmlError> {
    let olap_err = |e: sdwp_olap::OlapError| PrmlError::eval("", e.to_string());
    match plan {
        ModelPlan::Level { dimension, level } => {
            let table = &ctx.cube.dimension_table(dimension).map_err(olap_err)?.table;
            let instances = (0..table.len())
                .map(|row| {
                    Value::Instance(InstanceRef::level(dimension.clone(), level.clone(), row))
                })
                .collect();
            Ok(Value::Collection(instances))
        }
        ModelPlan::Attribute { dimension, column } => {
            let table = &ctx.cube.dimension_table(dimension).map_err(olap_err)?.table;
            let values = (0..table.len())
                .map(|row| {
                    table
                        .get(row, column)
                        .map(Value::from_cell)
                        .map_err(olap_err)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Collection(values))
        }
        ModelPlan::Dynamic(segments) => evaluate_model_path(segments, ctx),
    }
}

/// Runs a compiled statement block.
pub(crate) fn run_statements(
    statements: &[CStmt],
    slots: &mut Vec<Value>,
    ctx: &mut EvalContext<'_>,
    effect: &mut RuleEffect,
) -> Result<(), PrmlError> {
    for statement in statements {
        match statement {
            CStmt::If {
                condition,
                then_branch,
                else_branch,
            } => {
                let value = run_prog(condition, slots, ctx)?;
                let holds = value.as_bool().ok_or_else(|| {
                    PrmlError::eval(
                        "",
                        format!(
                            "condition evaluated to {} instead of a boolean",
                            value.type_name()
                        ),
                    )
                })?;
                if holds {
                    run_statements(then_branch, slots, ctx, effect)?;
                } else {
                    run_statements(else_branch, slots, ctx, effect)?;
                }
            }
            CStmt::Foreach {
                bindings,
                sources,
                body,
            } => {
                let mut collections: Vec<Vec<Value>> = Vec::with_capacity(sources.len());
                for source in sources {
                    match run_prog(source, slots, ctx)? {
                        Value::Collection(items) => collections.push(items),
                        other => {
                            return Err(PrmlError::eval(
                                "",
                                format!(
                                    "Foreach source must be a collection, got a {}",
                                    other.type_name()
                                ),
                            ))
                        }
                    }
                }
                // Pre-register empty selections for selected dimensions,
                // so a zero-match loop still restricts the view (§5.2).
                for (binding, collection) in bindings.iter().zip(&collections) {
                    if !binding.preselect {
                        continue;
                    }
                    if let Some(Value::Instance(instance)) = collection.first() {
                        if let InstanceSource::Level { dimension, .. } = &instance.source {
                            effect.selections.entry(dimension.clone()).or_default();
                        }
                    }
                }
                iterate(0, bindings, &collections, body, slots, ctx, effect)?;
            }
            CStmt::Direct(action) => execute_action(action, ctx, effect)?,
            CStmt::Select { target } => {
                let rule = effect.rule.clone();
                let value = run_prog(target, slots, ctx).map_err(|e| rename(e, &rule))?;
                select_value(&value, effect, &rule)?;
            }
            CStmt::SetContent { value, path } => {
                let rule = effect.rule.clone();
                let new_value = run_prog(value, slots, ctx).map_err(|e| rename(e, &rule))?;
                let path = path
                    .as_ref()
                    .map_err(|message| PrmlError::eval(&rule, message.clone()))?;
                assign_sus_path(ctx.profile, path, new_value.into_user())
                    .map_err(|e| PrmlError::eval(&rule, e.to_string()))?;
                effect.set_contents += 1;
            }
            CStmt::Fail(message) => {
                return Err(PrmlError::eval(&effect.rule, message.clone()));
            }
        }
    }
    Ok(())
}

fn iterate(
    depth: usize,
    bindings: &[Binding],
    collections: &[Vec<Value>],
    body: &[CStmt],
    slots: &mut Vec<Value>,
    ctx: &mut EvalContext<'_>,
    effect: &mut RuleEffect,
) -> Result<(), PrmlError> {
    if depth == bindings.len() {
        return run_statements(body, slots, ctx, effect);
    }
    let slot = usize::from(bindings[depth].slot);
    for item in &collections[depth] {
        slots[slot] = item.clone();
        iterate(depth + 1, bindings, collections, body, slots, ctx, effect)?;
    }
    Ok(())
}
