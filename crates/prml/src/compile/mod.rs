//! Compiled rule evaluation.
//!
//! [`CompiledRuleSet::compile`] turns a set of parsed rules into a compact
//! instruction stream after an up-front validation pass (the same
//! [`check_rules`](crate::typecheck::check_rules) set check the
//! interpreter path uses — nothing the checker rejects ever compiles).
//! Compilation pre-resolves everything that cannot change at runtime:
//!
//! * event matchers become precomputed strings ([`MatchSpec`]), so the
//!   **condition (match) phase is lock-free** — deciding which rules an
//!   event fires touches no cube state at all;
//! * loop variables read from depth-indexed slots instead of a
//!   name-scanned scope stack;
//! * `SUS.` paths are pre-parsed, designer parameters pre-lowercased, and
//!   level/attribute model paths pre-resolved (layer- and
//!   spatiality-sensitive paths re-resolve against the live schema,
//!   because schema rules grow it at runtime);
//! * literal subtrees are constant-folded through the interpreter's own
//!   semantic kernels, preserving error wording and evaluation order.
//!
//! The AST interpreter in [`crate::eval`] stays untouched as the oracle:
//! `crates/prml/tests/compiled_equivalence.rs` asserts compiled ≡
//! interpreted over generated rules and event streams.

mod exec;
mod program;

pub use program::{CompiledRule, MatchSpec};

use crate::ast::Rule;
use crate::error::PrmlError;
use crate::eval::context::{EvalContext, RuleEffect};
use crate::eval::engine::{attach_rule, FireReport, RuntimeEvent};
use crate::eval::value::Value;
use crate::typecheck::{augmented_schema, check_rules, RuleClass};
use sdwp_model::Schema;

/// An immutable set of compiled rules, ready to be published behind an
/// `ArcSwap` and hot-swapped without draining in-flight firings.
#[derive(Debug, Clone, Default)]
pub struct CompiledRuleSet {
    rules: Vec<CompiledRule>,
}

impl CompiledRuleSet {
    /// Validates and compiles a rule set against a schema.
    ///
    /// Validation is the interpreter path's own whole-set check (every
    /// rule's schema effects applied to a scratch schema first, Fig. 1's
    /// two-stage process), so anything the interpreter would reject at
    /// registration is rejected here — and on failure the caller's
    /// in-service rule set stays untouched.
    pub fn compile(rules: &[Rule], schema: &Schema) -> Result<CompiledRuleSet, PrmlError> {
        let classes = check_rules(rules, schema)?;
        let effective = augmented_schema(rules, schema);
        let compiled = rules
            .iter()
            .zip(classes)
            .map(|(rule, class)| program::compile_rule(rule, class, &effective))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledRuleSet { rules: compiled })
    }

    /// The compiled rules, in registration order.
    pub fn rules(&self) -> &[CompiledRule] {
        &self.rules
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The classification of each rule, in registration order.
    pub fn classes(&self) -> Vec<RuleClass> {
        self.rules.iter().map(|r| r.class).collect()
    }

    /// The lock-free condition phase: which rules does this event fire?
    ///
    /// Pure string comparison over precomputed matchers — no cube access,
    /// no allocation beyond the result, safe to run against any snapshot
    /// without holding the master lock.
    pub fn matched_rules(&self, event: &RuntimeEvent) -> Vec<usize> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, rule)| rule.matcher.matches(event))
            .map(|(index, _)| index)
            .collect()
    }

    /// The effect-application phase: runs the bodies of the rules
    /// `matched_rules` returned, in registration order, against a mutable
    /// context (the caller holds whatever lock the context requires).
    /// Produces the same report — and on failure the same error, wording
    /// included — as the interpreter's `fire`.
    pub fn fire_matched(
        &self,
        matched: &[usize],
        ctx: &mut EvalContext<'_>,
    ) -> Result<FireReport, PrmlError> {
        let mut report = FireReport {
            effects: Vec::new(),
            rules_matched: matched.len(),
        };
        for &index in matched {
            let rule = &self.rules[index];
            let mut effect = RuleEffect::new(rule.name.clone());
            let mut slots = vec![Value::Null; rule.slot_count];
            exec::run_statements(&rule.body, &mut slots, ctx, &mut effect)
                .map_err(|e| attach_rule(e, &rule.name))?;
            report.effects.push(effect);
        }
        Ok(report)
    }

    /// Convenience single-call firing (condition phase + effect phase),
    /// drop-in equivalent to the interpreter's `RuleEngine::fire`.
    pub fn fire(
        &self,
        event: &RuntimeEvent,
        ctx: &mut EvalContext<'_>,
    ) -> Result<FireReport, PrmlError> {
        let matched = self.matched_rules(event);
        self.fire_matched(&matched, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::*;
    use crate::eval::context::StaticLayerSource;
    use crate::eval::engine::RuleEngine;
    use crate::parser::parse_rules;
    use sdwp_geometry::{LineString, Point};
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
    use sdwp_olap::{CellValue, Cube};
    use sdwp_user::{Role, Session, SpatialSelectionInterest, UserProfile};

    fn sales_schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .level(
                        "Store",
                        vec![
                            sdwp_model::Attribute::descriptor("name", AttributeType::Text),
                            sdwp_model::Attribute::new("address", AttributeType::Text),
                        ],
                    )
                    .simple_level("City", "name")
                    .simple_level("State", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .simple_level("Day", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap()
    }

    fn sales_cube() -> Cube {
        let mut cube = Cube::new(sales_schema());
        for i in 0..5 {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    ("City.name", CellValue::from(format!("City{i}"))),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                    ),
                    (
                        "City.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 1.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        cube.add_dimension_member("Time", vec![("Day.name", CellValue::from("Mon"))])
            .unwrap();
        cube
    }

    fn manager_profile() -> UserProfile {
        UserProfile::new("u1", "Octavio")
            .with_role(Role::new("RegionalSalesManager"))
            .with_interest(SpatialSelectionInterest::new("AirportCity"))
    }

    fn layers() -> StaticLayerSource {
        let mut source = StaticLayerSource::new();
        source.insert(
            "Airport",
            vec![("ALC".to_string(), Point::new(0.0, 1.0).into())],
        );
        source.insert(
            "Train",
            vec![(
                "coastal line".to_string(),
                LineString::from_tuples(&[(0.0, 1.0), (50.0, 1.0)])
                    .unwrap()
                    .into(),
            )],
        );
        source
    }

    /// Fires both engines on identical state and asserts identical
    /// outcomes (report or error text) plus identical resulting schemas
    /// and profiles.
    fn assert_equivalent(rules_text: &[&str], event: &RuntimeEvent, threshold: Option<f64>) {
        let rules: Vec<Rule> = rules_text
            .iter()
            .flat_map(|t| parse_rules(t).unwrap())
            .collect();
        let compiled = CompiledRuleSet::compile(&rules, &sales_schema()).unwrap();
        let mut engine = RuleEngine::new();
        for rule in &rules {
            engine.add_rule(rule.clone());
        }

        let source = layers();
        let session = Session::start(1, "u1");

        let mut cube_i = sales_cube();
        let mut profile_i = manager_profile();
        let mut ctx = EvalContext::new(&mut cube_i, &mut profile_i)
            .with_session(&session)
            .with_layer_source(&source);
        if let Some(t) = threshold {
            ctx = ctx.with_parameter("threshold", t);
        }
        let interpreted = engine.fire(event, &mut ctx);
        drop(ctx);

        let mut cube_c = sales_cube();
        let mut profile_c = manager_profile();
        let mut ctx = EvalContext::new(&mut cube_c, &mut profile_c)
            .with_session(&session)
            .with_layer_source(&source);
        if let Some(t) = threshold {
            ctx = ctx.with_parameter("threshold", t);
        }
        let compiled_result = compiled.fire(event, &mut ctx);
        drop(ctx);

        match (interpreted, compiled_result) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("interpreter {a:?} vs compiled {b:?}"),
        }
        assert_eq!(cube_i.schema(), cube_c.schema());
        assert_eq!(profile_i, profile_c);
    }

    #[test]
    fn paper_rules_compile_and_match_the_interpreter() {
        for event in [
            RuntimeEvent::SessionStart,
            RuntimeEvent::SessionEnd,
            RuntimeEvent::spatial_selection("GeoMD.Store.City"),
        ] {
            assert_equivalent(&ALL_PAPER_RULES, &event, Some(2.0));
        }
    }

    #[test]
    fn classes_match_the_checker() {
        let rules: Vec<Rule> = ALL_PAPER_RULES
            .iter()
            .flat_map(|t| parse_rules(t).unwrap())
            .collect();
        let schema = sales_schema();
        let compiled = CompiledRuleSet::compile(&rules, &schema).unwrap();
        assert_eq!(compiled.classes(), check_rules(&rules, &schema).unwrap());
        assert_eq!(compiled.len(), rules.len());
        assert!(!compiled.is_empty());
    }

    #[test]
    fn matched_rules_is_the_interpreters_event_match() {
        let rules: Vec<Rule> = ALL_PAPER_RULES
            .iter()
            .flat_map(|t| parse_rules(t).unwrap())
            .collect();
        let compiled = CompiledRuleSet::compile(&rules, &sales_schema()).unwrap();
        // Element matched with an explicit expression: exact normalised
        // text comparison, like the interpreter.
        let matching = RuntimeEvent::SpatialSelection {
            element: "GeoMD.Store.City".into(),
            expression: Some(
                "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20".into(),
            ),
        };
        assert_eq!(compiled.matched_rules(&matching).len(), 1);
        let non_matching = RuntimeEvent::SpatialSelection {
            element: "GeoMD.Store.City".into(),
            expression: Some("Inside(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)".into()),
        };
        assert!(compiled.matched_rules(&non_matching).is_empty());
        assert!(compiled
            .matched_rules(&RuntimeEvent::spatial_selection("GeoMD.Customer"))
            .is_empty());
    }

    #[test]
    fn constant_folding_preserves_division_by_zero() {
        let rules = parse_rules(
            "Rule:bad When SessionStart do If (1 / 0 > 1) then AddLayer('x', POINT) endIf endWhen",
        )
        .unwrap();
        let compiled = CompiledRuleSet::compile(&rules, &sales_schema()).unwrap();
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let err = compiled
            .fire(&RuntimeEvent::SessionStart, &mut ctx)
            .unwrap_err();
        assert!(err.to_string().contains("division by zero"));
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn constant_folding_evaluates_literal_arithmetic() {
        // (2 + 3) * 4 > 10 folds to a constant true: the compiled body is
        // a bare If whose condition is a single Const op, and firing takes
        // the then-branch.
        let rules = parse_rules(
            "Rule:folded When SessionStart do \
             If ((2 + 3) * 4 > 10) then SetContent(SUS.DecisionMaker.theme, 'dark') endIf endWhen",
        )
        .unwrap();
        let compiled = CompiledRuleSet::compile(&rules, &sales_schema()).unwrap();
        let mut cube = sales_cube();
        let mut profile = manager_profile();
        let mut ctx = EvalContext::new(&mut cube, &mut profile);
        let report = compiled
            .fire(&RuntimeEvent::SessionStart, &mut ctx)
            .unwrap();
        assert_eq!(report.effects[0].set_contents, 1);
    }

    // ----- negative paths: every rejection leaves nothing compiled -----

    #[test]
    fn unknown_model_path_is_rejected_at_compile() {
        let rules = parse_rules(
            "Rule:bad When SessionStart do \
             If (MD.Sales.Warehouse.name = 'x') then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        let err = CompiledRuleSet::compile(&rules, &sales_schema()).unwrap_err();
        assert!(matches!(err, PrmlError::Check { .. }));
    }

    #[test]
    fn undeclared_variable_is_rejected_at_compile() {
        let rules = parse_rules("Rule:bad When SessionStart do SelectInstance(s) endWhen").unwrap();
        assert!(CompiledRuleSet::compile(&rules, &sales_schema()).is_err());
    }

    #[test]
    fn bad_set_content_target_is_rejected_at_compile() {
        let rules =
            parse_rules("Rule:bad When SessionStart do SetContent(MD.Sales.UnitSales, 1) endWhen")
                .unwrap();
        assert!(CompiledRuleSet::compile(&rules, &sales_schema()).is_err());
    }

    #[test]
    fn wrong_operator_arity_is_rejected_at_compile() {
        let rules = parse_rules(
            "Rule:bad When SessionStart do \
             If (Inside(MD.Sales.Store.name) = true) then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        assert!(CompiledRuleSet::compile(&rules, &sales_schema()).is_err());
    }

    #[test]
    fn unknown_operator_is_rejected_at_compile() {
        let rules = parse_rules(
            "Rule:bad When SessionStart do \
             If (Buffer(MD.Sales.Store.name, 5) = true) then AddLayer('A', POINT) endIf endWhen",
        )
        .unwrap();
        assert!(CompiledRuleSet::compile(&rules, &sales_schema()).is_err());
    }

    #[test]
    fn shadowed_loop_variable_is_rejected_at_compile() {
        let rules = parse_rules(
            "Rule:bad When SessionStart do \
             Foreach s in (GeoMD.Store) Foreach s in (GeoMD.Store) SelectInstance(s) endForeach endForeach endWhen",
        )
        .unwrap();
        assert!(CompiledRuleSet::compile(&rules, &sales_schema()).is_err());
    }

    #[test]
    fn become_spatial_unknown_level_is_rejected_at_compile() {
        let rules = parse_rules(
            "Rule:bad When SessionStart do BecomeSpatial(MD.Sales.Warehouse.geometry, POINT) endWhen",
        )
        .unwrap();
        assert!(CompiledRuleSet::compile(&rules, &sales_schema()).is_err());
    }
}
