//! The compiled instruction stream and the lowering pass that produces it.
//!
//! Expressions lower to postfix programs over a value stack; statements
//! lower to a small tree mirroring the interpreter's control flow but with
//! loop variables bound to pre-allocated slots instead of a name-scanned
//! scope stack, SUS paths pre-parsed, designer-parameter keys
//! pre-lowercased and runtime-immutable model paths pre-resolved.
//!
//! Constant folding evaluates literal subtrees at compile time through the
//! *same* semantic kernels the interpreter uses ([`binary_values`],
//! [`unary_value`]), so a folded `1 / 0` becomes a [`Op::Fail`] carrying
//! the interpreter's exact "division by zero" message, raised at the
//! interpreter's exact evaluation point (left operand before right).

use crate::ast::{Action, BinaryOp, EventSpec, Expr, Rule, Statement, UnaryOp};
use crate::error::PrmlError;
use crate::eval::engine::{body_selects_variable, normalise};
use crate::eval::expr::{binary_values, unary_value};
use crate::eval::value::Value;
use crate::pretty::print_expr;
use crate::typecheck::RuleClass;
use sdwp_model::{PathExpr, PathPrefix, PathResolver, PathTarget, Schema};
use sdwp_olap::cube::attribute_column;
use sdwp_user::SusPath;

/// One instruction of a compiled expression program (postfix order).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Push a constant (a literal or a constant-folded subtree).
    Const(Value),
    /// Raise an evaluation error with this message — a subtree the folder
    /// proved always fails, raised in the interpreter's evaluation order.
    Fail(String),
    /// Push the loop variable bound to this slot.
    Slot(u16),
    /// Push a property chain read off the loop variable in this slot.
    SlotProps {
        /// The variable's slot.
        slot: u16,
        /// The property segments after the variable name.
        props: Vec<String>,
    },
    /// Push a designer parameter.
    Param {
        /// Pre-lowercased lookup key.
        key: String,
        /// The identifier as written (for the unknown-parameter error).
        display: String,
    },
    /// Push a user-model value (path pre-parsed at compile time).
    Sus(SusPath),
    /// Push the value of an `MD.` / `GeoMD.` path.
    Model(ModelPlan),
    /// Pop one value and apply a unary operator.
    Unary(UnaryOp),
    /// Pop two values and apply a binary operator.
    Binary(BinaryOp),
    /// Pop `argc` values and apply a named operator.
    Call {
        /// Operator name as written.
        function: String,
        /// Number of arguments to pop.
        argc: usize,
    },
}

/// How a compiled `MD.` / `GeoMD.` path reads the cube.
///
/// Dimensions, levels and attributes never change at runtime, so paths
/// resolving to them are pre-resolved (the attribute's physical column
/// name is precomputed). Layers and geometries *do* change at runtime
/// (`AddLayer` / `BecomeSpatial` earlier in the same firing), so those
/// paths re-resolve against the live schema per evaluation, exactly like
/// the interpreter — including its errors when the schema element does
/// not exist yet.
#[derive(Debug, Clone)]
pub(crate) enum ModelPlan {
    /// All instances of a pre-resolved level.
    Level {
        /// Dimension name.
        dimension: String,
        /// Level name.
        level: String,
    },
    /// All values of a level attribute, with the physical column name
    /// precomputed.
    Attribute {
        /// Dimension name.
        dimension: String,
        /// Precomputed `attribute_column(level, attribute)` name.
        column: String,
    },
    /// Re-resolve the segments against the live schema at runtime.
    Dynamic(Vec<String>),
}

/// A compiled expression: a postfix program leaving one value on the stack.
#[derive(Debug, Clone)]
pub(crate) struct Prog {
    pub(crate) ops: Vec<Op>,
}

/// A loop-variable binding of a compiled `Foreach`.
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    /// The slot the variable binds to.
    pub(crate) slot: u16,
    /// Whether the loop body selects this variable (pre-registers an empty
    /// dimension selection even when zero instances match, §5.2).
    pub(crate) preselect: bool,
}

/// A compiled statement.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    /// A conditional.
    If {
        condition: Prog,
        then_branch: Vec<CStmt>,
        else_branch: Vec<CStmt>,
    },
    /// A cartesian-product loop.
    Foreach {
        bindings: Vec<Binding>,
        sources: Vec<Prog>,
        body: Vec<CStmt>,
    },
    /// A schema action (`AddLayer` / `BecomeSpatial`), executed through
    /// the interpreter's own action executor so the two paths share one
    /// mutation implementation.
    Direct(Action),
    /// `SelectInstance` with a compiled target.
    Select { target: Prog },
    /// `SetContent` with the SUS path pre-parsed (or its parse error
    /// preserved, raised after the value evaluates — the interpreter's
    /// error order).
    SetContent {
        value: Prog,
        path: Result<SusPath, String>,
    },
    /// A statement the compiler proved always fails at runtime.
    Fail(String),
}

/// A rule's event specification with all matching text precomputed, so the
/// condition (match) phase is pure string comparison against the event —
/// no locks, no cube access, no per-event pretty-printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchSpec {
    /// Matches `SessionStart` events.
    SessionStart,
    /// Matches `SessionEnd` events.
    SessionEnd,
    /// Matches `SpatialSelection` events by element text and (when the
    /// event carries one) normalised condition text.
    SpatialSelection {
        /// The pretty-printed element path.
        element: String,
        /// The normalised pretty-printed condition.
        condition: String,
    },
}

impl MatchSpec {
    /// Does this specification match a runtime event? Behaviourally
    /// identical to the interpreter's event matching, with the rule side
    /// precomputed at compile time.
    pub fn matches(&self, event: &crate::eval::engine::RuntimeEvent) -> bool {
        use crate::eval::engine::RuntimeEvent;
        match (self, event) {
            (MatchSpec::SessionStart, RuntimeEvent::SessionStart) => true,
            (MatchSpec::SessionEnd, RuntimeEvent::SessionEnd) => true,
            (
                MatchSpec::SpatialSelection { element, condition },
                RuntimeEvent::SpatialSelection {
                    element: event_element,
                    expression,
                },
            ) => {
                element.eq_ignore_ascii_case(event_element)
                    && match expression {
                        None => true,
                        Some(text) => *condition == normalise(text),
                    }
            }
            _ => false,
        }
    }
}

/// One rule lowered to the compact instruction stream.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The rule name (attached to evaluation errors, like the
    /// interpreter).
    pub name: String,
    /// The personalization stage the rule belongs to.
    pub class: RuleClass,
    /// The precomputed event matcher.
    pub matcher: MatchSpec,
    pub(crate) body: Vec<CStmt>,
    pub(crate) slot_count: usize,
}

/// Lowers one type-checked rule against the effective (augmented) schema.
pub(crate) fn compile_rule(
    rule: &Rule,
    class: RuleClass,
    schema: &Schema,
) -> Result<CompiledRule, PrmlError> {
    let matcher = match &rule.event {
        EventSpec::SessionStart => MatchSpec::SessionStart,
        EventSpec::SessionEnd => MatchSpec::SessionEnd,
        EventSpec::SpatialSelection { element, condition } => MatchSpec::SpatialSelection {
            element: print_expr(element),
            condition: normalise(&print_expr(condition)),
        },
    };
    let mut compiler = Compiler {
        rule: &rule.name,
        schema,
        scope: Vec::new(),
        max_slots: 0,
    };
    let body = compiler.compile_statements(&rule.body)?;
    Ok(CompiledRule {
        name: rule.name.clone(),
        class,
        matcher,
        body,
        slot_count: compiler.max_slots,
    })
}

struct Compiler<'a> {
    rule: &'a str,
    schema: &'a Schema,
    /// Statically tracked loop-variable scope; a variable's slot is its
    /// depth at binding time (the runtime scope stack is exactly the
    /// lexical nesting, so depth-indexed slots reproduce innermost-wins
    /// lookup).
    scope: Vec<String>,
    max_slots: usize,
}

/// Where the folder landed for a subtree.
enum Folded {
    /// The subtree is a compile-time constant.
    Const(Value),
    /// The subtree always fails with this message.
    Fail(String),
    /// The subtree needs runtime evaluation.
    Dyn(Vec<Op>),
}

impl Folded {
    fn into_ops(self) -> Vec<Op> {
        match self {
            Folded::Const(value) => vec![Op::Const(value)],
            Folded::Fail(message) => vec![Op::Fail(message)],
            Folded::Dyn(ops) => ops,
        }
    }
}

/// Extracts the message of an anonymous evaluation error produced by a
/// shared kernel during folding (kernels always return `Eval` with an
/// empty rule name).
fn eval_message(error: PrmlError) -> String {
    match error {
        PrmlError::Eval { message, .. } => message,
        other => other.to_string(),
    }
}

impl Compiler<'_> {
    fn compile_statements(&mut self, statements: &[Statement]) -> Result<Vec<CStmt>, PrmlError> {
        statements
            .iter()
            .map(|s| self.compile_statement(s))
            .collect()
    }

    fn compile_statement(&mut self, statement: &Statement) -> Result<CStmt, PrmlError> {
        match statement {
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => Ok(CStmt::If {
                condition: self.compile_expr(condition),
                then_branch: self.compile_statements(then_branch)?,
                else_branch: self.compile_statements(else_branch)?,
            }),
            Statement::Foreach {
                variables,
                sources,
                body,
            } => {
                // Sources evaluate in the outer scope, before the loop
                // variables bind (the interpreter pushes bindings only
                // once all collections are materialised).
                let sources: Vec<Prog> = sources.iter().map(|s| self.compile_expr(s)).collect();
                let mut bindings = Vec::with_capacity(variables.len());
                for variable in variables {
                    let slot = self.scope.len();
                    if slot > usize::from(u16::MAX) {
                        return Err(PrmlError::Check {
                            rule: self.rule.to_string(),
                            message: "too many nested loop variables to compile".into(),
                        });
                    }
                    bindings.push(Binding {
                        slot: slot as u16,
                        preselect: body_selects_variable(body, variable),
                    });
                    self.scope.push(variable.clone());
                    self.max_slots = self.max_slots.max(self.scope.len());
                }
                let compiled_body = self.compile_statements(body);
                self.scope.truncate(self.scope.len() - variables.len());
                Ok(CStmt::Foreach {
                    bindings,
                    sources,
                    body: compiled_body?,
                })
            }
            Statement::Action(action) => Ok(self.compile_action(action)),
        }
    }

    fn compile_action(&mut self, action: &Action) -> CStmt {
        match action {
            Action::AddLayer { .. } | Action::BecomeSpatial { .. } => CStmt::Direct(action.clone()),
            Action::SelectInstance { target } => CStmt::Select {
                target: self.compile_expr(target),
            },
            Action::SetContent { target, value } => {
                let Some(segments) = target.as_path() else {
                    return CStmt::Fail("SetContent target must be a path".into());
                };
                if !segments
                    .first()
                    .map(|s| s.eq_ignore_ascii_case("SUS"))
                    .unwrap_or(false)
                {
                    return CStmt::Fail(format!(
                        "SetContent target '{}' must be a SUS (user model) path",
                        segments.join(".")
                    ));
                }
                CStmt::SetContent {
                    value: self.compile_expr(value),
                    path: SusPath::parse(&segments.join(".")).map_err(|e| e.to_string()),
                }
            }
        }
    }

    fn compile_expr(&mut self, expr: &Expr) -> Prog {
        Prog {
            ops: self.fold(expr).into_ops(),
        }
    }

    fn fold(&mut self, expr: &Expr) -> Folded {
        match expr {
            Expr::Number(n) => Folded::Const(Value::Number(*n)),
            Expr::Text(s) => Folded::Const(Value::Text(s.clone())),
            Expr::Boolean(b) => Folded::Const(Value::Boolean(*b)),
            Expr::GeometricType(g) => Folded::Const(Value::GeometricType(*g)),
            Expr::Path(segments) => self.fold_path(segments),
            Expr::Unary { op, operand } => match self.fold(operand) {
                Folded::Const(value) => match unary_value(*op, &value) {
                    Ok(folded) => Folded::Const(folded),
                    Err(e) => Folded::Fail(eval_message(e)),
                },
                Folded::Fail(message) => Folded::Fail(message),
                Folded::Dyn(mut ops) => {
                    ops.push(Op::Unary(*op));
                    Folded::Dyn(ops)
                }
            },
            Expr::Binary { op, left, right } => {
                let lhs = self.fold(left);
                let rhs = self.fold(right);
                match (lhs, rhs) {
                    // The interpreter evaluates left before right, so a
                    // failing left subtree swallows the right one...
                    (Folded::Fail(message), _) => Folded::Fail(message),
                    // ...and a constant left cannot fail before a failing
                    // right does.
                    (Folded::Const(_), Folded::Fail(message)) => Folded::Fail(message),
                    (Folded::Const(a), Folded::Const(b)) => match binary_values(*op, &a, &b) {
                        Ok(value) => Folded::Const(value),
                        Err(e) => Folded::Fail(eval_message(e)),
                    },
                    // A dynamic left runs first even when the right always
                    // fails: its runtime error (if any) must win.
                    (lhs, rhs) => {
                        let mut ops = lhs.into_ops();
                        ops.extend(rhs.into_ops());
                        ops.push(Op::Binary(*op));
                        Folded::Dyn(ops)
                    }
                }
            }
            Expr::Call { function, args } => {
                // Calls touch the context (distance metric, cube
                // geometries), so they never fold — but argument order is
                // preserved, so a folded failing argument still raises at
                // the interpreter's exact point.
                let mut ops = Vec::new();
                for arg in args {
                    ops.extend(self.fold(arg).into_ops());
                }
                ops.push(Op::Call {
                    function: function.clone(),
                    argc: args.len(),
                });
                Folded::Dyn(ops)
            }
        }
    }

    /// Classifies a path exactly like the interpreter's runtime
    /// precedence: SUS → MD/GeoMD → loop variable → designer parameter →
    /// error. The compile-time scope tracks the lexical loop nesting, which
    /// is precisely the interpreter's runtime binding stack.
    fn fold_path(&mut self, segments: &[String]) -> Folded {
        let Some(head) = segments.first() else {
            return Folded::Fail("empty path expression".into());
        };
        if head.eq_ignore_ascii_case("SUS") {
            return match SusPath::parse(&segments.join(".")) {
                Ok(path) => Folded::Dyn(vec![Op::Sus(path)]),
                Err(e) => Folded::Fail(e.to_string()),
            };
        }
        if head.eq_ignore_ascii_case("MD") || head.eq_ignore_ascii_case("GeoMD") {
            return self.plan_model_path(segments);
        }
        if let Some(slot) = self.scope.iter().rposition(|name| name == head) {
            let slot = slot as u16;
            return Folded::Dyn(vec![if segments.len() == 1 {
                Op::Slot(slot)
            } else {
                Op::SlotProps {
                    slot,
                    props: segments[1..].to_vec(),
                }
            }]);
        }
        if segments.len() == 1 {
            return Folded::Dyn(vec![Op::Param {
                key: head.to_lowercase(),
                display: head.clone(),
            }]);
        }
        Folded::Fail(format!(
            "'{}' is not a model path, loop variable or parameter",
            segments.join(".")
        ))
    }

    /// Pre-resolves a model path where the resolution is provably stable
    /// at runtime. Facts and measures are immutable and always rejected by
    /// the evaluator, so they fold to the rejection. Levels and attributes
    /// are immutable and resolve the same against any live schema (layers
    /// shadow them in resolution order, but a path that resolved *past*
    /// the layer check cannot start shadowing — the compile schema already
    /// contains every layer the rule set can add). Everything else —
    /// layers, geometries, resolution failures — re-resolves at runtime,
    /// because the live schema augments incrementally as schema rules run.
    fn plan_model_path(&self, segments: &[String]) -> Folded {
        let prefix = PathPrefix::parse(&segments[0]).unwrap_or(PathPrefix::GeoMd);
        let expr = PathExpr::new(prefix, segments[1..].to_vec());
        let plan = match PathResolver::new(self.schema).resolve(&expr) {
            Ok(PathTarget::Fact { fact }) | Ok(PathTarget::Measure { fact, .. }) => {
                return Folded::Fail(format!(
                    "fact '{fact}' cannot be used directly in a rule expression"
                ));
            }
            Ok(PathTarget::Level { dimension, level }) => ModelPlan::Level { dimension, level },
            Ok(PathTarget::LevelAttribute {
                dimension,
                level,
                attribute,
            }) => ModelPlan::Attribute {
                dimension,
                column: attribute_column(&level, &attribute),
            },
            _ => ModelPlan::Dynamic(segments.to_vec()),
        };
        Folded::Dyn(vec![Op::Model(plan)])
    }
}
