//! Property-based tests for the geometry crate's core invariants.

use proptest::prelude::*;
use sdwp_geometry::distance::euclidean;
use sdwp_geometry::wkt::{parse_wkt, to_wkt};
use sdwp_geometry::{
    measures, predicates, BoundingBox, Coord, Geometry, GeometryCollection, LineString, Point,
    Polygon,
};

fn coord_strategy() -> impl Strategy<Value = Coord> {
    (
        prop::num::f64::NORMAL.prop_map(|x| (x % 1000.0).abs() - 500.0),
        prop::num::f64::NORMAL.prop_map(|y| (y % 1000.0).abs() - 500.0),
    )
        .prop_map(|(x, y)| Coord::new(x, y))
}

fn point_strategy() -> impl Strategy<Value = Point> {
    coord_strategy().prop_map(Point::from_coord)
}

fn line_strategy() -> impl Strategy<Value = LineString> {
    prop::collection::vec(coord_strategy(), 2..12)
        .prop_filter_map("valid linestring", |coords| LineString::new(coords).ok())
}

fn polygon_strategy() -> impl Strategy<Value = Polygon> {
    // Convex polygons generated from a centre, radius and vertex count keep
    // the generator simple while exercising realistic areal shapes.
    (coord_strategy(), 1.0f64..50.0, 3usize..10).prop_map(|(center, radius, n)| {
        let ring: Vec<Coord> = (0..n)
            .map(|i| {
                let angle = i as f64 / n as f64 * std::f64::consts::TAU;
                Coord::new(
                    center.x + radius * angle.cos(),
                    center.y + radius * angle.sin(),
                )
            })
            .collect();
        Polygon::new(ring, Vec::new()).expect("regular polygon is valid")
    })
}

fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        point_strategy().prop_map(Geometry::from),
        line_strategy().prop_map(Geometry::from),
        polygon_strategy().prop_map(Geometry::from),
        prop::collection::vec(point_strategy().prop_map(Geometry::from), 0..4)
            .prop_map(|v| Geometry::from(GeometryCollection::new(v))),
    ]
}

proptest! {
    #[test]
    fn wkt_round_trip(g in geometry_strategy()) {
        let text = to_wkt(&g);
        let parsed = parse_wkt(&text).expect("emitted WKT must parse");
        // Round-tripped geometry has the same type and the same coordinates
        // (within float printing precision).
        prop_assert_eq!(g.geometric_type(), parsed.geometric_type());
        let a = measures::coordinates(&g);
        let b = measures::coordinates(&parsed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.x - y.x).abs() < 1e-6);
            prop_assert!((x.y - y.y).abs() < 1e-6);
        }
    }

    #[test]
    fn distance_is_symmetric(a in geometry_strategy(), b in geometry_strategy()) {
        let d1 = euclidean(&a, &b);
        let d2 = euclidean(&b, &a);
        if d1.is_finite() && d2.is_finite() {
            prop_assert!((d1 - d2).abs() < 1e-6, "d1={d1} d2={d2}");
        } else {
            prop_assert_eq!(d1.is_finite(), d2.is_finite());
        }
    }

    #[test]
    fn distance_is_non_negative_and_zero_on_self(g in geometry_strategy()) {
        prop_assume!(!g.is_empty());
        let d = euclidean(&g, &g);
        prop_assert!(d >= 0.0);
        prop_assert!(d < 1e-6, "self distance was {d}");
    }

    #[test]
    fn intersecting_geometries_have_zero_distance(a in geometry_strategy(), b in geometry_strategy()) {
        if predicates::intersects(&a, &b) {
            let d = euclidean(&a, &b);
            prop_assert!(d < 1e-6, "intersecting but distance {d}");
        }
    }

    #[test]
    fn disjoint_is_negation_of_intersects(a in geometry_strategy(), b in geometry_strategy()) {
        prop_assert_eq!(predicates::intersects(&a, &b), !predicates::disjoint(&a, &b));
    }

    #[test]
    fn predicate_symmetry(a in geometry_strategy(), b in geometry_strategy()) {
        prop_assert_eq!(predicates::intersects(&a, &b), predicates::intersects(&b, &a));
        prop_assert_eq!(predicates::equals(&a, &b), predicates::equals(&b, &a));
    }

    #[test]
    fn equals_is_reflexive(g in geometry_strategy()) {
        prop_assert!(predicates::equals(&g, &g));
    }

    #[test]
    fn bbox_contains_all_coordinates(g in geometry_strategy()) {
        if let Some(bbox) = g.bbox() {
            for c in measures::coordinates(&g) {
                prop_assert!(bbox.contains_coord(&c));
            }
        } else {
            prop_assert!(g.is_empty());
        }
    }

    #[test]
    fn bbox_disjoint_implies_geometry_disjoint(a in geometry_strategy(), b in geometry_strategy()) {
        if let (Some(ba), Some(bb)) = (a.bbox(), b.bbox()) {
            if !ba.intersects(&bb) {
                prop_assert!(predicates::disjoint(&a, &b));
            }
        }
    }

    #[test]
    fn triangle_inequality_points(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        let ab = a.distance(&b);
        let bc = b.distance(&c);
        let ac = a.distance(&c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn bbox_union_contains_both(a in point_strategy(), b in point_strategy()) {
        let u = a.bbox().union(&b.bbox());
        prop_assert!(u.contains(&a.bbox()));
        prop_assert!(u.contains(&b.bbox()));
    }

    #[test]
    fn polygon_contains_its_centroid_if_convex(p in polygon_strategy()) {
        // The generator produces convex polygons, so the centroid must lie inside.
        let c = p.centroid();
        prop_assert!(p.contains_coord(&c));
    }

    #[test]
    fn intersection_members_touch_both_operands(a in line_strategy(), b in line_strategy()) {
        let result = sdwp_geometry::intersection::intersection(
            &Geometry::from(a.clone()),
            &Geometry::from(b.clone()),
        );
        for piece in result.iter() {
            // Every piece of the intersection must intersect the left operand.
            prop_assert!(predicates::intersects(piece, &Geometry::from(a.clone())));
        }
    }

    #[test]
    fn bbox_distance_lower_bounds_geometry_distance(a in geometry_strategy(), b in geometry_strategy()) {
        if let (Some(ba), Some(bb)) = (a.bbox(), b.bbox()) {
            let bbox_d = ba.distance_to_bbox(&bb);
            let d = euclidean(&a, &b);
            prop_assert!(bbox_d <= d + 1e-6, "bbox {bbox_d} > geom {d}");
        }
    }

    #[test]
    fn buffered_bbox_still_contains_original(min_x in -100.0f64..100.0, min_y in -100.0f64..100.0,
                                             w in 0.0f64..50.0, h in 0.0f64..50.0, m in 0.0f64..10.0) {
        let b = BoundingBox::new(min_x, min_y, min_x + w, min_y + h);
        prop_assert!(b.buffered(m).contains(&b));
    }
}
