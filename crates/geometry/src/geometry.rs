//! The unified [`Geometry`] enum and the paper's `GeometricTypes`.

use crate::bbox::BoundingBox;
use crate::collection::GeometryCollection;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The geometric primitive kinds allowed by the paper's spatial-aware user
/// model (`GeometricTypes` enumeration, Fig. 3): POINT, LINE, POLYGON and
/// COLLECTION.
///
/// These are the types usable by the `BecomeSpatial` and `AddLayer`
/// personalization actions; they correspond to the ISO 19125 / OGC Simple
/// Features point, linestring, polygon and geometry-collection types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeometricType {
    /// A single position (OGC Point).
    Point,
    /// A polyline (OGC LineString).
    Line,
    /// An areal geometry (OGC Polygon).
    Polygon,
    /// A heterogeneous collection (OGC GeometryCollection).
    Collection,
}

impl GeometricType {
    /// All geometric types, in the order listed by the paper.
    pub const ALL: [GeometricType; 4] = [
        GeometricType::Point,
        GeometricType::Line,
        GeometricType::Polygon,
        GeometricType::Collection,
    ];

    /// The paper's upper-case spelling of the type (e.g. `"POINT"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            GeometricType::Point => "POINT",
            GeometricType::Line => "LINE",
            GeometricType::Polygon => "POLYGON",
            GeometricType::Collection => "COLLECTION",
        }
    }

    /// Parses the paper's upper-case spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<GeometricType> {
        match s.to_ascii_uppercase().as_str() {
            "POINT" => Some(GeometricType::Point),
            "LINE" | "LINESTRING" => Some(GeometricType::Line),
            "POLYGON" => Some(GeometricType::Polygon),
            "COLLECTION" | "GEOMETRYCOLLECTION" => Some(GeometricType::Collection),
            _ => None,
        }
    }
}

impl fmt::Display for GeometricType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A geometry value: one of the four primitive kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// A point.
    Point(Point),
    /// A polyline.
    Line(LineString),
    /// A polygon.
    Polygon(Polygon),
    /// A collection of geometries.
    Collection(GeometryCollection),
}

impl Geometry {
    /// The [`GeometricType`] tag of this value.
    pub fn geometric_type(&self) -> GeometricType {
        match self {
            Geometry::Point(_) => GeometricType::Point,
            Geometry::Line(_) => GeometricType::Line,
            Geometry::Polygon(_) => GeometricType::Polygon,
            Geometry::Collection(_) => GeometricType::Collection,
        }
    }

    /// Bounding box, or `None` for empty collections.
    pub fn bbox(&self) -> Option<BoundingBox> {
        match self {
            Geometry::Point(p) => Some(p.bbox()),
            Geometry::Line(l) => Some(l.bbox()),
            Geometry::Polygon(p) => Some(p.bbox()),
            Geometry::Collection(c) => c.bbox(),
        }
    }

    /// Returns `true` when the geometry carries no coordinates
    /// (only possible for collections).
    pub fn is_empty(&self) -> bool {
        match self {
            Geometry::Collection(c) => c.is_empty(),
            _ => false,
        }
    }

    /// A representative coordinate of the geometry: the point itself, the
    /// first vertex of a line, the centroid of a polygon, or the
    /// representative of the first member of a collection.
    pub fn representative_coord(&self) -> Option<crate::coord::Coord> {
        match self {
            Geometry::Point(p) => Some(p.coord()),
            Geometry::Line(l) => l.coords().first().copied(),
            Geometry::Polygon(p) => Some(p.centroid()),
            Geometry::Collection(c) => c.iter().find_map(Geometry::representative_coord),
        }
    }

    /// Returns the contained point if this geometry is a `Point`.
    pub fn as_point(&self) -> Option<&Point> {
        match self {
            Geometry::Point(p) => Some(p),
            _ => None,
        }
    }

    /// Returns the contained line if this geometry is a `Line`.
    pub fn as_line(&self) -> Option<&LineString> {
        match self {
            Geometry::Line(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the contained polygon if this geometry is a `Polygon`.
    pub fn as_polygon(&self) -> Option<&Polygon> {
        match self {
            Geometry::Polygon(p) => Some(p),
            _ => None,
        }
    }

    /// Returns the contained collection if this geometry is a `Collection`.
    pub fn as_collection(&self) -> Option<&GeometryCollection> {
        match self {
            Geometry::Collection(c) => Some(c),
            _ => None,
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::Line(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

impl From<GeometryCollection> for Geometry {
    fn from(c: GeometryCollection) -> Self {
        Geometry::Collection(c)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Geometry::Point(p) => p.fmt(f),
            Geometry::Line(l) => l.fmt(f),
            Geometry::Polygon(p) => p.fmt(f),
            Geometry::Collection(c) => c.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_type_round_trip() {
        for t in GeometricType::ALL {
            assert_eq!(GeometricType::parse(t.as_str()), Some(t));
            assert_eq!(GeometricType::parse(&t.as_str().to_lowercase()), Some(t));
        }
        assert_eq!(GeometricType::parse("SPHERE"), None);
        assert_eq!(
            GeometricType::parse("LINESTRING"),
            Some(GeometricType::Line)
        );
    }

    #[test]
    fn type_tags() {
        let p: Geometry = Point::new(0.0, 0.0).into();
        assert_eq!(p.geometric_type(), GeometricType::Point);
        let l: Geometry = LineString::from_tuples(&[(0.0, 0.0), (1.0, 1.0)])
            .unwrap()
            .into();
        assert_eq!(l.geometric_type(), GeometricType::Line);
        let poly: Geometry = Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)])
            .unwrap()
            .into();
        assert_eq!(poly.geometric_type(), GeometricType::Polygon);
        let c: Geometry = GeometryCollection::empty().into();
        assert_eq!(c.geometric_type(), GeometricType::Collection);
    }

    #[test]
    fn emptiness() {
        let c: Geometry = GeometryCollection::empty().into();
        assert!(c.is_empty());
        let p: Geometry = Point::new(0.0, 0.0).into();
        assert!(!p.is_empty());
        assert!(c.bbox().is_none());
        assert!(p.bbox().is_some());
    }

    #[test]
    fn accessors() {
        let p: Geometry = Point::new(1.0, 2.0).into();
        assert!(p.as_point().is_some());
        assert!(p.as_line().is_none());
        assert!(p.as_polygon().is_none());
        assert!(p.as_collection().is_none());
    }

    #[test]
    fn representative_coords() {
        let p: Geometry = Point::new(1.0, 2.0).into();
        assert_eq!(p.representative_coord().unwrap(), (1.0, 2.0).into());
        let empty: Geometry = GeometryCollection::empty().into();
        assert!(empty.representative_coord().is_none());
        let nested: Geometry = GeometryCollection::new(vec![Point::new(3.0, 4.0).into()]).into();
        assert_eq!(nested.representative_coord().unwrap(), (3.0, 4.0).into());
    }

    #[test]
    fn display_delegates() {
        let g: Geometry = Point::new(1.0, 2.0).into();
        assert_eq!(g.to_string(), "POINT (1 2)");
        assert_eq!(GeometricType::Point.to_string(), "POINT");
    }
}
