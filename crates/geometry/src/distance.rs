//! The `Distance` spatial operator.
//!
//! PRML rules such as Example 5.2 of the paper
//! (`Distance(s.geometry, SUS...location.geometry) < 5km`) compare the
//! minimum distance between two geometries with a threshold. This module
//! computes that minimum distance for every combination of geometric types.

use crate::algorithms::{point_segment_distance, segment_segment_distance};
use crate::coord::Coord;
use crate::geometry::Geometry;
use crate::haversine::haversine_distance;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use serde::{Deserialize, Serialize};

/// The metric used to interpret coordinates when computing distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Treat coordinates as planar positions; distance is Euclidean in the
    /// same unit as the coordinates (the synthetic workloads use
    /// kilometres).
    #[default]
    Euclidean,
    /// Treat coordinates as (longitude, latitude) degrees; distance is the
    /// great-circle (haversine) distance in kilometres.
    HaversineKm,
}

/// Euclidean distance between two coordinates.
pub fn euclidean_coords(a: &Coord, b: &Coord) -> f64 {
    a.distance(b)
}

/// Minimum Euclidean distance between two geometries.
///
/// Returns `f64::INFINITY` when either geometry is an empty collection:
/// an empty geometry is infinitely far from everything, which makes
/// threshold conditions (`Distance(...) < x`) evaluate to `false` as the
/// paper's semantics require.
pub fn euclidean(a: &Geometry, b: &Geometry) -> f64 {
    distance_with(a, b, &|p, q| p.distance(q))
}

/// Minimum distance between two geometries under the given metric.
pub fn distance(a: &Geometry, b: &Geometry, metric: DistanceMetric) -> f64 {
    match metric {
        DistanceMetric::Euclidean => euclidean(a, b),
        DistanceMetric::HaversineKm => distance_with(a, b, &haversine_distance),
    }
}

/// Distance between two points under the given metric.
pub fn point_distance(a: &Point, b: &Point, metric: DistanceMetric) -> f64 {
    match metric {
        DistanceMetric::Euclidean => a.distance(b),
        DistanceMetric::HaversineKm => haversine_distance(&a.coord(), &b.coord()),
    }
}

type CoordMetric<'m> = &'m dyn Fn(&Coord, &Coord) -> f64;

fn distance_with(a: &Geometry, b: &Geometry, metric: CoordMetric<'_>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    match (a, b) {
        (Geometry::Collection(c), other) => c
            .iter()
            .map(|g| distance_with(g, other, metric))
            .fold(f64::INFINITY, f64::min),
        (other, Geometry::Collection(c)) => c
            .iter()
            .map(|g| distance_with(other, g, metric))
            .fold(f64::INFINITY, f64::min),
        (Geometry::Point(p), Geometry::Point(q)) => metric(&p.coord(), &q.coord()),
        (Geometry::Point(p), Geometry::Line(l)) | (Geometry::Line(l), Geometry::Point(p)) => {
            point_line_distance(&p.coord(), l, metric)
        }
        (Geometry::Point(p), Geometry::Polygon(poly))
        | (Geometry::Polygon(poly), Geometry::Point(p)) => {
            point_polygon_distance(&p.coord(), poly, metric)
        }
        (Geometry::Line(l1), Geometry::Line(l2)) => line_line_distance(l1, l2, metric),
        (Geometry::Line(l), Geometry::Polygon(p)) | (Geometry::Polygon(p), Geometry::Line(l)) => {
            line_polygon_distance(l, p, metric)
        }
        (Geometry::Polygon(p1), Geometry::Polygon(p2)) => polygon_polygon_distance(p1, p2, metric),
    }
}

fn point_line_distance(c: &Coord, l: &LineString, metric: CoordMetric<'_>) -> f64 {
    // For the Euclidean metric use the exact point-to-segment distance.
    // For other metrics approximate using vertices plus the Euclidean
    // closest point of each segment (adequate at the small spans used by
    // SDW workloads).
    l.segments()
        .map(|(a, b)| {
            let exact = point_segment_distance(c, &a, &b);
            let closest = closest_point_on_segment(c, &a, &b);
            metric(c, &closest).min(exact.min(metric(c, &a)).min(metric(c, &b)))
        })
        .fold(f64::INFINITY, f64::min)
}

fn closest_point_on_segment(p: &Coord, a: &Coord, b: &Coord) -> Coord {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 <= f64::EPSILON {
        return *a;
    }
    let t = ((*p - *a).dot(&ab) / len2).clamp(0.0, 1.0);
    *a + ab * t
}

fn point_polygon_distance(c: &Coord, p: &Polygon, metric: CoordMetric<'_>) -> f64 {
    if p.contains_coord(c) {
        return 0.0;
    }
    p.all_segments()
        .iter()
        .map(|(a, b)| {
            let closest = closest_point_on_segment(c, a, b);
            metric(c, &closest)
        })
        .fold(f64::INFINITY, f64::min)
}

fn line_line_distance(l1: &LineString, l2: &LineString, metric: CoordMetric<'_>) -> f64 {
    let mut min = f64::INFINITY;
    for (a1, a2) in l1.segments() {
        for (b1, b2) in l2.segments() {
            let eucl = segment_segment_distance(&a1, &a2, &b1, &b2);
            if eucl == 0.0 {
                return 0.0;
            }
            // Approximate non-Euclidean metrics via closest endpoints.
            let m = metric(&a1, &closest_point_on_segment(&a1, &b1, &b2))
                .min(metric(&a2, &closest_point_on_segment(&a2, &b1, &b2)))
                .min(metric(&b1, &closest_point_on_segment(&b1, &a1, &a2)))
                .min(metric(&b2, &closest_point_on_segment(&b2, &a1, &a2)));
            min = min.min(m.min(eucl.max(0.0)).max(0.0).min(m));
            min = min.min(m);
        }
    }
    min
}

fn line_polygon_distance(l: &LineString, p: &Polygon, metric: CoordMetric<'_>) -> f64 {
    if l.coords().iter().any(|c| p.contains_coord(c)) {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    for (a1, a2) in l.segments() {
        for (b1, b2) in p.all_segments() {
            let eucl = segment_segment_distance(&a1, &a2, &b1, &b2);
            if eucl == 0.0 {
                return 0.0;
            }
            let m = metric(&a1, &closest_point_on_segment(&a1, &b1, &b2))
                .min(metric(&a2, &closest_point_on_segment(&a2, &b1, &b2)))
                .min(metric(&b1, &closest_point_on_segment(&b1, &a1, &a2)))
                .min(metric(&b2, &closest_point_on_segment(&b2, &a1, &a2)));
            min = min.min(m);
        }
    }
    min
}

fn polygon_polygon_distance(p1: &Polygon, p2: &Polygon, metric: CoordMetric<'_>) -> f64 {
    if p1.exterior().iter().any(|c| p2.contains_coord(c))
        || p2.exterior().iter().any(|c| p1.contains_coord(c))
    {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    for (a1, a2) in p1.all_segments() {
        for (b1, b2) in p2.all_segments() {
            let eucl = segment_segment_distance(&a1, &a2, &b1, &b2);
            if eucl == 0.0 {
                return 0.0;
            }
            let m = metric(&a1, &closest_point_on_segment(&a1, &b1, &b2))
                .min(metric(&a2, &closest_point_on_segment(&a2, &b1, &b2)))
                .min(metric(&b1, &closest_point_on_segment(&b1, &a1, &a2)))
                .min(metric(&b2, &closest_point_on_segment(&b2, &a1, &a2)));
            min = min.min(m);
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::GeometryCollection;

    fn pt(x: f64, y: f64) -> Geometry {
        Point::new(x, y).into()
    }

    fn line(coords: &[(f64, f64)]) -> Geometry {
        LineString::from_tuples(coords).unwrap().into()
    }

    fn square(x0: f64, y0: f64, size: f64) -> Geometry {
        Polygon::from_tuples(&[
            (x0, y0),
            (x0 + size, y0),
            (x0 + size, y0 + size),
            (x0, y0 + size),
        ])
        .unwrap()
        .into()
    }

    #[test]
    fn point_point_distance() {
        assert_eq!(euclidean(&pt(0.0, 0.0), &pt(3.0, 4.0)), 5.0);
        assert_eq!(euclidean(&pt(1.0, 1.0), &pt(1.0, 1.0)), 0.0);
    }

    #[test]
    fn point_line_distance_perpendicular() {
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(euclidean(&pt(5.0, 3.0), &l), 3.0);
        assert_eq!(euclidean(&l, &pt(5.0, 3.0)), 3.0);
        assert_eq!(euclidean(&pt(-4.0, 3.0), &l), 5.0);
        assert_eq!(euclidean(&pt(5.0, 0.0), &l), 0.0);
    }

    #[test]
    fn point_polygon_distance_cases() {
        let s = square(0.0, 0.0, 10.0);
        assert_eq!(euclidean(&pt(5.0, 5.0), &s), 0.0); // inside
        assert_eq!(euclidean(&pt(15.0, 5.0), &s), 5.0); // right of box
        assert_eq!(euclidean(&pt(13.0, 14.0), &s), 5.0); // corner distance
    }

    #[test]
    fn line_line_distance_cases() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = line(&[(0.0, 4.0), (10.0, 4.0)]);
        let crossing = line(&[(5.0, -5.0), (5.0, 5.0)]);
        assert_eq!(euclidean(&a, &b), 4.0);
        assert_eq!(euclidean(&a, &crossing), 0.0);
    }

    #[test]
    fn line_polygon_and_polygon_polygon() {
        let s = square(0.0, 0.0, 10.0);
        let far_line = line(&[(20.0, 0.0), (20.0, 10.0)]);
        assert_eq!(euclidean(&far_line, &s), 10.0);
        let other = square(14.0, 0.0, 4.0);
        assert_eq!(euclidean(&s, &other), 4.0);
        let overlapping = square(5.0, 5.0, 10.0);
        assert_eq!(euclidean(&s, &overlapping), 0.0);
    }

    #[test]
    fn collection_distance_is_minimum_over_members() {
        let c: Geometry = GeometryCollection::new(vec![pt(100.0, 0.0), pt(3.0, 4.0)]).into();
        assert_eq!(euclidean(&c, &pt(0.0, 0.0)), 5.0);
    }

    #[test]
    fn empty_collection_is_infinitely_far() {
        let empty: Geometry = GeometryCollection::empty().into();
        assert_eq!(euclidean(&empty, &pt(0.0, 0.0)), f64::INFINITY);
        // Thresholds therefore never match, as required for rule semantics.
        assert!(euclidean(&empty, &pt(0.0, 0.0)) >= 5.0);
    }

    #[test]
    fn metric_dispatch() {
        let a = pt(0.0, 0.0);
        let b = pt(3.0, 4.0);
        assert_eq!(distance(&a, &b, DistanceMetric::Euclidean), 5.0);
        // Haversine of small degree offsets is hundreds of km.
        let hav = distance(&a, &b, DistanceMetric::HaversineKm);
        assert!(hav > 400.0 && hav < 700.0);
    }

    #[test]
    fn point_distance_helper() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(point_distance(&a, &b, DistanceMetric::Euclidean), 1.0);
        let hav = point_distance(&a, &b, DistanceMetric::HaversineKm);
        assert!((hav - 111.19).abs() < 1.0); // one degree of latitude
    }

    #[test]
    fn distance_is_symmetric_for_mixed_types() {
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let s = square(0.0, 5.0, 2.0);
        assert!((euclidean(&l, &s) - euclidean(&s, &l)).abs() < 1e-12);
    }
}
