//! The POLYGON geometric primitive.

use crate::bbox::BoundingBox;
use crate::coord::Coord;
use crate::error::GeometryError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple polygon with one exterior ring and zero or more interior rings
/// (holes) — the paper's `POLYGON` geometric type.
///
/// Rings are stored closed (first coordinate equals last). Polygons describe
/// administrative areas (cities, states) and other areal layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    exterior: Vec<Coord>,
    interiors: Vec<Vec<Coord>>,
}

/// Validates and normalises a ring: at least 4 coordinates, closed, finite.
fn validate_ring(mut ring: Vec<Coord>) -> Result<Vec<Coord>, GeometryError> {
    if let Some(c) = ring.iter().find(|c| !c.is_finite()) {
        return Err(GeometryError::NonFiniteCoordinate { x: c.x, y: c.y });
    }
    // Auto-close nearly-closed rings of >= 3 distinct coordinates.
    if ring.len() >= 3 {
        let closed = ring
            .first()
            .zip(ring.last())
            .map(|(a, b)| a.approx_eq(b))
            .unwrap_or(false);
        if !closed {
            let first = ring[0];
            ring.push(first);
        }
    }
    if ring.len() < 4 {
        return Err(GeometryError::TooFewCoordinates {
            kind: "Polygon ring",
            required: 4,
            actual: ring.len(),
        });
    }
    Ok(ring)
}

impl Polygon {
    /// Creates a polygon from an exterior ring and optional holes.
    ///
    /// Rings with at least three distinct coordinates are closed
    /// automatically if the last coordinate does not repeat the first.
    pub fn new(exterior: Vec<Coord>, interiors: Vec<Vec<Coord>>) -> Result<Self, GeometryError> {
        let exterior = validate_ring(exterior)?;
        let interiors = interiors
            .into_iter()
            .map(validate_ring)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Polygon {
            exterior,
            interiors,
        })
    }

    /// Convenience constructor for a hole-free polygon from tuples.
    pub fn from_tuples(exterior: &[(f64, f64)]) -> Result<Self, GeometryError> {
        Polygon::new(exterior.iter().map(|&t| t.into()).collect(), Vec::new())
    }

    /// Creates the axis-aligned rectangle covering `bbox`.
    pub fn from_bbox(bbox: &BoundingBox) -> Self {
        Polygon {
            exterior: vec![
                Coord::new(bbox.min_x, bbox.min_y),
                Coord::new(bbox.max_x, bbox.min_y),
                Coord::new(bbox.max_x, bbox.max_y),
                Coord::new(bbox.min_x, bbox.max_y),
                Coord::new(bbox.min_x, bbox.min_y),
            ],
            interiors: Vec::new(),
        }
    }

    /// The closed exterior ring.
    pub fn exterior(&self) -> &[Coord] {
        &self.exterior
    }

    /// The closed interior rings (holes).
    pub fn interiors(&self) -> &[Vec<Coord>] {
        &self.interiors
    }

    /// Number of holes.
    pub fn num_interiors(&self) -> usize {
        self.interiors.len()
    }

    /// The bounding box of the exterior ring.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_coords(&self.exterior).expect("exterior ring is never empty")
    }

    /// Signed area of a closed ring (positive when counter-clockwise).
    pub(crate) fn ring_signed_area(ring: &[Coord]) -> f64 {
        let mut sum = 0.0;
        for w in ring.windows(2) {
            sum += w[0].cross(&w[1]);
        }
        sum / 2.0
    }

    /// Unsigned area of the polygon (exterior minus holes).
    pub fn area(&self) -> f64 {
        let ext = Self::ring_signed_area(&self.exterior).abs();
        let holes: f64 = self
            .interiors
            .iter()
            .map(|r| Self::ring_signed_area(r).abs())
            .sum();
        (ext - holes).max(0.0)
    }

    /// Perimeter of the exterior ring.
    pub fn perimeter(&self) -> f64 {
        self.exterior.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Centroid of the exterior ring (area-weighted). Falls back to the
    /// vertex average for degenerate (zero-area) polygons.
    pub fn centroid(&self) -> Coord {
        let a = Self::ring_signed_area(&self.exterior);
        if a.abs() < f64::EPSILON {
            let n = (self.exterior.len() - 1) as f64;
            let (sx, sy) = self.exterior[..self.exterior.len() - 1]
                .iter()
                .fold((0.0, 0.0), |(sx, sy), c| (sx + c.x, sy + c.y));
            return Coord::new(sx / n, sy / n);
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for w in self.exterior.windows(2) {
            let cross = w[0].cross(&w[1]);
            cx += (w[0].x + w[1].x) * cross;
            cy += (w[0].y + w[1].y) * cross;
        }
        Coord::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Tests whether a coordinate lies inside the polygon (holes excluded).
    /// Points exactly on the boundary are considered inside.
    pub fn contains_coord(&self, c: &Coord) -> bool {
        if !ring_contains(&self.exterior, c) {
            return false;
        }
        for hole in &self.interiors {
            if ring_contains_strict(hole, c) {
                return false;
            }
        }
        true
    }

    /// Iterates over the segments of all rings (exterior then holes).
    pub fn all_segments(&self) -> Vec<(Coord, Coord)> {
        let mut segs: Vec<(Coord, Coord)> =
            self.exterior.windows(2).map(|w| (w[0], w[1])).collect();
        for hole in &self.interiors {
            segs.extend(hole.windows(2).map(|w| (w[0], w[1])));
        }
        segs
    }
}

/// Ray-casting point-in-ring test, boundary counts as inside.
pub(crate) fn ring_contains(ring: &[Coord], c: &Coord) -> bool {
    if on_ring_boundary(ring, c) {
        return true;
    }
    ring_contains_strict(ring, c)
}

/// Ray-casting point-in-ring test, boundary excluded.
pub(crate) fn ring_contains_strict(ring: &[Coord], c: &Coord) -> bool {
    let mut inside = false;
    for w in ring.windows(2) {
        let (a, b) = (w[0], w[1]);
        let intersects_ray = (a.y > c.y) != (b.y > c.y);
        if intersects_ray {
            let x_at_y = a.x + (c.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if c.x < x_at_y {
                inside = !inside;
            }
        }
    }
    inside
}

/// Returns `true` if the coordinate lies on any segment of the ring.
pub(crate) fn on_ring_boundary(ring: &[Coord], c: &Coord) -> bool {
    ring.windows(2)
        .any(|w| crate::algorithms::point_on_segment(c, &w[0], &w[1]))
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POLYGON (")?;
        let write_ring = |f: &mut fmt::Formatter<'_>, ring: &[Coord]| -> fmt::Result {
            write!(f, "(")?;
            for (i, c) in ring.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")
        };
        write_ring(f, &self.exterior)?;
        for hole in &self.interiors {
            write!(f, ", ")?;
            write_ring(f, hole)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    #[test]
    fn auto_closes_ring() {
        let p = unit_square();
        assert_eq!(p.exterior().len(), 5);
        assert_eq!(p.exterior()[0], p.exterior()[4]);
    }

    #[test]
    fn rejects_too_small_rings() {
        let err = Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0)]).unwrap_err();
        assert!(matches!(err, GeometryError::TooFewCoordinates { .. }));
    }

    #[test]
    fn rejects_non_finite() {
        let err =
            Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (f64::INFINITY, 1.0)]).unwrap_err();
        assert!(matches!(err, GeometryError::NonFiniteCoordinate { .. }));
    }

    #[test]
    fn area_and_perimeter() {
        let p = unit_square();
        assert!((p.area() - 1.0).abs() < 1e-12);
        assert!((p.perimeter() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn area_with_hole() {
        let hole = vec![
            Coord::new(0.25, 0.25),
            Coord::new(0.75, 0.25),
            Coord::new(0.75, 0.75),
            Coord::new(0.25, 0.75),
            Coord::new(0.25, 0.25),
        ];
        let p = Polygon::new(unit_square().exterior().to_vec(), vec![hole]).unwrap();
        assert!((p.area() - 0.75).abs() < 1e-12);
        assert_eq!(p.num_interiors(), 1);
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().centroid();
        assert!((c.x - 0.5).abs() < 1e-12);
        assert!((c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_coord_inside_outside_boundary() {
        let p = unit_square();
        assert!(p.contains_coord(&Coord::new(0.5, 0.5)));
        assert!(!p.contains_coord(&Coord::new(1.5, 0.5)));
        assert!(p.contains_coord(&Coord::new(1.0, 0.5))); // boundary
        assert!(p.contains_coord(&Coord::new(0.0, 0.0))); // vertex
    }

    #[test]
    fn contains_respects_holes() {
        let hole = vec![
            Coord::new(0.4, 0.4),
            Coord::new(0.6, 0.4),
            Coord::new(0.6, 0.6),
            Coord::new(0.4, 0.6),
            Coord::new(0.4, 0.4),
        ];
        let p = Polygon::new(unit_square().exterior().to_vec(), vec![hole]).unwrap();
        assert!(!p.contains_coord(&Coord::new(0.5, 0.5)));
        assert!(p.contains_coord(&Coord::new(0.1, 0.1)));
    }

    #[test]
    fn from_bbox_rectangle() {
        let p = Polygon::from_bbox(&BoundingBox::new(0.0, 0.0, 2.0, 3.0));
        assert!((p.area() - 6.0).abs() < 1e-12);
        assert_eq!(p.bbox(), BoundingBox::new(0.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn centroid_degenerate_polygon() {
        // All points collinear: area is zero, centroid falls back to mean.
        let p = Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]).unwrap();
        let c = p.centroid();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert_eq!(c.y, 0.0);
    }

    #[test]
    fn display_wkt_like() {
        let p = Polygon::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]).unwrap();
        assert!(p.to_string().starts_with("POLYGON (("));
    }

    #[test]
    fn all_segments_count() {
        let p = unit_square();
        assert_eq!(p.all_segments().len(), 4);
    }
}
