//! The LINE geometric primitive (polyline).

use crate::bbox::BoundingBox;
use crate::coord::Coord;
use crate::error::GeometryError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A polyline of two or more coordinates (the paper's `LINE` geometric
/// type).
///
/// Line strings describe train lines, highways and other linear geographic
/// layers added by the `AddLayer` personalization action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineString {
    coords: Vec<Coord>,
}

impl LineString {
    /// Creates a line string from at least two finite coordinates.
    pub fn new(coords: Vec<Coord>) -> Result<Self, GeometryError> {
        if coords.len() < 2 {
            return Err(GeometryError::TooFewCoordinates {
                kind: "LineString",
                required: 2,
                actual: coords.len(),
            });
        }
        if let Some(c) = coords.iter().find(|c| !c.is_finite()) {
            return Err(GeometryError::NonFiniteCoordinate { x: c.x, y: c.y });
        }
        Ok(LineString { coords })
    }

    /// Convenience constructor from `(x, y)` tuples.
    pub fn from_tuples(tuples: &[(f64, f64)]) -> Result<Self, GeometryError> {
        LineString::new(tuples.iter().map(|&t| t.into()).collect())
    }

    /// The coordinates making up the line.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Number of coordinates (vertices).
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// A line string never has fewer than two coordinates, so it is never
    /// empty; this is provided for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of line segments (`len() - 1`).
    pub fn num_segments(&self) -> usize {
        self.coords.len() - 1
    }

    /// Iterates over the consecutive coordinate pairs forming segments.
    pub fn segments(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.coords.windows(2).map(|w| (w[0], w[1]))
    }

    /// Returns `true` if the first and last coordinates coincide.
    pub fn is_closed(&self) -> bool {
        self.coords
            .first()
            .zip(self.coords.last())
            .map(|(a, b)| a.approx_eq(b))
            .unwrap_or(false)
    }

    /// Total length of the polyline (sum of segment lengths).
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(&b)).sum()
    }

    /// The bounding box of the line.
    pub fn bbox(&self) -> BoundingBox {
        // A line string always has at least two coordinates.
        BoundingBox::from_coords(&self.coords).expect("LineString is never empty")
    }

    /// Returns the coordinate obtained by walking `fraction` (clamped to
    /// `[0, 1]`) of the line's total length from its start.
    pub fn interpolate(&self, fraction: f64) -> Coord {
        let fraction = fraction.clamp(0.0, 1.0);
        let total = self.length();
        if total == 0.0 {
            return self.coords[0];
        }
        let mut remaining = fraction * total;
        for (a, b) in self.segments() {
            let seg = a.distance(&b);
            if remaining <= seg {
                if seg == 0.0 {
                    return a;
                }
                let t = remaining / seg;
                return Coord::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t);
            }
            remaining -= seg;
        }
        *self.coords.last().expect("non-empty")
    }

    /// Returns a reversed copy of the line.
    pub fn reversed(&self) -> LineString {
        let mut coords = self.coords.clone();
        coords.reverse();
        LineString { coords }
    }
}

impl fmt::Display for LineString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LINESTRING (")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineString {
        LineString::from_tuples(&[(0.0, 0.0), (3.0, 4.0), (3.0, 8.0)]).unwrap()
    }

    #[test]
    fn construction_requires_two_coords() {
        let err = LineString::new(vec![Coord::new(0.0, 0.0)]).unwrap_err();
        assert!(matches!(
            err,
            GeometryError::TooFewCoordinates { actual: 1, .. }
        ));
        assert!(LineString::new(vec![]).is_err());
    }

    #[test]
    fn construction_rejects_non_finite() {
        let err = LineString::from_tuples(&[(0.0, 0.0), (f64::NAN, 1.0)]).unwrap_err();
        assert!(matches!(err, GeometryError::NonFiniteCoordinate { .. }));
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(line().length(), 9.0);
        assert_eq!(line().num_segments(), 2);
    }

    #[test]
    fn bbox_covers_all_vertices() {
        let b = line().bbox();
        assert_eq!(b, BoundingBox::new(0.0, 0.0, 3.0, 8.0));
    }

    #[test]
    fn closed_detection() {
        assert!(!line().is_closed());
        let ring =
            LineString::from_tuples(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]).unwrap();
        assert!(ring.is_closed());
    }

    #[test]
    fn interpolation() {
        let l = LineString::from_tuples(&[(0.0, 0.0), (10.0, 0.0)]).unwrap();
        assert_eq!(l.interpolate(0.0), Coord::new(0.0, 0.0));
        assert_eq!(l.interpolate(0.5), Coord::new(5.0, 0.0));
        assert_eq!(l.interpolate(1.0), Coord::new(10.0, 0.0));
        // Clamped outside [0, 1].
        assert_eq!(l.interpolate(2.0), Coord::new(10.0, 0.0));
        assert_eq!(l.interpolate(-1.0), Coord::new(0.0, 0.0));
    }

    #[test]
    fn interpolation_across_vertices() {
        let l = line();
        // Half of the total length (9.0 / 2 = 4.5) is 4.5 units along, i.e.
        // past the first segment of length 5? No: first segment is length 5,
        // so 4.5 lies inside the first segment at t = 0.9.
        let c = l.interpolate(0.5);
        assert!((c.x - 2.7).abs() < 1e-9);
        assert!((c.y - 3.6).abs() < 1e-9);
    }

    #[test]
    fn reversed_preserves_length() {
        let l = line();
        let r = l.reversed();
        assert_eq!(l.length(), r.length());
        assert_eq!(r.coords()[0], Coord::new(3.0, 8.0));
    }

    #[test]
    fn display_wkt_like() {
        let l = LineString::from_tuples(&[(0.0, 0.0), (1.0, 2.0)]).unwrap();
        assert_eq!(l.to_string(), "LINESTRING (0 0, 1 2)");
    }
}
