//! Error types for geometric construction and parsing.

use std::fmt;

/// Errors produced while constructing or parsing geometries.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// A line string needs at least two coordinates.
    TooFewCoordinates {
        /// Geometry kind being constructed (e.g. `"LineString"`).
        kind: &'static str,
        /// Minimum number of coordinates required.
        required: usize,
        /// Number of coordinates actually supplied.
        actual: usize,
    },
    /// A polygon ring must be closed (first coordinate equals last).
    UnclosedRing,
    /// A coordinate contained a non-finite component (NaN or infinity).
    NonFiniteCoordinate {
        /// The offending x component.
        x: f64,
        /// The offending y component.
        y: f64,
    },
    /// WKT input could not be parsed.
    WktParse {
        /// Human readable description of the problem.
        message: String,
        /// Byte offset in the input at which the problem was detected.
        offset: usize,
    },
    /// An operation was requested on an empty geometry that requires content.
    EmptyGeometry {
        /// Description of the operation that failed.
        operation: &'static str,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::TooFewCoordinates {
                kind,
                required,
                actual,
            } => write!(
                f,
                "{kind} requires at least {required} coordinates, got {actual}"
            ),
            GeometryError::UnclosedRing => {
                write!(f, "polygon ring must be closed (first == last coordinate)")
            }
            GeometryError::NonFiniteCoordinate { x, y } => {
                write!(f, "coordinate ({x}, {y}) contains a non-finite component")
            }
            GeometryError::WktParse { message, offset } => {
                write!(f, "WKT parse error at byte {offset}: {message}")
            }
            GeometryError::EmptyGeometry { operation } => {
                write!(f, "cannot compute {operation} of an empty geometry")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_too_few_coordinates() {
        let err = GeometryError::TooFewCoordinates {
            kind: "LineString",
            required: 2,
            actual: 1,
        };
        assert_eq!(
            err.to_string(),
            "LineString requires at least 2 coordinates, got 1"
        );
    }

    #[test]
    fn display_unclosed_ring() {
        assert!(GeometryError::UnclosedRing.to_string().contains("closed"));
    }

    #[test]
    fn display_wkt_parse() {
        let err = GeometryError::WktParse {
            message: "expected '('".to_string(),
            offset: 7,
        };
        let s = err.to_string();
        assert!(s.contains("byte 7"));
        assert!(s.contains("expected '('"));
    }

    #[test]
    fn display_non_finite() {
        let err = GeometryError::NonFiniteCoordinate {
            x: f64::NAN,
            y: 1.0,
        };
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&GeometryError::UnclosedRing);
    }
}
