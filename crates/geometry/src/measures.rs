//! Scalar measures of geometries (length, area, centroid, hulls).

use crate::algorithms::convex_hull;
use crate::coord::Coord;
use crate::error::GeometryError;
use crate::geometry::Geometry;
use crate::point::Point;
use crate::polygon::Polygon;

/// Total length of the geometry: 0 for points, polyline length for lines,
/// perimeter for polygons, and the sum over members for collections.
pub fn length(g: &Geometry) -> f64 {
    match g {
        Geometry::Point(_) => 0.0,
        Geometry::Line(l) => l.length(),
        Geometry::Polygon(p) => p.perimeter(),
        Geometry::Collection(c) => c.iter().map(length).sum(),
    }
}

/// Area of the geometry: 0 for points and lines, polygon area for polygons,
/// and the sum over members for collections.
pub fn area(g: &Geometry) -> f64 {
    match g {
        Geometry::Point(_) | Geometry::Line(_) => 0.0,
        Geometry::Polygon(p) => p.area(),
        Geometry::Collection(c) => c.iter().map(area).sum(),
    }
}

/// Centroid of the geometry. For collections this is the unweighted mean of
/// the member centroids. Fails for empty collections.
pub fn centroid(g: &Geometry) -> Result<Coord, GeometryError> {
    match g {
        Geometry::Point(p) => Ok(p.coord()),
        Geometry::Line(l) => {
            // Length-weighted midpoint of segments.
            let total = l.length();
            if total == 0.0 {
                return Ok(l.coords()[0]);
            }
            let mut cx = 0.0;
            let mut cy = 0.0;
            for (a, b) in l.segments() {
                let w = a.distance(&b) / total;
                cx += (a.x + b.x) / 2.0 * w;
                cy += (a.y + b.y) / 2.0 * w;
            }
            Ok(Coord::new(cx, cy))
        }
        Geometry::Polygon(p) => Ok(p.centroid()),
        Geometry::Collection(c) => {
            if c.is_empty() {
                return Err(GeometryError::EmptyGeometry {
                    operation: "centroid",
                });
            }
            let mut cx = 0.0;
            let mut cy = 0.0;
            let mut n = 0.0;
            for g in c.iter() {
                let cc = centroid(g)?;
                cx += cc.x;
                cy += cc.y;
                n += 1.0;
            }
            Ok(Coord::new(cx / n, cy / n))
        }
    }
}

/// Collects every coordinate of a geometry into a flat vector.
pub fn coordinates(g: &Geometry) -> Vec<Coord> {
    match g {
        Geometry::Point(p) => vec![p.coord()],
        Geometry::Line(l) => l.coords().to_vec(),
        Geometry::Polygon(p) => {
            let mut v = p.exterior().to_vec();
            for hole in p.interiors() {
                v.extend_from_slice(hole);
            }
            v
        }
        Geometry::Collection(c) => c.iter().flat_map(coordinates).collect(),
    }
}

/// Number of coordinates in the geometry.
pub fn num_coordinates(g: &Geometry) -> usize {
    match g {
        Geometry::Point(_) => 1,
        Geometry::Line(l) => l.len(),
        Geometry::Polygon(p) => {
            p.exterior().len() + p.interiors().iter().map(Vec::len).sum::<usize>()
        }
        Geometry::Collection(c) => c.iter().map(num_coordinates).sum(),
    }
}

/// Convex hull of any geometry, returned as a polygon (or a point / line
/// for degenerate inputs). Fails for empty collections.
pub fn hull(g: &Geometry) -> Result<Geometry, GeometryError> {
    let coords = coordinates(g);
    if coords.is_empty() {
        return Err(GeometryError::EmptyGeometry { operation: "hull" });
    }
    let hull = convex_hull(&coords);
    match hull.len() {
        0 => Err(GeometryError::EmptyGeometry { operation: "hull" }),
        1 => Ok(Geometry::Point(Point::from_coord(hull[0]))),
        2 => Ok(Geometry::Line(crate::linestring::LineString::new(hull)?)),
        _ => Ok(Geometry::Polygon(Polygon::new(hull, Vec::new())?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::GeometryCollection;
    use crate::linestring::LineString;

    fn line(coords: &[(f64, f64)]) -> Geometry {
        LineString::from_tuples(coords).unwrap().into()
    }

    fn square() -> Geometry {
        Polygon::from_tuples(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)])
            .unwrap()
            .into()
    }

    #[test]
    fn lengths() {
        assert_eq!(length(&Point::new(1.0, 1.0).into()), 0.0);
        assert_eq!(length(&line(&[(0.0, 0.0), (3.0, 4.0)])), 5.0);
        assert_eq!(length(&square()), 8.0);
        let c: Geometry = GeometryCollection::new(vec![
            line(&[(0.0, 0.0), (1.0, 0.0)]),
            line(&[(0.0, 0.0), (0.0, 2.0)]),
        ])
        .into();
        assert_eq!(length(&c), 3.0);
    }

    #[test]
    fn areas() {
        assert_eq!(area(&Point::new(1.0, 1.0).into()), 0.0);
        assert_eq!(area(&line(&[(0.0, 0.0), (3.0, 4.0)])), 0.0);
        assert!((area(&square()) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn centroids() {
        assert_eq!(
            centroid(&Point::new(1.0, 2.0).into()).unwrap(),
            Coord::new(1.0, 2.0)
        );
        let c = centroid(&line(&[(0.0, 0.0), (10.0, 0.0)])).unwrap();
        assert_eq!(c, Coord::new(5.0, 0.0));
        let sq = centroid(&square()).unwrap();
        assert!((sq.x - 1.0).abs() < 1e-12 && (sq.y - 1.0).abs() < 1e-12);
        let empty: Geometry = GeometryCollection::empty().into();
        assert!(centroid(&empty).is_err());
    }

    #[test]
    fn centroid_of_collection_is_mean_of_members() {
        let c: Geometry = GeometryCollection::new(vec![
            Point::new(0.0, 0.0).into(),
            Point::new(10.0, 0.0).into(),
        ])
        .into();
        assert_eq!(centroid(&c).unwrap(), Coord::new(5.0, 0.0));
    }

    #[test]
    fn coordinate_counts() {
        assert_eq!(num_coordinates(&Point::new(0.0, 0.0).into()), 1);
        assert_eq!(
            num_coordinates(&line(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])),
            3
        );
        assert_eq!(num_coordinates(&square()), 5);
        assert_eq!(coordinates(&square()).len(), 5);
    }

    #[test]
    fn hull_of_points() {
        let c: Geometry = GeometryCollection::new(vec![
            Point::new(0.0, 0.0).into(),
            Point::new(4.0, 0.0).into(),
            Point::new(4.0, 4.0).into(),
            Point::new(0.0, 4.0).into(),
            Point::new(2.0, 2.0).into(),
        ])
        .into();
        let h = hull(&c).unwrap();
        assert!((area(&h) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn hull_degenerate_cases() {
        let single: Geometry = Point::new(3.0, 3.0).into();
        assert!(matches!(hull(&single).unwrap(), Geometry::Point(_)));
        let two: Geometry = GeometryCollection::new(vec![
            Point::new(0.0, 0.0).into(),
            Point::new(1.0, 1.0).into(),
        ])
        .into();
        assert!(matches!(hull(&two).unwrap(), Geometry::Line(_)));
        let empty: Geometry = GeometryCollection::empty().into();
        assert!(hull(&empty).is_err());
    }
}
