//! Computational geometry for spatial data warehouse personalization.
//!
//! This crate provides the geometric substrate required by the EDBT 2010
//! paper *Using Web-based Personalization on Spatial Data Warehouses*:
//!
//! * the geometric primitive types named in the paper's `GeometricTypes`
//!   enumeration — [`Point`] (POINT), [`LineString`] (LINE), [`Polygon`]
//!   (POLYGON) and [`GeometryCollection`] (COLLECTION) — unified under the
//!   [`Geometry`] enum;
//! * the spatial operators the paper adds to PRML: the topological
//!   predicates *Intersect*, *Disjoint*, *Cross*, *Inside* and *Equals*
//!   (see [`predicates`]), the numeric *Distance* operator (see
//!   [`distance`]) and the geometric *Intersection* operator (see
//!   [`intersection`]);
//! * supporting machinery: bounding boxes, WKT parsing/serialisation,
//!   length/area/centroid measures, convex hulls and geodetic (haversine)
//!   distance.
//!
//! All coordinates are planar `f64` pairs. Distances default to the
//! Euclidean metric in the same units as the coordinates; a geodetic
//! interpretation (degrees → kilometres) is available via
//! [`haversine::haversine_distance`] and [`distance::DistanceMetric`].
//!
//! # Example
//!
//! ```
//! use sdwp_geometry::{Point, LineString, Geometry, predicates, distance};
//!
//! let store = Point::new(2.0, 3.0);
//! let airport = Point::new(5.0, 7.0);
//! assert_eq!(distance::euclidean(&store.into(), &airport.into()), 5.0);
//!
//! let road = LineString::new(vec![(0.0, 0.0).into(), (10.0, 10.0).into()]).unwrap();
//! assert!(predicates::intersects(&Geometry::from(road), &Point::new(5.0, 5.0).into()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod bbox;
pub mod collection;
pub mod coord;
pub mod distance;
pub mod error;
pub mod geometry;
pub mod haversine;
pub mod intersection;
pub mod linestring;
pub mod measures;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod wkt;

pub use bbox::BoundingBox;
pub use collection::GeometryCollection;
pub use coord::Coord;
pub use distance::{distance, DistanceMetric};
pub use error::GeometryError;
pub use geometry::{GeometricType, Geometry};
pub use linestring::LineString;
pub use point::Point;
pub use polygon::Polygon;
