//! Great-circle (haversine) distance for geodetic coordinates.

use crate::coord::Coord;

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance in kilometres between two coordinates interpreted
/// as `(longitude, latitude)` in degrees.
pub fn haversine_distance(a: &Coord, b: &Coord) -> f64 {
    let lat1 = a.y.to_radians();
    let lat2 = b.y.to_radians();
    let dlat = (b.y - a.y).to_radians();
    let dlon = (b.x - a.x).to_radians();

    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Converts a kilometre distance to the approximate number of degrees of
/// latitude it spans (useful for building geodetic search windows).
pub fn km_to_deg_lat(km: f64) -> f64 {
    km / (EARTH_RADIUS_KM * std::f64::consts::PI / 180.0)
}

/// Converts a kilometre distance to the approximate number of degrees of
/// longitude it spans at the given latitude (degrees).
pub fn km_to_deg_lon(km: f64, latitude_deg: f64) -> f64 {
    let cos_lat = latitude_deg.to_radians().cos().abs().max(1e-12);
    km_to_deg_lat(km) / cos_lat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = Coord::new(-0.48, 38.34); // Alicante
        assert_eq!(haversine_distance(&p, &p), 0.0);
    }

    #[test]
    fn alicante_to_lausanne() {
        // The paper was presented at EDBT 2010 in Lausanne; the authors are
        // in Alicante. Great-circle distance is roughly 1090-1110 km.
        let alicante = Coord::new(-0.4810, 38.3452);
        let lausanne = Coord::new(6.6323, 46.5197);
        let d = haversine_distance(&alicante, &lausanne);
        assert!(d > 1050.0 && d < 1150.0, "got {d}");
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(0.0, 1.0);
        let d = haversine_distance(&a, &b);
        assert!((d - 111.19).abs() < 0.5, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = Coord::new(10.0, 20.0);
        let b = Coord::new(-30.0, 45.0);
        assert!((haversine_distance(&a, &b) - haversine_distance(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn degree_conversions() {
        assert!((km_to_deg_lat(111.19) - 1.0).abs() < 0.01);
        // Longitude degrees get wider (in degree terms) away from the equator.
        assert!(km_to_deg_lon(100.0, 60.0) > km_to_deg_lon(100.0, 0.0));
        // At the equator lat and lon conversions agree.
        assert!((km_to_deg_lon(100.0, 0.0) - km_to_deg_lat(100.0)).abs() < 1e-9);
    }
}
