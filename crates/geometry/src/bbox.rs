//! Axis-aligned bounding boxes.

use crate::coord::Coord;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box (minimum bounding rectangle).
///
/// Bounding boxes are the workhorse of the spatial indexes in `sdwp-index`
/// and of the predicate fast paths in [`crate::predicates`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Smallest x coordinate covered by the box.
    pub min_x: f64,
    /// Smallest y coordinate covered by the box.
    pub min_y: f64,
    /// Largest x coordinate covered by the box.
    pub max_x: f64,
    /// Largest y coordinate covered by the box.
    pub max_y: f64,
}

impl BoundingBox {
    /// Creates a bounding box from explicit extents. The extents are
    /// normalised so that `min_* <= max_*` always holds.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        BoundingBox {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// The degenerate box covering a single coordinate.
    pub fn from_coord(c: Coord) -> Self {
        BoundingBox {
            min_x: c.x,
            min_y: c.y,
            max_x: c.x,
            max_y: c.y,
        }
    }

    /// Computes the bounding box of a coordinate slice, or `None` when the
    /// slice is empty.
    pub fn from_coords(coords: &[Coord]) -> Option<Self> {
        let mut it = coords.iter();
        let first = it.next()?;
        let mut bbox = BoundingBox::from_coord(*first);
        for c in it {
            bbox.expand_coord(*c);
        }
        Some(bbox)
    }

    /// Width of the box along the x axis.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the box along the y axis.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the box.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (used by R-tree split heuristics).
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point of the box.
    pub fn center(&self) -> Coord {
        Coord::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Grows the box (in place) so that it also covers `c`.
    pub fn expand_coord(&mut self, c: Coord) {
        self.min_x = self.min_x.min(c.x);
        self.min_y = self.min_y.min(c.y);
        self.max_x = self.max_x.max(c.x);
        self.max_y = self.max_y.max(c.y);
    }

    /// Grows the box (in place) so that it also covers `other`.
    pub fn expand(&mut self, other: &BoundingBox) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Returns the smallest box covering both `self` and `other`.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        let mut b = *self;
        b.expand(other);
        b
    }

    /// Returns the increase in area needed to cover `other`
    /// (the R-tree insertion heuristic).
    pub fn enlargement(&self, other: &BoundingBox) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Returns `true` if the two boxes share at least one point
    /// (touching edges count as intersecting).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Returns the overlap box, or `None` when the boxes are disjoint.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BoundingBox {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Returns `true` if `other` lies entirely within `self`
    /// (boundary contact allowed).
    pub fn contains(&self, other: &BoundingBox) -> bool {
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// Returns `true` if the coordinate lies inside or on the boundary.
    pub fn contains_coord(&self, c: &Coord) -> bool {
        c.x >= self.min_x && c.x <= self.max_x && c.y >= self.min_y && c.y <= self.max_y
    }

    /// Returns a copy of the box grown by `margin` on every side.
    pub fn buffered(&self, margin: f64) -> BoundingBox {
        BoundingBox::new(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
    }

    /// Minimum Euclidean distance from the box to a coordinate
    /// (zero when the coordinate is inside).
    pub fn distance_to_coord(&self, c: &Coord) -> f64 {
        let dx = if c.x < self.min_x {
            self.min_x - c.x
        } else if c.x > self.max_x {
            c.x - self.max_x
        } else {
            0.0
        };
        let dy = if c.y < self.min_y {
            self.min_y - c.y
        } else if c.y > self.max_y {
            c.y - self.max_y
        } else {
            0.0
        };
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum Euclidean distance between two boxes (zero when they
    /// intersect).
    pub fn distance_to_bbox(&self, other: &BoundingBox) -> f64 {
        let dx = if other.max_x < self.min_x {
            self.min_x - other.max_x
        } else if other.min_x > self.max_x {
            other.min_x - self.max_x
        } else {
            0.0
        };
        let dy = if other.max_y < self.min_y {
            self.min_y - other.max_y
        } else if other.min_y > self.max_y {
            other.min_y - self.max_y
        } else {
            0.0
        };
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_extents() {
        let b = BoundingBox::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(b.min_x, 1.0);
        assert_eq!(b.max_x, 5.0);
        assert_eq!(b.min_y, 2.0);
        assert_eq!(b.max_y, 6.0);
    }

    #[test]
    fn from_coords_empty_is_none() {
        assert!(BoundingBox::from_coords(&[]).is_none());
    }

    #[test]
    fn from_coords_covers_all() {
        let coords = vec![
            Coord::new(1.0, 1.0),
            Coord::new(-2.0, 5.0),
            Coord::new(3.0, 0.5),
        ];
        let b = BoundingBox::from_coords(&coords).unwrap();
        assert_eq!(b, BoundingBox::new(-2.0, 0.5, 3.0, 5.0));
        for c in &coords {
            assert!(b.contains_coord(c));
        }
    }

    #[test]
    fn area_width_height_margin() {
        let b = BoundingBox::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 8.0);
        assert_eq!(b.margin(), 6.0);
        assert_eq!(b.center(), Coord::new(2.0, 1.0));
    }

    #[test]
    fn union_and_enlargement() {
        let a = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BoundingBox::new(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, BoundingBox::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
    }

    #[test]
    fn intersects_and_intersection() {
        let a = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::new(1.0, 1.0, 3.0, 3.0);
        let c = BoundingBox::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(
            a.intersection(&b),
            Some(BoundingBox::new(1.0, 1.0, 2.0, 2.0))
        );
        assert_eq!(a.intersection(&c), None);
        // Touching edge counts as intersecting.
        let d = BoundingBox::new(2.0, 0.0, 4.0, 2.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn contains_box_and_coord() {
        let outer = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let inner = BoundingBox::new(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains_coord(&Coord::new(10.0, 10.0)));
        assert!(!outer.contains_coord(&Coord::new(10.1, 5.0)));
    }

    #[test]
    fn buffered_grows_every_side() {
        let b = BoundingBox::new(0.0, 0.0, 1.0, 1.0).buffered(0.5);
        assert_eq!(b, BoundingBox::new(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn distance_to_coord_cases() {
        let b = BoundingBox::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(b.distance_to_coord(&Coord::new(1.0, 1.0)), 0.0);
        assert_eq!(b.distance_to_coord(&Coord::new(5.0, 1.0)), 3.0);
        assert_eq!(b.distance_to_coord(&Coord::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn distance_between_boxes() {
        let a = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BoundingBox::new(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance_to_bbox(&b), 5.0);
        assert_eq!(a.distance_to_bbox(&a), 0.0);
    }
}
