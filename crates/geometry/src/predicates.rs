//! Topological predicates.
//!
//! The paper adds five boolean spatial operators to PRML: *Intersect*,
//! *Disjoint*, *Cross*, *Inside* and *Equals*. This module implements them
//! (plus the complementary *Contains* and *Touches* helpers) over every
//! combination of the four geometric types, following OGC Simple Features
//! semantics at the precision of [`crate::coord::EPSILON`].

use crate::algorithms::{point_on_segment, segments_intersect, SegmentIntersection};
use crate::collection::GeometryCollection;
use crate::coord::Coord;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::polygon::Polygon;

/// `Intersect(a, b)`: the geometries share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    // Cheap bounding-box rejection first. The exact predicates below all
    // tolerate EPSILON, so the fast path must too — otherwise a point a
    // true 1e-12 outside the box is rejected although the exact test would
    // accept it.
    match (a.bbox(), b.bbox()) {
        (Some(ba), Some(bb)) if !ba.buffered(crate::coord::EPSILON).intersects(&bb) => {
            return false
        }
        (None, _) | (_, None) => return false,
        _ => {}
    }
    match (a, b) {
        (Geometry::Collection(c), other) => c.iter().any(|g| intersects(g, other)),
        (other, Geometry::Collection(c)) => c.iter().any(|g| intersects(other, g)),
        (Geometry::Point(p), Geometry::Point(q)) => p.coord().approx_eq(&q.coord()),
        (Geometry::Point(p), Geometry::Line(l)) | (Geometry::Line(l), Geometry::Point(p)) => {
            point_on_line(&p.coord(), l)
        }
        (Geometry::Point(p), Geometry::Polygon(poly))
        | (Geometry::Polygon(poly), Geometry::Point(p)) => poly.contains_coord(&p.coord()),
        (Geometry::Line(a), Geometry::Line(b)) => lines_intersect(a, b),
        (Geometry::Line(l), Geometry::Polygon(p)) | (Geometry::Polygon(p), Geometry::Line(l)) => {
            line_polygon_intersect(l, p)
        }
        (Geometry::Polygon(a), Geometry::Polygon(b)) => polygons_intersect(a, b),
    }
}

/// `Disjoint(a, b)`: the geometries share no point. Defined as the negation
/// of [`intersects`], except that an empty geometry is disjoint from
/// everything.
pub fn disjoint(a: &Geometry, b: &Geometry) -> bool {
    !intersects(a, b)
}

/// `Equals(a, b)`: the geometries describe the same point set.
///
/// Points compare coordinate-wise; lines compare as equal vertex sequences
/// in either direction; polygons compare rings up to rotation and
/// direction; collections compare element-wise in order.
pub fn equals(a: &Geometry, b: &Geometry) -> bool {
    match (a, b) {
        (Geometry::Point(p), Geometry::Point(q)) => p.coord().approx_eq(&q.coord()),
        (Geometry::Line(l1), Geometry::Line(l2)) => {
            coords_equal(l1.coords(), l2.coords())
                || coords_equal(l1.coords(), l2.reversed().coords())
        }
        (Geometry::Polygon(p1), Geometry::Polygon(p2)) => {
            rings_equal(p1.exterior(), p2.exterior())
                && p1.interiors().len() == p2.interiors().len()
                && p1
                    .interiors()
                    .iter()
                    .zip(p2.interiors())
                    .all(|(r1, r2)| rings_equal(r1, r2))
        }
        (Geometry::Collection(c1), Geometry::Collection(c2)) => {
            c1.len() == c2.len() && c1.iter().zip(c2.iter()).all(|(g1, g2)| equals(g1, g2))
        }
        _ => false,
    }
}

/// `Inside(a, b)` (OGC *Within*): every point of `a` lies in `b` and the
/// geometries are not equal-dimensional boundaries only.
pub fn inside(a: &Geometry, b: &Geometry) -> bool {
    match (a, b) {
        (Geometry::Point(p), Geometry::Point(q)) => p.coord().approx_eq(&q.coord()),
        (Geometry::Point(p), Geometry::Line(l)) => point_on_line(&p.coord(), l),
        (Geometry::Point(p), Geometry::Polygon(poly)) => poly.contains_coord(&p.coord()),
        (Geometry::Line(l), Geometry::Polygon(poly)) => {
            l.coords().iter().all(|c| poly.contains_coord(c))
                && !line_crosses_polygon_boundary_outwards(l, poly)
        }
        (Geometry::Line(a), Geometry::Line(b)) => a.coords().iter().all(|c| point_on_line(c, b)),
        (Geometry::Polygon(a), Geometry::Polygon(b)) => {
            a.exterior().iter().all(|c| b.contains_coord(c))
        }
        (Geometry::Collection(c), other) => !c.is_empty() && c.iter().all(|g| inside(g, other)),
        (other, Geometry::Collection(c)) => c.iter().any(|g| inside(other, g)),
        // A polygon (2-D) can never be inside a point or a line.
        (Geometry::Polygon(_), Geometry::Point(_))
        | (Geometry::Polygon(_), Geometry::Line(_))
        | (Geometry::Line(_), Geometry::Point(_)) => false,
    }
}

/// `Contains(a, b)`: the converse of [`inside`].
pub fn contains(a: &Geometry, b: &Geometry) -> bool {
    inside(b, a)
}

/// `Cross(a, b)`: the geometries intersect, and the intersection is of a
/// lower dimension than the maximum of the two inputs and lies partly in
/// the interior of both (e.g. two roads crossing, or a road crossing a city
/// boundary).
pub fn crosses(a: &Geometry, b: &Geometry) -> bool {
    match (a, b) {
        (Geometry::Line(l1), Geometry::Line(l2)) => {
            // Lines cross when they intersect at isolated points that are
            // interior to at least one of them, and neither is inside the
            // other.
            intersects(a, b) && !inside(a, b) && !inside(b, a) && !proper_overlap(l1, l2)
        }
        (Geometry::Line(l), Geometry::Polygon(p)) | (Geometry::Polygon(p), Geometry::Line(l)) => {
            // A line crosses a polygon when it has interior points both
            // inside and outside the polygon.
            let (some_inside, some_outside) = line_interior_exterior(l, p);
            some_inside && some_outside
        }
        (Geometry::Point(_), _) | (_, Geometry::Point(_)) => false,
        (Geometry::Collection(c), other) => c.iter().any(|g| crosses(g, other)),
        (other, Geometry::Collection(c)) => c.iter().any(|g| crosses(other, g)),
        (Geometry::Polygon(_), Geometry::Polygon(_)) => false,
    }
}

/// `Touches(a, b)`: the geometries intersect only at their boundaries.
pub fn touches(a: &Geometry, b: &Geometry) -> bool {
    if !intersects(a, b) {
        return false;
    }
    match (a, b) {
        (Geometry::Point(p), Geometry::Line(l)) | (Geometry::Line(l), Geometry::Point(p)) => {
            let c = p.coord();
            let first = l.coords().first().expect("non-empty line");
            let last = l.coords().last().expect("non-empty line");
            c.approx_eq(first) || c.approx_eq(last)
        }
        (Geometry::Point(p), Geometry::Polygon(poly))
        | (Geometry::Polygon(poly), Geometry::Point(p)) => on_polygon_boundary(poly, &p.coord()),
        (Geometry::Line(l), Geometry::Polygon(p)) | (Geometry::Polygon(p), Geometry::Line(l)) => {
            // Touches: intersects the boundary but has no point strictly inside.
            let strictly_inside = l
                .coords()
                .iter()
                .any(|c| p.contains_coord(c) && !on_polygon_boundary(p, c));
            !strictly_inside
        }
        (Geometry::Polygon(p1), Geometry::Polygon(p2)) => !polygon_interiors_overlap(p1, p2),
        _ => false,
    }
}

// ----- helpers ---------------------------------------------------------

fn coords_equal(a: &[Coord], b: &[Coord]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y))
}

/// Ring equality up to rotation and direction (rings are stored closed).
fn rings_equal(a: &[Coord], b: &[Coord]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let a_open = &a[..a.len() - 1];
    let b_open = &b[..b.len() - 1];
    let n = a_open.len();
    if n == 0 {
        return true;
    }
    for dir in [1i64, -1] {
        for offset in 0..n {
            let mut all = true;
            for (i, a_c) in a_open.iter().enumerate() {
                let j = ((offset as i64 + dir * i as i64).rem_euclid(n as i64)) as usize;
                if !a_c.approx_eq(&b_open[j]) {
                    all = false;
                    break;
                }
            }
            if all {
                return true;
            }
        }
    }
    false
}

/// Returns `true` if the coordinate lies on any segment of the line.
pub(crate) fn point_on_line(c: &Coord, l: &LineString) -> bool {
    l.segments().any(|(a, b)| point_on_segment(c, &a, &b))
}

fn lines_intersect(a: &LineString, b: &LineString) -> bool {
    for (a1, a2) in a.segments() {
        for (b1, b2) in b.segments() {
            if segments_intersect(&a1, &a2, &b1, &b2) {
                return true;
            }
        }
    }
    false
}

fn line_polygon_intersect(l: &LineString, p: &Polygon) -> bool {
    if l.coords().iter().any(|c| p.contains_coord(c)) {
        return true;
    }
    for (a, b) in l.segments() {
        for (c, d) in p.all_segments() {
            if segments_intersect(&a, &b, &c, &d) {
                return true;
            }
        }
    }
    false
}

fn polygons_intersect(a: &Polygon, b: &Polygon) -> bool {
    if a.exterior().iter().any(|c| b.contains_coord(c))
        || b.exterior().iter().any(|c| a.contains_coord(c))
    {
        return true;
    }
    for (a1, a2) in a.all_segments() {
        for (b1, b2) in b.all_segments() {
            if segments_intersect(&a1, &a2, &b1, &b2) {
                return true;
            }
        }
    }
    false
}

fn on_polygon_boundary(p: &Polygon, c: &Coord) -> bool {
    crate::polygon::on_ring_boundary(p.exterior(), c)
        || p.interiors()
            .iter()
            .any(|r| crate::polygon::on_ring_boundary(r, c))
}

/// Returns `true` if any pair of segments from the two lines overlap
/// collinearly over a non-degenerate length.
fn proper_overlap(a: &LineString, b: &LineString) -> bool {
    for (a1, a2) in a.segments() {
        for (b1, b2) in b.segments() {
            if let SegmentIntersection::Overlap(s, e) =
                crate::algorithms::segment_intersection(&a1, &a2, &b1, &b2)
            {
                if !s.approx_eq(&e) {
                    return true;
                }
            }
        }
    }
    false
}

fn line_crosses_polygon_boundary_outwards(l: &LineString, p: &Polygon) -> bool {
    l.coords().iter().any(|c| !p.contains_coord(c))
}

/// Splits every segment of the line at its crossings with the polygon
/// boundary and classifies the piece midpoints, returning
/// `(has_interior_piece, has_exterior_piece)`.
fn line_interior_exterior(l: &LineString, p: &Polygon) -> (bool, bool) {
    let mut some_inside = false;
    let mut some_outside = false;
    for (a, b) in l.segments() {
        let mut cuts = vec![0.0f64, 1.0];
        for (c, d) in p.all_segments() {
            match crate::algorithms::segment_intersection(&a, &b, &c, &d) {
                SegmentIntersection::Point(x) => {
                    if let Some(t) = segment_param(&a, &b, &x) {
                        cuts.push(t);
                    }
                }
                SegmentIntersection::Overlap(s, e) => {
                    for x in [s, e] {
                        if let Some(t) = segment_param(&a, &b, &x) {
                            cuts.push(t);
                        }
                    }
                }
                SegmentIntersection::None => {}
            }
        }
        cuts.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        for w in cuts.windows(2) {
            if w[1] - w[0] < 1e-12 {
                continue;
            }
            let mid_t = (w[0] + w[1]) / 2.0;
            let mid = Coord::new(a.x + (b.x - a.x) * mid_t, a.y + (b.y - a.y) * mid_t);
            if on_polygon_boundary(p, &mid) {
                continue;
            }
            if p.contains_coord(&mid) {
                some_inside = true;
            } else {
                some_outside = true;
            }
            if some_inside && some_outside {
                return (true, true);
            }
        }
    }
    (some_inside, some_outside)
}

/// Parametric position of `x` along the segment `a`-`b`, when it lies on it.
fn segment_param(a: &Coord, b: &Coord, x: &Coord) -> Option<f64> {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 <= f64::EPSILON {
        return None;
    }
    let t = (*x - *a).dot(&ab) / len2;
    if (-1e-9..=1.0 + 1e-9).contains(&t) {
        Some(t.clamp(0.0, 1.0))
    } else {
        None
    }
}

/// Returns `true` when the interiors (not just boundaries) of two polygons
/// share points. Checks exterior vertices, edge midpoints and the centre of
/// the bounding-box overlap.
fn polygon_interiors_overlap(p1: &Polygon, p2: &Polygon) -> bool {
    let strict_in =
        |poly: &Polygon, c: &Coord| poly.contains_coord(c) && !on_polygon_boundary(poly, c);
    if p1.exterior().iter().any(|c| strict_in(p2, c))
        || p2.exterior().iter().any(|c| strict_in(p1, c))
    {
        return true;
    }
    let midpoints = |poly: &Polygon| -> Vec<Coord> {
        poly.all_segments()
            .iter()
            .map(|(a, b)| Coord::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0))
            .collect()
    };
    if midpoints(p1).iter().any(|c| strict_in(p2, c))
        || midpoints(p2).iter().any(|c| strict_in(p1, c))
    {
        return true;
    }
    if let Some(overlap) = p1.bbox().intersection(&p2.bbox()) {
        let c = overlap.center();
        if strict_in(p1, &c) && strict_in(p2, &c) {
            return true;
        }
    }
    false
}

/// Evaluates a predicate by name, as referenced from PRML rule text.
///
/// Recognised names (case-insensitive): `Intersect`, `Intersects`,
/// `Disjoint`, `Cross`, `Crosses`, `Inside`, `Within`, `Equals`,
/// `Contains`, `Touches`.
pub fn evaluate_named(name: &str, a: &Geometry, b: &Geometry) -> Option<bool> {
    match name.to_ascii_lowercase().as_str() {
        "intersect" | "intersects" => Some(intersects(a, b)),
        "disjoint" => Some(disjoint(a, b)),
        "cross" | "crosses" => Some(crosses(a, b)),
        "inside" | "within" => Some(inside(a, b)),
        "equals" => Some(equals(a, b)),
        "contains" => Some(contains(a, b)),
        "touches" => Some(touches(a, b)),
        _ => None,
    }
}

/// Convenience: evaluates [`intersects`] over collections treating an empty
/// collection as never intersecting.
pub fn any_intersects(collection: &GeometryCollection, other: &Geometry) -> bool {
    collection.iter().any(|g| intersects(g, other))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn pt(x: f64, y: f64) -> Geometry {
        Point::new(x, y).into()
    }

    fn line(coords: &[(f64, f64)]) -> Geometry {
        LineString::from_tuples(coords).unwrap().into()
    }

    fn poly(coords: &[(f64, f64)]) -> Geometry {
        Polygon::from_tuples(coords).unwrap().into()
    }

    fn unit_square() -> Geometry {
        poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)])
    }

    #[test]
    fn point_point_predicates() {
        assert!(intersects(&pt(1.0, 1.0), &pt(1.0, 1.0)));
        assert!(!intersects(&pt(1.0, 1.0), &pt(1.0, 2.0)));
        assert!(equals(&pt(1.0, 1.0), &pt(1.0, 1.0)));
        assert!(disjoint(&pt(0.0, 0.0), &pt(5.0, 5.0)));
        assert!(inside(&pt(1.0, 1.0), &pt(1.0, 1.0)));
    }

    #[test]
    fn point_line_predicates() {
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        assert!(intersects(&pt(5.0, 0.0), &l));
        assert!(!intersects(&pt(5.0, 1.0), &l));
        assert!(inside(&pt(5.0, 0.0), &l));
        assert!(touches(&pt(0.0, 0.0), &l));
        assert!(!touches(&pt(5.0, 0.0), &l));
    }

    #[test]
    fn point_polygon_predicates() {
        let p = unit_square();
        assert!(intersects(&pt(5.0, 5.0), &p));
        assert!(inside(&pt(5.0, 5.0), &p));
        assert!(!inside(&pt(15.0, 5.0), &p));
        assert!(touches(&pt(0.0, 5.0), &p));
        assert!(contains(&p, &pt(5.0, 5.0)));
    }

    #[test]
    fn line_line_predicates() {
        let a = line(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = line(&[(0.0, 10.0), (10.0, 0.0)]);
        let c = line(&[(20.0, 20.0), (30.0, 30.0)]);
        assert!(intersects(&a, &b));
        assert!(crosses(&a, &b));
        assert!(disjoint(&a, &c));
        assert!(!crosses(&a, &c));
        // A line does not cross itself (it's equal / inside).
        assert!(!crosses(&a, &a));
        assert!(equals(&a, &a));
        // Reversed line is still equal.
        let rev = line(&[(10.0, 10.0), (0.0, 0.0)]);
        assert!(equals(&a, &rev));
    }

    #[test]
    fn collinear_overlapping_lines_do_not_cross() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = line(&[(5.0, 0.0), (15.0, 0.0)]);
        assert!(intersects(&a, &b));
        assert!(!crosses(&a, &b));
    }

    #[test]
    fn line_polygon_predicates() {
        let square = unit_square();
        let crossing = line(&[(-5.0, 5.0), (15.0, 5.0)]);
        let inside_line = line(&[(2.0, 2.0), (8.0, 8.0)]);
        let outside_line = line(&[(20.0, 20.0), (30.0, 20.0)]);
        assert!(intersects(&crossing, &square));
        assert!(crosses(&crossing, &square));
        assert!(intersects(&inside_line, &square));
        assert!(inside(&inside_line, &square));
        assert!(!crosses(&inside_line, &square));
        assert!(disjoint(&outside_line, &square));
    }

    #[test]
    fn polygon_polygon_predicates() {
        let a = unit_square();
        let b = poly(&[(5.0, 5.0), (15.0, 5.0), (15.0, 15.0), (5.0, 15.0)]);
        let c = poly(&[(20.0, 20.0), (25.0, 20.0), (25.0, 25.0), (20.0, 25.0)]);
        let inner = poly(&[(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]);
        assert!(intersects(&a, &b));
        assert!(disjoint(&a, &c));
        assert!(inside(&inner, &a));
        assert!(contains(&a, &inner));
        assert!(!inside(&a, &inner));
        assert!(equals(&a, &a));
    }

    #[test]
    fn touching_polygons() {
        let a = unit_square();
        let adjacent = poly(&[(10.0, 0.0), (20.0, 0.0), (20.0, 10.0), (10.0, 10.0)]);
        assert!(intersects(&a, &adjacent));
        assert!(touches(&a, &adjacent));
        let overlapping = poly(&[(5.0, 0.0), (20.0, 0.0), (20.0, 10.0), (5.0, 10.0)]);
        assert!(!touches(&a, &overlapping));
    }

    #[test]
    fn polygon_ring_equality_up_to_rotation() {
        let a = poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let rotated = poly(&[(1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]);
        let reversed = poly(&[(0.0, 1.0), (1.0, 1.0), (1.0, 0.0), (0.0, 0.0)]);
        assert!(equals(&a, &rotated));
        assert!(equals(&a, &reversed));
        let other = poly(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        assert!(!equals(&a, &other));
    }

    #[test]
    fn collection_predicates() {
        let c: Geometry = GeometryCollection::new(vec![pt(1.0, 1.0), pt(20.0, 20.0)]).into();
        let square = unit_square();
        assert!(intersects(&c, &square));
        assert!(!inside(&c, &square)); // one member is outside
        let all_in: Geometry = GeometryCollection::new(vec![pt(1.0, 1.0), pt(2.0, 2.0)]).into();
        assert!(inside(&all_in, &square));
        let empty: Geometry = GeometryCollection::empty().into();
        assert!(disjoint(&empty, &square));
        assert!(!inside(&empty, &square));
    }

    #[test]
    fn named_predicate_dispatch() {
        let a = pt(1.0, 1.0);
        let b = pt(1.0, 1.0);
        assert_eq!(evaluate_named("Intersect", &a, &b), Some(true));
        assert_eq!(evaluate_named("DISJOINT", &a, &b), Some(false));
        assert_eq!(evaluate_named("equals", &a, &b), Some(true));
        assert_eq!(evaluate_named("inside", &a, &b), Some(true));
        assert_eq!(evaluate_named("nonsense", &a, &b), None);
    }

    #[test]
    fn any_intersects_collection_helper() {
        let c = GeometryCollection::new(vec![pt(1.0, 1.0)]);
        assert!(any_intersects(&c, &unit_square()));
        assert!(!any_intersects(
            &GeometryCollection::empty(),
            &unit_square()
        ));
    }

    #[test]
    fn points_never_cross() {
        assert!(!crosses(&pt(0.0, 0.0), &pt(0.0, 0.0)));
        assert!(!crosses(&pt(0.0, 0.0), &unit_square()));
    }
}
