//! The `Intersection` spatial operator.
//!
//! The paper's third operator class "returns another geometric object
//! depending on the involved elements and the order. For example, if we
//! intersect LINE type with POINT the operator returns a COLLECTION type of
//! sublines. However, if it is POINT intersecting LINE type the operator
//! returns a COLLECTION type of points." This module implements that
//! order-sensitive operator: the *result is framed in terms of the
//! left-hand geometry* (sub-geometries of the first operand that touch the
//! second operand).

use crate::algorithms::{segment_intersection, SegmentIntersection};
use crate::collection::GeometryCollection;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates;

/// Computes the order-sensitive intersection of `a` with `b`.
///
/// The result is always a [`GeometryCollection`] (possibly empty), as
/// specified by the paper. Members of the collection are pieces *of `a`*:
///
/// * `POINT ∩ anything` → collection of points (the point, if it lies in `b`);
/// * `LINE ∩ POINT` → collection of sub-lines of `a` containing the point
///   (the segments of `a` that the point lies on);
/// * `LINE ∩ LINE` → collection of intersection points and shared sub-lines;
/// * `LINE ∩ POLYGON` → collection of the sub-lines of `a` inside the polygon;
/// * `POLYGON ∩ x` → collection of the boundary pieces of `a` touching `x`
///   plus, when `x` is areal and overlaps, the clipped overlap polygon
///   approximated by the covered boundary; for the personalization rules in
///   the paper only point/line results are consumed.
/// * Collections distribute member-wise.
pub fn intersection(a: &Geometry, b: &Geometry) -> GeometryCollection {
    match (a, b) {
        (Geometry::Collection(c), other) => c
            .iter()
            .flat_map(|g| intersection(g, other).into_iter())
            .collect(),
        (other, Geometry::Collection(c)) => c
            .iter()
            .flat_map(|g| intersection(other, g).into_iter())
            .collect(),
        (Geometry::Point(p), other) => point_with(p, other),
        (Geometry::Line(l), Geometry::Point(p)) => line_with_point(l, p),
        (Geometry::Line(l1), Geometry::Line(l2)) => line_with_line(l1, l2),
        (Geometry::Line(l), Geometry::Polygon(poly)) => line_with_polygon(l, poly),
        (Geometry::Polygon(poly), other) => polygon_with(poly, other),
    }
}

fn point_with(p: &Point, other: &Geometry) -> GeometryCollection {
    if predicates::intersects(&Geometry::Point(*p), other) {
        GeometryCollection::new(vec![Geometry::Point(*p)])
    } else {
        GeometryCollection::empty()
    }
}

/// `LINE ∩ POINT`: when the point lies on the line, the line is *split at
/// the point* and the resulting sub-lines are returned. This is the reading
/// that makes the paper's Example 5.3 work: splitting the train line at the
/// city (and then at the airport) isolates "the corresponding segment"
/// whose length the rule thresholds.
fn line_with_point(l: &LineString, p: &Point) -> GeometryCollection {
    let c = p.coord();
    if !crate::predicates::intersects(&Geometry::Line(l.clone()), &Geometry::Point(*p)) {
        return GeometryCollection::empty();
    }
    let mut before: Vec<crate::coord::Coord> = Vec::new();
    let mut after: Vec<crate::coord::Coord> = Vec::new();
    let mut split_done = false;
    let coords = l.coords();
    for (index, window) in coords.windows(2).enumerate() {
        let (a, b) = (window[0], window[1]);
        if !split_done {
            before.push(a);
            if crate::algorithms::point_on_segment(&c, &a, &b) {
                if !c.approx_eq(&a) {
                    before.push(c);
                }
                split_done = true;
                after.push(c);
                if !c.approx_eq(&b) {
                    after.push(b);
                }
            }
        } else {
            after.push(b);
        }
        // Make sure the final coordinate lands in `before` when the point
        // sits on the very last segment end.
        if !split_done && index == coords.len() - 2 {
            before.push(b);
        }
    }
    let mut out = Vec::new();
    for piece in [before, after] {
        let mut deduped = piece;
        deduped.dedup_by(|a, b| a.approx_eq(b));
        if deduped.len() >= 2 {
            if let Ok(sub) = LineString::new(deduped) {
                out.push(Geometry::Line(sub));
            }
        }
    }
    GeometryCollection::new(out)
}

fn line_with_line(l1: &LineString, l2: &LineString) -> GeometryCollection {
    let mut out: Vec<Geometry> = Vec::new();
    for (a1, a2) in l1.segments() {
        for (b1, b2) in l2.segments() {
            match segment_intersection(&a1, &a2, &b1, &b2) {
                SegmentIntersection::None => {}
                SegmentIntersection::Point(p) => {
                    let g = Geometry::Point(Point::from_coord(p));
                    if !out.iter().any(|existing| predicates::equals(existing, &g)) {
                        out.push(g);
                    }
                }
                SegmentIntersection::Overlap(s, e) => {
                    if let Ok(sub) = LineString::new(vec![s, e]) {
                        let g = Geometry::Line(sub);
                        if !out.iter().any(|existing| predicates::equals(existing, &g)) {
                            out.push(g);
                        }
                    }
                }
            }
        }
    }
    GeometryCollection::new(out)
}

/// Clips a line string against a polygon, returning the sub-lines of the
/// line that lie inside (or on the boundary of) the polygon.
fn line_with_polygon(l: &LineString, poly: &Polygon) -> GeometryCollection {
    let mut pieces: Vec<Geometry> = Vec::new();
    for (a, b) in l.segments() {
        // Collect the parametric cut positions along [a, b].
        let mut cuts = vec![0.0f64, 1.0];
        for (c, d) in poly.all_segments() {
            match segment_intersection(&a, &b, &c, &d) {
                SegmentIntersection::Point(p) => {
                    if let Some(t) = param_on_segment(&a, &b, &p) {
                        cuts.push(t);
                    }
                }
                SegmentIntersection::Overlap(s, e) => {
                    if let Some(t) = param_on_segment(&a, &b, &s) {
                        cuts.push(t);
                    }
                    if let Some(t) = param_on_segment(&a, &b, &e) {
                        cuts.push(t);
                    }
                }
                SegmentIntersection::None => {}
            }
        }
        cuts.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
        for w in cuts.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 < 1e-12 {
                continue;
            }
            let mid_t = (t0 + t1) / 2.0;
            let mid = lerp(&a, &b, mid_t);
            if poly.contains_coord(&mid) {
                let start = lerp(&a, &b, t0);
                let end = lerp(&a, &b, t1);
                if let Ok(sub) = LineString::new(vec![start, end]) {
                    pieces.push(Geometry::Line(sub));
                }
            }
        }
    }
    GeometryCollection::new(merge_adjacent_lines(pieces))
}

fn polygon_with(poly: &Polygon, other: &Geometry) -> GeometryCollection {
    match other {
        Geometry::Point(p) => {
            if poly.contains_coord(&p.coord()) {
                GeometryCollection::new(vec![Geometry::Point(*p)])
            } else {
                GeometryCollection::empty()
            }
        }
        Geometry::Line(l) => line_with_polygon(l, poly),
        Geometry::Polygon(other_poly) => {
            // Approximate: the exterior boundary of `poly` clipped to the
            // other polygon, plus the other way around. Adequate for
            // predicate-style consumption (emptiness / distance checks).
            let boundary = LineString::new(poly.exterior().to_vec())
                .expect("polygon exterior has >= 4 coords");
            let mut pieces: Vec<Geometry> = line_with_polygon(&boundary, other_poly)
                .into_iter()
                .collect();
            let other_boundary = LineString::new(other_poly.exterior().to_vec())
                .expect("polygon exterior has >= 4 coords");
            pieces.extend(line_with_polygon(&other_boundary, poly));
            GeometryCollection::new(pieces)
        }
        Geometry::Collection(c) => c
            .iter()
            .flat_map(|g| polygon_with(poly, g).into_iter())
            .collect(),
    }
}

fn lerp(a: &crate::coord::Coord, b: &crate::coord::Coord, t: f64) -> crate::coord::Coord {
    crate::coord::Coord::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
}

fn param_on_segment(
    a: &crate::coord::Coord,
    b: &crate::coord::Coord,
    p: &crate::coord::Coord,
) -> Option<f64> {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 <= f64::EPSILON {
        return None;
    }
    let t = (*p - *a).dot(&ab) / len2;
    if (-1e-9..=1.0 + 1e-9).contains(&t) {
        Some(t.clamp(0.0, 1.0))
    } else {
        None
    }
}

/// Merges consecutive collinear line pieces that share endpoints; keeps the
/// result simple for display and comparison.
fn merge_adjacent_lines(pieces: Vec<Geometry>) -> Vec<Geometry> {
    let mut merged: Vec<Geometry> = Vec::with_capacity(pieces.len());
    for piece in pieces {
        let Some(last) = merged.last() else {
            merged.push(piece);
            continue;
        };
        let joined = match (last.as_line(), piece.as_line()) {
            (Some(a), Some(b)) => {
                let a_end = *a.coords().last().expect("non-empty");
                let b_start = b.coords()[0];
                if a_end.approx_eq(&b_start) {
                    let mut coords = a.coords().to_vec();
                    coords.extend_from_slice(&b.coords()[1..]);
                    LineString::new(coords).ok().map(Geometry::Line)
                } else {
                    None
                }
            }
            _ => None,
        };
        match joined {
            Some(j) => {
                merged.pop();
                merged.push(j);
            }
            None => merged.push(piece),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::GeometricType;

    fn pt(x: f64, y: f64) -> Geometry {
        Point::new(x, y).into()
    }

    fn line(coords: &[(f64, f64)]) -> Geometry {
        LineString::from_tuples(coords).unwrap().into()
    }

    fn square(x0: f64, y0: f64, size: f64) -> Geometry {
        Polygon::from_tuples(&[
            (x0, y0),
            (x0 + size, y0),
            (x0 + size, y0 + size),
            (x0, y0 + size),
        ])
        .unwrap()
        .into()
    }

    #[test]
    fn result_is_always_collection() {
        let r = intersection(&pt(0.0, 0.0), &pt(1.0, 1.0));
        assert!(r.is_empty());
        let g: Geometry = r.into();
        assert_eq!(g.geometric_type(), GeometricType::Collection);
    }

    #[test]
    fn point_intersect_line_returns_points() {
        // Paper: "POINT intersecting LINE type returns a COLLECTION of points".
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let r = intersection(&pt(5.0, 0.0), &l);
        assert_eq!(r.len(), 1);
        assert_eq!(r.geometries()[0].geometric_type(), GeometricType::Point);
        // Point off the line gives an empty collection.
        assert!(intersection(&pt(5.0, 1.0), &l).is_empty());
    }

    #[test]
    fn line_intersect_point_returns_sublines() {
        // Paper: "if we intersect LINE type with POINT the operator returns
        // a COLLECTION type of sublines".
        let l = line(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        let r = intersection(&l, &pt(5.0, 0.0));
        assert!(!r.is_empty());
        assert!(r.iter().all(|g| g.geometric_type() == GeometricType::Line));
        // The point lies at the shared vertex of two segments → two sublines.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn order_sensitivity_matches_paper() {
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let p = pt(5.0, 0.0);
        let point_first = intersection(&p, &l);
        let line_first = intersection(&l, &p);
        assert_eq!(
            point_first.geometries()[0].geometric_type(),
            GeometricType::Point
        );
        assert_eq!(
            line_first.geometries()[0].geometric_type(),
            GeometricType::Line
        );
    }

    #[test]
    fn crossing_lines_intersect_at_point() {
        let a = line(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = line(&[(0.0, 10.0), (10.0, 0.0)]);
        let r = intersection(&a, &b);
        assert_eq!(r.len(), 1);
        let p = r.geometries()[0].as_point().unwrap();
        assert!((p.x() - 5.0).abs() < 1e-9);
        assert!((p.y() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_lines_overlap_as_line() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = line(&[(4.0, 0.0), (20.0, 0.0)]);
        let r = intersection(&a, &b);
        assert_eq!(r.len(), 1);
        let seg = r.geometries()[0].as_line().unwrap();
        assert!((seg.length() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn line_clipped_by_polygon() {
        let sq = square(0.0, 0.0, 10.0);
        let l = line(&[(-5.0, 5.0), (15.0, 5.0)]);
        let r = intersection(&l, &sq);
        assert_eq!(r.len(), 1);
        let clipped = r.geometries()[0].as_line().unwrap();
        assert!((clipped.length() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn line_outside_polygon_is_empty() {
        let sq = square(0.0, 0.0, 10.0);
        let l = line(&[(20.0, 20.0), (30.0, 20.0)]);
        assert!(intersection(&l, &sq).is_empty());
    }

    #[test]
    fn polygon_with_point() {
        let sq = square(0.0, 0.0, 10.0);
        let r = intersection(&sq, &pt(5.0, 5.0));
        assert_eq!(r.len(), 1);
        assert!(intersection(&sq, &pt(50.0, 5.0)).is_empty());
    }

    #[test]
    fn collections_distribute() {
        let c: Geometry = GeometryCollection::new(vec![pt(5.0, 0.0), pt(50.0, 50.0)]).into();
        let l = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let r = intersection(&c, &l);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn paper_example_53_nested_intersection() {
        // Example 5.3 uses Intersection(Intersection(t, c), a): a train
        // line, a city point and an airport point. With the city and the
        // airport on the train line, the inner intersection yields sublines
        // containing the city; intersecting those with the airport point
        // yields the subline(s) containing the airport, whose length is the
        // "corresponding segment" whose distance the rule thresholds.
        let train = line(&[(0.0, 0.0), (30.0, 0.0), (60.0, 0.0)]);
        let city = pt(30.0, 0.0);
        let airport = pt(60.0, 0.0);
        let inner: Geometry = intersection(&train, &city).into();
        let outer = intersection(&inner, &airport);
        assert!(!outer.is_empty());
        // The surviving subline runs from the city to the airport: 30 km.
        let total_len: f64 = outer
            .iter()
            .filter_map(Geometry::as_line)
            .map(LineString::length)
            .sum();
        assert!((total_len - 30.0).abs() < 1e-9);
    }
}
