//! Planar coordinates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Relative/absolute tolerance used for approximate coordinate comparison.
pub const EPSILON: f64 = 1e-9;

/// A planar coordinate pair.
///
/// Coordinates are interpreted as positions on a plane; the unit is defined
/// by the data set (the synthetic workloads in this repository use
/// kilometres so that the paper's "5 km" style thresholds read naturally).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Coord {
    /// Horizontal component (x / longitude-like axis).
    pub x: f64,
    /// Vertical component (y / latitude-like axis).
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate from its two components.
    pub fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Returns `true` if both components are finite numbers.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to another coordinate.
    pub fn distance(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    pub fn distance_squared(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// 2D cross product of the vectors `self` and `other` (z component of
    /// the 3D cross product).
    pub fn cross(&self, other: &Coord) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Dot product of the vectors `self` and `other`.
    pub fn dot(&self, other: &Coord) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Approximate equality under [`EPSILON`] (absolute tolerance).
    pub fn approx_eq(&self, other: &Coord) -> bool {
        (self.x - other.x).abs() <= EPSILON && (self.y - other.y).abs() <= EPSILON
    }

    /// Lexicographic (x, then y) total ordering used by hull and sweep
    /// algorithms. NaN components compare as equal to themselves so the
    /// ordering stays total for finite inputs.
    pub fn lex_cmp(&self, other: &Coord) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

impl From<(f64, f64)> for Coord {
    fn from((x, y): (f64, f64)) -> Self {
        Coord::new(x, y)
    }
}

impl From<Coord> for (f64, f64) {
    fn from(c: Coord) -> Self {
        (c.x, c.y)
    }
}

impl Add for Coord {
    type Output = Coord;
    fn add(self, rhs: Coord) -> Coord {
        Coord::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Coord {
    type Output = Coord;
    fn sub(self, rhs: Coord) -> Coord {
        Coord::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Coord {
    type Output = Coord;
    fn mul(self, rhs: f64) -> Coord {
        Coord::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.x, self.y)
    }
}

/// Orientation of an ordered coordinate triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The triple turns counter-clockwise.
    CounterClockwise,
    /// The triple turns clockwise.
    Clockwise,
    /// The three coordinates are collinear.
    Collinear,
}

/// Computes the orientation of the ordered triple `(a, b, c)`.
pub fn orientation(a: &Coord, b: &Coord, c: &Coord) -> Orientation {
    let v = (*b - *a).cross(&(*c - *a));
    if v > EPSILON {
        Orientation::CounterClockwise
    } else if v < -EPSILON {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Coord::new(-2.5, 7.0);
        let b = Coord::new(3.25, -1.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn cross_and_dot() {
        let a = Coord::new(1.0, 0.0);
        let b = Coord::new(0.0, 1.0);
        assert_eq!(a.cross(&b), 1.0);
        assert_eq!(b.cross(&a), -1.0);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.dot(&a), 1.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Coord::new(1.0, 2.0);
        let b = Coord::new(1.0 + 1e-12, 2.0 - 1e-12);
        assert!(a.approx_eq(&b));
        let c = Coord::new(1.0 + 1e-3, 2.0);
        assert!(!a.approx_eq(&c));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Coord::new(1.0, 2.0);
        let b = Coord::new(3.0, 5.0);
        assert_eq!(a + b, Coord::new(4.0, 7.0));
        assert_eq!(b - a, Coord::new(2.0, 3.0));
        assert_eq!(a * 2.0, Coord::new(2.0, 4.0));
    }

    #[test]
    fn orientation_cases() {
        let o = Coord::new(0.0, 0.0);
        let x = Coord::new(1.0, 0.0);
        let up = Coord::new(1.0, 1.0);
        let down = Coord::new(1.0, -1.0);
        let far = Coord::new(2.0, 0.0);
        assert_eq!(orientation(&o, &x, &up), Orientation::CounterClockwise);
        assert_eq!(orientation(&o, &x, &down), Orientation::Clockwise);
        assert_eq!(orientation(&o, &x, &far), Orientation::Collinear);
    }

    #[test]
    fn conversions() {
        let c: Coord = (1.5, -2.5).into();
        assert_eq!(c, Coord::new(1.5, -2.5));
        let t: (f64, f64) = c.into();
        assert_eq!(t, (1.5, -2.5));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering;
        let a = Coord::new(0.0, 5.0);
        let b = Coord::new(1.0, 0.0);
        let c = Coord::new(0.0, 6.0);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(a.lex_cmp(&c), Ordering::Less);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_format() {
        assert_eq!(Coord::new(1.5, 2.0).to_string(), "1.5 2");
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Coord::new(1.0, 2.0).is_finite());
        assert!(!Coord::new(f64::NAN, 2.0).is_finite());
        assert!(!Coord::new(1.0, f64::INFINITY).is_finite());
    }
}
