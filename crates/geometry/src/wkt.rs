//! Well-Known Text (WKT) parsing and serialisation.
//!
//! The OGC/ISO standards cited by the paper define WKT as the textual
//! interchange format for geometries; the data generator and the examples
//! use it to describe external layers.

use crate::collection::GeometryCollection;
use crate::coord::Coord;
use crate::error::GeometryError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;

/// Serialises a geometry to WKT. The `Display` implementations already emit
/// WKT, so this simply delegates; it exists to make intent explicit at call
/// sites.
pub fn to_wkt(g: &Geometry) -> String {
    g.to_string()
}

/// Parses a WKT string into a [`Geometry`].
///
/// Supported tags: `POINT`, `LINESTRING`, `POLYGON`,
/// `GEOMETRYCOLLECTION` (and `EMPTY` collections).
pub fn parse_wkt(input: &str) -> Result<Geometry, GeometryError> {
    let mut parser = WktParser::new(input);
    let g = parser.parse_geometry()?;
    parser.skip_whitespace();
    if !parser.at_end() {
        return Err(parser.error("trailing characters after geometry"));
    }
    Ok(g)
}

struct WktParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WktParser<'a> {
    fn new(input: &'a str) -> Self {
        WktParser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> GeometryError {
        GeometryError::WktParse {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), GeometryError> {
        self.skip_whitespace();
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", ch as char)))
        }
    }

    fn parse_keyword(&mut self) -> String {
        self.skip_whitespace();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    fn parse_number(&mut self) -> Result<f64, GeometryError> {
        self.skip_whitespace();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || b == b'-' || b == b'+' || b == b'.' || b == b'e' || b == b'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_coord(&mut self) -> Result<Coord, GeometryError> {
        let x = self.parse_number()?;
        let y = self.parse_number()?;
        Ok(Coord::new(x, y))
    }

    fn parse_coord_list(&mut self) -> Result<Vec<Coord>, GeometryError> {
        self.expect(b'(')?;
        let mut coords = vec![self.parse_coord()?];
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    coords.push(self.parse_coord()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or ')'")),
            }
        }
        Ok(coords)
    }

    fn parse_geometry(&mut self) -> Result<Geometry, GeometryError> {
        let keyword = self.parse_keyword();
        match keyword.as_str() {
            "POINT" => {
                self.expect(b'(')?;
                let c = self.parse_coord()?;
                self.expect(b')')?;
                Ok(Geometry::Point(Point::from_coord(c)))
            }
            "LINESTRING" => {
                let coords = self.parse_coord_list()?;
                Ok(Geometry::Line(LineString::new(coords)?))
            }
            "POLYGON" => {
                self.expect(b'(')?;
                let exterior = self.parse_coord_list()?;
                let mut interiors = Vec::new();
                loop {
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            interiors.push(self.parse_coord_list()?);
                        }
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected ',' or ')'")),
                    }
                }
                Ok(Geometry::Polygon(Polygon::new(exterior, interiors)?))
            }
            "GEOMETRYCOLLECTION" => {
                self.skip_whitespace();
                // EMPTY collections.
                let rest = &self.input[self.pos..];
                if rest.to_ascii_uppercase().starts_with("EMPTY") {
                    self.pos += "EMPTY".len();
                    return Ok(Geometry::Collection(GeometryCollection::empty()));
                }
                self.expect(b'(')?;
                let mut members = vec![self.parse_geometry()?];
                loop {
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            members.push(self.parse_geometry()?);
                        }
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected ',' or ')'")),
                    }
                }
                Ok(Geometry::Collection(GeometryCollection::new(members)))
            }
            "" => Err(self.error("expected a geometry tag")),
            other => Err(self.error(&format!("unknown geometry tag '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_point() {
        let g = parse_wkt("POINT (1.5 -2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.5, -2.0)));
    }

    #[test]
    fn parse_point_lowercase_and_whitespace() {
        let g = parse_wkt("  point ( 3   4 ) ").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(3.0, 4.0)));
    }

    #[test]
    fn parse_linestring() {
        let g = parse_wkt("LINESTRING (0 0, 1 1, 2 0)").unwrap();
        let l = g.as_line().unwrap();
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn parse_polygon_with_hole() {
        let g = parse_wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))")
            .unwrap();
        let p = g.as_polygon().unwrap();
        assert_eq!(p.num_interiors(), 1);
        assert!((p.area() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn parse_collection_and_empty() {
        let g = parse_wkt("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))").unwrap();
        assert_eq!(g.as_collection().unwrap().len(), 2);
        let e = parse_wkt("GEOMETRYCOLLECTION EMPTY").unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn parse_scientific_notation() {
        let g = parse_wkt("POINT (1e3 -2.5E-2)").unwrap();
        let p = g.as_point().unwrap();
        assert_eq!(p.x(), 1000.0);
        assert_eq!(p.y(), -0.025);
    }

    #[test]
    fn parse_errors_report_offsets() {
        let err = parse_wkt("POINT 1 2").unwrap_err();
        assert!(matches!(err, GeometryError::WktParse { .. }));
        assert!(parse_wkt("CIRCLE (0 0)").is_err());
        assert!(parse_wkt("").is_err());
        assert!(parse_wkt("POINT (1 2) garbage").is_err());
        assert!(parse_wkt("LINESTRING (0 0)").is_err()); // too few coords
    }

    #[test]
    fn round_trip_all_types() {
        let inputs = [
            "POINT (1 2)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
            "GEOMETRYCOLLECTION (POINT (1 2), POINT (3 4))",
            "GEOMETRYCOLLECTION EMPTY",
        ];
        for input in inputs {
            let g = parse_wkt(input).unwrap();
            let emitted = to_wkt(&g);
            let reparsed = parse_wkt(&emitted).unwrap();
            assert_eq!(g, reparsed, "round trip failed for {input}");
        }
    }
}
