//! The COLLECTION geometric primitive.

use crate::bbox::BoundingBox;
use crate::geometry::Geometry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A heterogeneous collection of geometries (the paper's `COLLECTION`
/// geometric type).
///
/// The paper's `Intersection` operator produces collections — e.g.
/// intersecting a LINE with a POINT yields "a COLLECTION type of points".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GeometryCollection {
    geometries: Vec<Geometry>,
}

impl GeometryCollection {
    /// Creates an empty collection.
    pub fn empty() -> Self {
        GeometryCollection {
            geometries: Vec::new(),
        }
    }

    /// Creates a collection from a list of geometries.
    pub fn new(geometries: Vec<Geometry>) -> Self {
        GeometryCollection { geometries }
    }

    /// The contained geometries.
    pub fn geometries(&self) -> &[Geometry] {
        &self.geometries
    }

    /// Number of contained geometries.
    pub fn len(&self) -> usize {
        self.geometries.len()
    }

    /// Returns `true` when the collection contains no geometries.
    pub fn is_empty(&self) -> bool {
        self.geometries.is_empty()
    }

    /// Appends a geometry to the collection.
    pub fn push(&mut self, g: Geometry) {
        self.geometries.push(g);
    }

    /// Bounding box covering every member, or `None` for an empty
    /// collection (or a collection of only empty members).
    pub fn bbox(&self) -> Option<BoundingBox> {
        let mut iter = self.geometries.iter().filter_map(Geometry::bbox);
        let first = iter.next()?;
        Some(iter.fold(first, |acc, b| acc.union(&b)))
    }

    /// Iterates over the contained geometries.
    pub fn iter(&self) -> std::slice::Iter<'_, Geometry> {
        self.geometries.iter()
    }
}

impl IntoIterator for GeometryCollection {
    type Item = Geometry;
    type IntoIter = std::vec::IntoIter<Geometry>;
    fn into_iter(self) -> Self::IntoIter {
        self.geometries.into_iter()
    }
}

impl<'a> IntoIterator for &'a GeometryCollection {
    type Item = &'a Geometry;
    type IntoIter = std::slice::Iter<'a, Geometry>;
    fn into_iter(self) -> Self::IntoIter {
        self.geometries.iter()
    }
}

impl FromIterator<Geometry> for GeometryCollection {
    fn from_iter<T: IntoIterator<Item = Geometry>>(iter: T) -> Self {
        GeometryCollection {
            geometries: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for GeometryCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "GEOMETRYCOLLECTION EMPTY");
        }
        write!(f, "GEOMETRYCOLLECTION (")?;
        for (i, g) in self.geometries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linestring::LineString;
    use crate::point::Point;

    #[test]
    fn empty_collection() {
        let c = GeometryCollection::empty();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.bbox().is_none());
        assert_eq!(c.to_string(), "GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn bbox_covers_members() {
        let mut c = GeometryCollection::empty();
        c.push(Point::new(0.0, 0.0).into());
        c.push(Point::new(5.0, 10.0).into());
        let b = c.bbox().unwrap();
        assert_eq!(b, BoundingBox::new(0.0, 0.0, 5.0, 10.0));
    }

    #[test]
    fn collect_from_iterator() {
        let c: GeometryCollection = (0..3)
            .map(|i| Geometry::from(Point::new(i as f64, 0.0)))
            .collect();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn iteration() {
        let c = GeometryCollection::new(vec![
            Point::new(1.0, 1.0).into(),
            LineString::from_tuples(&[(0.0, 0.0), (1.0, 1.0)])
                .unwrap()
                .into(),
        ]);
        assert_eq!(c.iter().count(), 2);
        assert_eq!((&c).into_iter().count(), 2);
        assert_eq!(c.clone().into_iter().count(), 2);
    }

    #[test]
    fn display_nested() {
        let c = GeometryCollection::new(vec![Point::new(1.0, 2.0).into()]);
        assert_eq!(c.to_string(), "GEOMETRYCOLLECTION (POINT (1 2))");
    }
}
