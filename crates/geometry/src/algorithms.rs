//! Low-level geometric algorithms shared by predicates and operators.

use crate::coord::{orientation, Coord, Orientation, EPSILON};

/// Result of intersecting two line segments.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentIntersection {
    /// The segments do not share any point.
    None,
    /// The segments share exactly one point.
    Point(Coord),
    /// The segments overlap along a (possibly degenerate) sub-segment.
    Overlap(Coord, Coord),
}

/// Returns `true` if coordinate `p` lies on the closed segment `a`-`b`
/// (within an absolute distance of [`EPSILON`]).
pub fn point_on_segment(p: &Coord, a: &Coord, b: &Coord) -> bool {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 < EPSILON * EPSILON {
        return p.approx_eq(a);
    }
    // The raw cross product scales with |ab| · |ap|, so an absolute-epsilon
    // orientation test misclassifies points that are a true 1e-10 away from
    // a long segment. Normalise by |ab| to compare a real distance.
    if ab.cross(&(*p - *a)).abs() / len2.sqrt() > EPSILON {
        return false;
    }
    p.x >= a.x.min(b.x) - EPSILON
        && p.x <= a.x.max(b.x) + EPSILON
        && p.y >= a.y.min(b.y) - EPSILON
        && p.y <= a.y.max(b.y) + EPSILON
}

/// Computes the intersection of the closed segments `p1`-`p2` and `q1`-`q2`.
pub fn segment_intersection(p1: &Coord, p2: &Coord, q1: &Coord, q2: &Coord) -> SegmentIntersection {
    let r = *p2 - *p1;
    let s = *q2 - *q1;
    let denom = r.cross(&s);
    let qp = *q1 - *p1;

    if denom.abs() < EPSILON {
        // Parallel. Collinear overlap?
        if qp.cross(&r).abs() > EPSILON {
            return SegmentIntersection::None;
        }
        // Collinear: project onto r (or s when r is degenerate).
        let r_len2 = r.dot(&r);
        if r_len2 < EPSILON * EPSILON {
            // p1 == p2 (degenerate segment).
            if point_on_segment(p1, q1, q2) {
                return SegmentIntersection::Point(*p1);
            }
            return SegmentIntersection::None;
        }
        let t0 = qp.dot(&r) / r_len2;
        let t1 = t0 + s.dot(&r) / r_len2;
        let (t_min, t_max) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let lo = t_min.max(0.0);
        let hi = t_max.min(1.0);
        if lo > hi + EPSILON {
            return SegmentIntersection::None;
        }
        let start = *p1 + r * lo;
        let end = *p1 + r * hi;
        if start.approx_eq(&end) {
            return SegmentIntersection::Point(start);
        }
        return SegmentIntersection::Overlap(start, end);
    }

    let t = qp.cross(&s) / denom;
    let u = qp.cross(&r) / denom;
    if (-EPSILON..=1.0 + EPSILON).contains(&t) && (-EPSILON..=1.0 + EPSILON).contains(&u) {
        SegmentIntersection::Point(*p1 + r * t.clamp(0.0, 1.0))
    } else {
        SegmentIntersection::None
    }
}

/// Returns `true` if the two closed segments share at least one point.
pub fn segments_intersect(p1: &Coord, p2: &Coord, q1: &Coord, q2: &Coord) -> bool {
    !matches!(
        segment_intersection(p1, p2, q1, q2),
        SegmentIntersection::None
    )
}

/// Minimum distance from coordinate `p` to the closed segment `a`-`b`.
pub fn point_segment_distance(p: &Coord, a: &Coord, b: &Coord) -> f64 {
    let ab = *b - *a;
    let len2 = ab.dot(&ab);
    if len2 < EPSILON * EPSILON {
        return p.distance(a);
    }
    let t = ((*p - *a).dot(&ab) / len2).clamp(0.0, 1.0);
    let closest = *a + ab * t;
    p.distance(&closest)
}

/// Minimum distance between the closed segments `p1`-`p2` and `q1`-`q2`.
pub fn segment_segment_distance(p1: &Coord, p2: &Coord, q1: &Coord, q2: &Coord) -> f64 {
    if segments_intersect(p1, p2, q1, q2) {
        return 0.0;
    }
    point_segment_distance(p1, q1, q2)
        .min(point_segment_distance(p2, q1, q2))
        .min(point_segment_distance(q1, p1, p2))
        .min(point_segment_distance(q2, p1, p2))
}

/// Computes the convex hull of a coordinate set using Andrew's monotone
/// chain. Returns the hull in counter-clockwise order without repeating the
/// first coordinate. Degenerate inputs (fewer than three distinct
/// coordinates) return the de-duplicated input.
pub fn convex_hull(coords: &[Coord]) -> Vec<Coord> {
    let mut pts: Vec<Coord> = coords.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup_by(|a, b| a.approx_eq(b));
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Coord> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orientation(&hull[hull.len() - 2], &hull[hull.len() - 1], &p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orientation(&hull[hull.len() - 2], &hull[hull.len() - 1], &p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_on_segment_cases() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(10.0, 0.0);
        assert!(point_on_segment(&Coord::new(5.0, 0.0), &a, &b));
        assert!(point_on_segment(&a, &a, &b));
        assert!(point_on_segment(&b, &a, &b));
        assert!(!point_on_segment(&Coord::new(11.0, 0.0), &a, &b));
        assert!(!point_on_segment(&Coord::new(5.0, 0.1), &a, &b));
    }

    #[test]
    fn crossing_segments_intersect_at_point() {
        let i = segment_intersection(
            &Coord::new(0.0, 0.0),
            &Coord::new(2.0, 2.0),
            &Coord::new(0.0, 2.0),
            &Coord::new(2.0, 0.0),
        );
        assert_eq!(i, SegmentIntersection::Point(Coord::new(1.0, 1.0)));
    }

    #[test]
    fn touching_endpoints_intersect() {
        let i = segment_intersection(
            &Coord::new(0.0, 0.0),
            &Coord::new(1.0, 1.0),
            &Coord::new(1.0, 1.0),
            &Coord::new(2.0, 0.0),
        );
        assert_eq!(i, SegmentIntersection::Point(Coord::new(1.0, 1.0)));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let i = segment_intersection(
            &Coord::new(0.0, 0.0),
            &Coord::new(1.0, 0.0),
            &Coord::new(0.0, 1.0),
            &Coord::new(1.0, 1.0),
        );
        assert_eq!(i, SegmentIntersection::None);
    }

    #[test]
    fn collinear_overlapping_segments() {
        let i = segment_intersection(
            &Coord::new(0.0, 0.0),
            &Coord::new(4.0, 0.0),
            &Coord::new(2.0, 0.0),
            &Coord::new(6.0, 0.0),
        );
        assert_eq!(
            i,
            SegmentIntersection::Overlap(Coord::new(2.0, 0.0), Coord::new(4.0, 0.0))
        );
    }

    #[test]
    fn collinear_disjoint_segments() {
        let i = segment_intersection(
            &Coord::new(0.0, 0.0),
            &Coord::new(1.0, 0.0),
            &Coord::new(2.0, 0.0),
            &Coord::new(3.0, 0.0),
        );
        assert_eq!(i, SegmentIntersection::None);
    }

    #[test]
    fn collinear_touching_at_single_point() {
        let i = segment_intersection(
            &Coord::new(0.0, 0.0),
            &Coord::new(1.0, 0.0),
            &Coord::new(1.0, 0.0),
            &Coord::new(3.0, 0.0),
        );
        assert_eq!(i, SegmentIntersection::Point(Coord::new(1.0, 0.0)));
    }

    #[test]
    fn degenerate_segment_as_point() {
        let p = Coord::new(1.0, 0.0);
        let i = segment_intersection(&p, &p, &Coord::new(0.0, 0.0), &Coord::new(2.0, 0.0));
        assert_eq!(i, SegmentIntersection::Point(p));
        let off = Coord::new(1.0, 1.0);
        let j = segment_intersection(&off, &off, &Coord::new(0.0, 0.0), &Coord::new(2.0, 0.0));
        assert_eq!(j, SegmentIntersection::None);
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(10.0, 0.0);
        assert_eq!(point_segment_distance(&Coord::new(5.0, 3.0), &a, &b), 3.0);
        assert_eq!(point_segment_distance(&Coord::new(-3.0, 4.0), &a, &b), 5.0);
        assert_eq!(point_segment_distance(&Coord::new(5.0, 0.0), &a, &b), 0.0);
        // Degenerate segment.
        assert_eq!(point_segment_distance(&Coord::new(3.0, 4.0), &a, &a), 5.0);
    }

    #[test]
    fn segment_segment_distance_cases() {
        let d = segment_segment_distance(
            &Coord::new(0.0, 0.0),
            &Coord::new(1.0, 0.0),
            &Coord::new(0.0, 2.0),
            &Coord::new(1.0, 2.0),
        );
        assert_eq!(d, 2.0);
        // Intersecting segments have zero distance.
        let d0 = segment_segment_distance(
            &Coord::new(0.0, 0.0),
            &Coord::new(2.0, 2.0),
            &Coord::new(0.0, 2.0),
            &Coord::new(2.0, 0.0),
        );
        assert_eq!(d0, 0.0);
    }

    #[test]
    fn convex_hull_square_with_interior_points() {
        let pts = vec![
            Coord::new(0.0, 0.0),
            Coord::new(4.0, 0.0),
            Coord::new(4.0, 4.0),
            Coord::new(0.0, 4.0),
            Coord::new(2.0, 2.0),
            Coord::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in [
            Coord::new(0.0, 0.0),
            Coord::new(4.0, 0.0),
            Coord::new(4.0, 4.0),
            Coord::new(0.0, 4.0),
        ] {
            assert!(hull.iter().any(|c| c.approx_eq(&corner)));
        }
    }

    #[test]
    fn convex_hull_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Coord::new(1.0, 1.0)]).len(), 1);
        let collinear = vec![
            Coord::new(0.0, 0.0),
            Coord::new(1.0, 1.0),
            Coord::new(2.0, 2.0),
        ];
        let hull = convex_hull(&collinear);
        assert!(hull.len() <= 3 && hull.len() >= 2);
    }
}
