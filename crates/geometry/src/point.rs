//! The POINT geometric primitive.

use crate::bbox::BoundingBox;
use crate::coord::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single position on the plane (the paper's `POINT` geometric type).
///
/// Points describe store buildings, airports, customer addresses and the
/// decision maker's location context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point(pub Coord);

impl Point {
    /// Creates a point from its x and y components.
    pub fn new(x: f64, y: f64) -> Self {
        Point(Coord::new(x, y))
    }

    /// Creates a point from a coordinate.
    pub fn from_coord(c: Coord) -> Self {
        Point(c)
    }

    /// The x component.
    pub fn x(&self) -> f64 {
        self.0.x
    }

    /// The y component.
    pub fn y(&self) -> f64 {
        self.0.y
    }

    /// The underlying coordinate.
    pub fn coord(&self) -> Coord {
        self.0
    }

    /// The (degenerate) bounding box of the point.
    pub fn bbox(&self) -> BoundingBox {
        BoundingBox::from_coord(self.0)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        self.0.distance(&other.0)
    }

    /// Returns a point translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x() + dx, self.y() + dy)
    }
}

impl From<Coord> for Point {
    fn from(c: Coord) -> Self {
        Point(c)
    }
}

impl From<(f64, f64)> for Point {
    fn from(t: (f64, f64)) -> Self {
        Point(t.into())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POINT ({} {})", self.x(), self.y())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Point::new(3.0, -2.0);
        assert_eq!(p.x(), 3.0);
        assert_eq!(p.y(), -2.0);
        assert_eq!(p.coord(), Coord::new(3.0, -2.0));
    }

    #[test]
    fn bbox_is_degenerate() {
        let p = Point::new(1.0, 2.0);
        let b = p.bbox();
        assert_eq!(b.min_x, 1.0);
        assert_eq!(b.max_x, 1.0);
        assert_eq!(b.area(), 0.0);
    }

    #[test]
    fn distance_between_points() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 8.0);
        assert_eq!(a.distance(&b), 10.0);
    }

    #[test]
    fn translation() {
        let p = Point::new(1.0, 1.0).translated(2.0, -3.0);
        assert_eq!(p, Point::new(3.0, -2.0));
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (2.0, 4.0).into();
        assert_eq!(p, Point::new(2.0, 4.0));
        assert_eq!(p.to_string(), "POINT (2 4)");
        let q: Point = Coord::new(1.0, 1.0).into();
        assert_eq!(q, Point::new(1.0, 1.0));
    }
}
