//! Bounded ring-buffer journal of slow queries.
//!
//! The journal keeps the most recent `capacity` queries whose total
//! latency met the configurable threshold, as structured records (query
//! shape, session class, snapshot generation, per-stage micros, worker
//! count). Appends take a mutex, but only queries that are *already
//! slow* ever reach it, so the hot path is untouched: fast queries pay
//! one relaxed atomic load for the threshold comparison.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default slow-query threshold: 10 ms.
pub const DEFAULT_SLOW_QUERY_MICROS: u64 = 10_000;

/// Default journal capacity (records retained).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 128;

/// [`SlowQueryRecord::outcome`] of a query that ran to completion.
pub const OUTCOME_COMPLETED: &str = "completed";

/// [`SlowQueryRecord::outcome`] of a query cancelled by its deadline;
/// the stage fields past the terminal stage are zero.
pub const OUTCOME_DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// [`SlowQueryRecord::outcome`] of a query whose execution panicked
/// (contained); the stage fields past the terminal stage are zero.
pub const OUTCOME_PANICKED: &str = "panicked";

/// One journaled slow query: what ran, where, and where the time went.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowQueryRecord {
    /// Compact description of the query shape, e.g.
    /// `"Sales group_by=[City] measures=2"` or `"batch:Sales×8"`.
    pub shape: String,
    /// Session-class name the query ran under.
    pub class: String,
    /// Cube snapshot generation the query executed against.
    pub generation: u64,
    /// Morsel workers used by the scan phase.
    pub workers: usize,
    /// Time spent resolving the query against the schema, in µs.
    pub resolve_micros: u64,
    /// Time spent in the parallel scan phase, in µs.
    pub scan_micros: u64,
    /// Time spent merging per-morsel partials, in µs.
    pub merge_micros: u64,
    /// Time spent materialising the result table, in µs.
    pub finalize_micros: u64,
    /// End-to-end time, in µs (what the threshold compares against).
    pub total_micros: u64,
    /// How the query ended: [`OUTCOME_COMPLETED`] for ordinary slow
    /// queries, [`OUTCOME_DEADLINE_EXCEEDED`] / [`OUTCOME_PANICKED`]
    /// for abnormal exits — those are journaled regardless of the
    /// threshold (they would otherwise vanish silently), with the zero
    /// stage fields marking where execution stopped.
    pub outcome: String,
}

/// Bounded ring buffer of [`SlowQueryRecord`]s with an atomically
/// adjustable threshold.
#[derive(Debug)]
pub struct SlowQueryJournal {
    threshold_micros: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryRecord>>,
}

impl Default for SlowQueryJournal {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_QUERY_MICROS, DEFAULT_JOURNAL_CAPACITY)
    }
}

impl SlowQueryJournal {
    /// Creates a journal retaining up to `capacity` records of queries
    /// slower than `threshold_micros`.
    pub fn new(threshold_micros: u64, capacity: usize) -> Self {
        Self {
            threshold_micros: AtomicU64::new(threshold_micros),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Current threshold in microseconds.
    #[inline]
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Adjusts the threshold; takes effect for subsequent queries.
    pub fn set_threshold_micros(&self, micros: u64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// True when `total_micros` meets the threshold — callers use this
    /// to skip building the record (shape string etc.) for fast queries.
    #[inline]
    pub fn is_slow(&self, total_micros: u64) -> bool {
        total_micros >= self.threshold_micros()
    }

    /// Appends a record, evicting the oldest when at capacity.
    pub fn record(&self, rec: SlowQueryRecord) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Returns the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQueryRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no slow queries have been journaled.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(shape: &str, total: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            shape: shape.to_string(),
            class: "default".to_string(),
            generation: 1,
            workers: 4,
            resolve_micros: 1,
            scan_micros: total / 2,
            merge_micros: total / 4,
            finalize_micros: total / 4,
            total_micros: total,
            outcome: OUTCOME_COMPLETED.to_string(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let j = SlowQueryJournal::new(0, 3);
        for i in 0..5 {
            j.record(rec(&format!("q{i}"), 100 + i));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].shape, "q2");
        assert_eq!(snap[2].shape, "q4");
    }

    #[test]
    fn threshold_is_adjustable() {
        let j = SlowQueryJournal::default();
        assert!(j.is_slow(DEFAULT_SLOW_QUERY_MICROS));
        assert!(!j.is_slow(DEFAULT_SLOW_QUERY_MICROS - 1));
        j.set_threshold_micros(5);
        assert!(j.is_slow(5));
        assert!(!j.is_slow(4));
    }
}
