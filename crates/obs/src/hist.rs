//! Fixed-bucket log₂-scale latency histograms with wait-free recording.
//!
//! A [`LatencyHistogram`] is an array of [`HISTOGRAM_BUCKETS`] atomic
//! counters over microsecond latencies plus a running sum. Bucket `0`
//! holds exact-zero samples; bucket `b > 0` covers the half-open power-
//! of-two range `[2^(b-1), 2^b)`. Recording is two relaxed `fetch_add`s
//! — no CAS loop, no lock — so it is wait-free and scales across
//! concurrent writers.
//!
//! Quantiles are estimated from a [`HistogramSnapshot`] by walking the
//! bucket counts to the requested rank and reporting the containing
//! bucket's **upper bound** (`2^b - 1`). Because a sample in bucket `b`
//! is at least `2^(b-1)`, the estimate satisfies
//! `exact <= estimate < 2 * exact` for every non-zero quantile — a
//! bound the property suite checks against a sorted-vector reference.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of log₂ buckets per histogram.
///
/// Bucket 31 covers `[2^30, u64::MAX]` microseconds — anything beyond
/// ~18 minutes saturates into the last bucket rather than wrapping.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Index of the log₂ bucket covering `micros`.
#[inline]
fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        let b = 64 - micros.leading_zeros() as usize;
        b.min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b`, the value a quantile estimate
/// reports for samples landing in that bucket.
#[inline]
fn bucket_upper_bound(b: usize) -> u64 {
    if b >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else if b == 0 {
        0
    } else {
        (1u64 << b) - 1
    }
}

/// A wait-free, mergeable log₂-bucketed latency histogram.
///
/// Shared by reference between any number of recording threads;
/// [`snapshot`](Self::snapshot) reads are racy-but-consistent-enough
/// (each bucket is read once, relaxed) which is the standard trade for
/// monitoring counters.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one latency sample. Two relaxed `fetch_add`s; wait-free.
    #[inline]
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total samples recorded so far (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Captures the current bucket counts as plain mergeable data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data capture of a [`LatencyHistogram`]: bucket counts, total
/// sample count and microsecond sum. Exactly mergeable across
/// histograms recorded independently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`HISTOGRAM_BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total samples (= sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded sample values in microseconds.
    pub sum_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (all buckets zero).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_micros: 0,
        }
    }

    /// Folds `other` into `self` bucket-by-bucket. Merging is exact:
    /// the merged snapshot equals the snapshot a single histogram would
    /// have produced had it received both sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in microseconds.
    ///
    /// Returns the upper bound of the bucket containing the sample of
    /// rank `ceil(q * count)`, so for non-zero samples the estimate is
    /// within a factor of two above the exact order statistic:
    /// `exact <= estimate < 2 * exact`. An empty snapshot reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean sample value in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_and_quantile_bounds() {
        let h = LatencyHistogram::new();
        for v in [3u64, 7, 7, 120, 900, 4096] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum_micros, 3 + 7 + 7 + 120 + 900 + 4096);
        // p50 rank = 3 → sample 7 → bucket [4,7] → upper bound 7.
        assert_eq!(s.quantile(0.5), 7);
        // p100 → 4096 → bucket [4096,8191] → 8191.
        let p100 = s.quantile(1.0);
        assert!((4096..2 * 4096).contains(&p100));
    }

    #[test]
    fn merge_matches_combined_stream() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 800, 12_000] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0);
    }
}
