//! Unified observability for the SDWP engine: a lock-free metrics
//! registry, span-style stage timing, fixed-bucket log₂ latency
//! histograms, a bounded slow-query journal and a Prometheus-style text
//! exposition.
//!
//! # Design
//!
//! The registry is built so that **recording on a hot path costs a couple
//! of relaxed atomic operations** and nothing else: a latency sample is
//! one `fetch_add` on a log₂ bucket plus one on the running sum
//! ([`LatencyHistogram::record`]), a counter bump is one `fetch_add`
//! ([`Counter::add`]). There are no locks anywhere on the recording path;
//! locks appear only at class registration, journal appends (which happen
//! at most once per *slow* query) and snapshot assembly.
//!
//! A **disabled** registry ([`MetricsRegistry::disabled`]) reduces every
//! instrumentation site to a single predictable branch: spans never call
//! `Instant::now`, histograms are never touched, the journal never
//! records. The B18 `metrics_overhead` bench holds this to ~0 cost.
//!
//! Latency samples are keyed two ways: by [`Stage`] (a fixed enum of the
//! engine's instrumented pipeline stages — query resolve/scan/merge/
//! finalize standalone and batched, ingest validate/apply/publish/
//! compact, rule condition/effect, session lifecycle) and by [`ClassId`]
//! (a small dense *session class* id, the tenant key a future
//! admission-control scheduler reads per-class p50/p99 quantiles from).
//!
//! Histogram buckets are powers of two of microseconds, so quantile
//! estimates carry a guaranteed bound: the estimate lies in the same
//! bucket as the true quantile, i.e. `exact <= estimate < 2 * exact`
//! (enforced against a sorted-vector reference by the property suite).
//! Snapshots are plain data and **mergeable** ([`HistogramSnapshot::merge`]),
//! so per-shard or per-process histograms can be aggregated exactly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;
pub mod journal;
pub mod registry;
pub mod snapshot;

pub use hist::{HistogramSnapshot, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use journal::{
    SlowQueryJournal, SlowQueryRecord, OUTCOME_COMPLETED, OUTCOME_DEADLINE_EXCEEDED,
    OUTCOME_PANICKED,
};
pub use registry::{ClassId, Counter, Gauge, MetricsRegistry, Stage, StageSpan, MAX_CLASSES};
pub use snapshot::{MetricsSnapshot, StageSnapshot};
