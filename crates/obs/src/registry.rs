//! The lock-free metrics registry: stages, session classes, counters,
//! gauges, and per-(stage, class) latency histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::hist::LatencyHistogram;
use crate::journal::SlowQueryJournal;
use crate::snapshot::{MetricsSnapshot, StageSnapshot};

/// Maximum number of session classes a registry tracks. Registration
/// beyond this falls back to class 0 (`"default"`).
pub const MAX_CLASSES: usize = 8;

/// An instrumented pipeline stage. Every latency histogram in the
/// registry is keyed by one of these plus a [`ClassId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Stage {
    // Standalone query pipeline.
    QueryResolve,
    QueryScan,
    QueryMerge,
    QueryFinalize,
    QueryTotal,
    // Shared-scan batch pipeline.
    BatchResolve,
    BatchScan,
    BatchMerge,
    BatchFinalize,
    BatchTotal,
    // Ingest pipeline.
    IngestValidate,
    IngestApply,
    IngestPublish,
    IngestCompact,
    // Rule firing.
    RuleCondition,
    RuleEffect,
    RuleFireInterpreted,
    // Session / cache layer.
    SessionStart,
    SessionEnd,
    CacheLookup,
    // Morsel-pool scheduler: time a helper task item spent queued
    // between submission and dispatch, keyed by tenant class.
    SchedulerWait,
}

impl Stage {
    /// Every stage, in exposition order.
    pub const ALL: [Stage; 21] = [
        Stage::QueryResolve,
        Stage::QueryScan,
        Stage::QueryMerge,
        Stage::QueryFinalize,
        Stage::QueryTotal,
        Stage::BatchResolve,
        Stage::BatchScan,
        Stage::BatchMerge,
        Stage::BatchFinalize,
        Stage::BatchTotal,
        Stage::IngestValidate,
        Stage::IngestApply,
        Stage::IngestPublish,
        Stage::IngestCompact,
        Stage::RuleCondition,
        Stage::RuleEffect,
        Stage::RuleFireInterpreted,
        Stage::SessionStart,
        Stage::SessionEnd,
        Stage::CacheLookup,
        Stage::SchedulerWait,
    ];

    /// Stable snake_case name used as the `stage` label in exposition.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueryResolve => "query_resolve",
            Stage::QueryScan => "query_scan",
            Stage::QueryMerge => "query_merge",
            Stage::QueryFinalize => "query_finalize",
            Stage::QueryTotal => "query_total",
            Stage::BatchResolve => "batch_resolve",
            Stage::BatchScan => "batch_scan",
            Stage::BatchMerge => "batch_merge",
            Stage::BatchFinalize => "batch_finalize",
            Stage::BatchTotal => "batch_total",
            Stage::IngestValidate => "ingest_validate",
            Stage::IngestApply => "ingest_apply",
            Stage::IngestPublish => "ingest_publish",
            Stage::IngestCompact => "ingest_compact",
            Stage::RuleCondition => "rule_condition",
            Stage::RuleEffect => "rule_effect",
            Stage::RuleFireInterpreted => "rule_fire_interpreted",
            Stage::SessionStart => "session_start",
            Stage::SessionEnd => "session_end",
            Stage::CacheLookup => "cache_lookup",
            Stage::SchedulerWait => "scheduler_wait",
        }
    }

    #[inline]
    fn index(self) -> usize {
        Self::ALL.iter().position(|s| *s == self).unwrap_or(0)
    }
}

const STAGE_COUNT: usize = Stage::ALL.len();

/// Dense session-class id — the per-tenant key latency histograms are
/// partitioned by. Class 0 is always `"default"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ClassId(pub u8);

impl ClassId {
    /// The default class every unclassified session records under.
    pub const DEFAULT: ClassId = ClassId(0);
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one. One relaxed `fetch_add`.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can move both ways (e.g. active
/// sessions, queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The process-wide metrics registry.
///
/// All `(stage, class)` histograms are pre-allocated at construction, so
/// [`record_micros`](Self::record_micros) is a bounds-checked array
/// index plus two relaxed atomic adds — no allocation, no locking, no
/// hashing. The only mutex guards the class-name list, touched solely
/// by [`register_class`](Self::register_class) and snapshot assembly.
///
/// A registry built with [`disabled`](Self::disabled) turns every
/// recording entry point into an early return on one `bool`, and
/// [`span`](Self::span) never reads the clock.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    /// `STAGE_COUNT * MAX_CLASSES` histograms, stage-major.
    hists: Box<[LatencyHistogram]>,
    classes: Mutex<Vec<String>>,
    journal: SlowQueryJournal,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an enabled registry with the default slow-query journal.
    pub fn new() -> Self {
        Self::build(true)
    }

    /// Creates a disabled registry: every recording call is a single
    /// branch, spans never read the clock, snapshots are empty.
    pub fn disabled() -> Self {
        Self::build(false)
    }

    fn build(enabled: bool) -> Self {
        let hists = (0..STAGE_COUNT * MAX_CLASSES)
            .map(|_| LatencyHistogram::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            enabled,
            hists,
            classes: Mutex::new(vec!["default".to_string()]),
            journal: SlowQueryJournal::default(),
        }
    }

    /// Whether this registry records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-query journal owned by this registry.
    pub fn journal(&self) -> &SlowQueryJournal {
        &self.journal
    }

    /// Registers (or looks up) a session class by name, returning its
    /// dense id. Idempotent per name. Once [`MAX_CLASSES`] names exist,
    /// further names alias to class 0 rather than failing — metrics are
    /// best-effort, never an error source.
    pub fn register_class(&self, name: &str) -> ClassId {
        let mut classes = self.classes.lock();
        if let Some(pos) = classes.iter().position(|c| c == name) {
            return ClassId(pos as u8);
        }
        if classes.len() >= MAX_CLASSES {
            return ClassId::DEFAULT;
        }
        classes.push(name.to_string());
        ClassId((classes.len() - 1) as u8)
    }

    /// Every registered class name, index-aligned with [`ClassId`].
    pub fn class_names(&self) -> Vec<String> {
        self.classes.lock().clone()
    }

    /// Name of a class id (`"default"` for out-of-range ids).
    pub fn class_name(&self, class: ClassId) -> String {
        let classes = self.classes.lock();
        classes
            .get(class.0 as usize)
            .cloned()
            .unwrap_or_else(|| "default".to_string())
    }

    #[inline]
    fn hist(&self, stage: Stage, class: ClassId) -> &LatencyHistogram {
        let c = (class.0 as usize).min(MAX_CLASSES - 1);
        &self.hists[stage.index() * MAX_CLASSES + c]
    }

    /// Records one latency sample for `(stage, class)`. Two relaxed
    /// atomic adds when enabled; a single branch when disabled.
    #[inline]
    pub fn record_micros(&self, stage: Stage, class: ClassId, micros: u64) {
        if !self.enabled {
            return;
        }
        self.hist(stage, class).record(micros);
    }

    /// Starts a stage-timing span that records its elapsed time into
    /// `(stage, class)` when dropped or [`finish`](StageSpan::finish)ed.
    /// On a disabled registry the span is inert and the clock is never
    /// read.
    #[inline]
    pub fn span(&self, stage: Stage, class: ClassId) -> StageSpan<'_> {
        StageSpan {
            registry: self,
            stage,
            class,
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Snapshot of one `(stage, class)` histogram.
    pub fn stage_histogram(&self, stage: Stage, class: ClassId) -> crate::hist::HistogramSnapshot {
        self.hist(stage, class).snapshot()
    }

    /// Assembles the full per-stage snapshot: one [`StageSnapshot`] per
    /// non-empty `(stage, class)` histogram, plus the journal contents.
    /// Engine-level counters and gauges are appended by the caller,
    /// which owns them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let classes: Vec<String> = self.classes.lock().clone();
        let mut stages = Vec::new();
        if self.enabled {
            for stage in Stage::ALL {
                for (c, name) in classes.iter().enumerate() {
                    let hist = self.hist(stage, ClassId(c as u8)).snapshot();
                    if hist.is_empty() {
                        continue;
                    }
                    stages.push(StageSnapshot {
                        stage: stage.name().to_string(),
                        class: name.clone(),
                        count: hist.count,
                        sum_micros: hist.sum_micros,
                        p50: hist.quantile(0.50),
                        p90: hist.quantile(0.90),
                        p99: hist.quantile(0.99),
                    });
                }
            }
        }
        MetricsSnapshot {
            enabled: self.enabled,
            stages,
            counters: Vec::new(),
            gauges: Vec::new(),
            slow_queries: self.journal.snapshot(),
        }
    }
}

/// RAII stage timer from [`MetricsRegistry::span`]: measures from
/// construction to drop (or [`finish`](Self::finish)) and records the
/// elapsed microseconds. Inert — no clock reads at all — when the
/// registry is disabled.
#[derive(Debug)]
pub struct StageSpan<'a> {
    registry: &'a MetricsRegistry,
    stage: Stage,
    class: ClassId,
    start: Option<Instant>,
}

impl StageSpan<'_> {
    /// Ends the span now, recording and returning the elapsed µs
    /// (0 on a disabled registry).
    pub fn finish(mut self) -> u64 {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> u64 {
        match self.start.take() {
            Some(start) => {
                let micros = start.elapsed().as_micros() as u64;
                self.registry.record_micros(self.stage, self.class, micros);
                micros
            }
            None => 0,
        }
    }
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_roundtrip() {
        let reg = MetricsRegistry::new();
        let vip = reg.register_class("vip");
        reg.record_micros(Stage::QueryScan, ClassId::DEFAULT, 100);
        reg.record_micros(Stage::QueryScan, vip, 9_000);
        reg.record_micros(Stage::QueryScan, vip, 9_000);
        let snap = reg.snapshot();
        assert!(snap.enabled);
        let default = snap
            .stages
            .iter()
            .find(|s| s.stage == "query_scan" && s.class == "default")
            .unwrap();
        assert_eq!(default.count, 1);
        let vip_row = snap
            .stages
            .iter()
            .find(|s| s.stage == "query_scan" && s.class == "vip")
            .unwrap();
        assert_eq!(vip_row.count, 2);
        assert!(vip_row.p50 >= 9_000 && vip_row.p50 < 18_000);
    }

    #[test]
    fn class_registration_is_idempotent_and_bounded() {
        let reg = MetricsRegistry::new();
        let a = reg.register_class("dash");
        assert_eq!(reg.register_class("dash"), a);
        assert_eq!(reg.register_class("default"), ClassId::DEFAULT);
        for i in 0..MAX_CLASSES * 2 {
            reg.register_class(&format!("c{i}"));
        }
        // Overflowing registrations alias to the default class.
        assert_eq!(reg.register_class("one-too-many"), ClassId::DEFAULT);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::disabled();
        reg.record_micros(Stage::QueryTotal, ClassId::DEFAULT, 1_000_000);
        {
            let _span = reg.span(Stage::QueryScan, ClassId::DEFAULT);
        }
        let snap = reg.snapshot();
        assert!(!snap.enabled);
        assert!(snap.stages.is_empty());
    }

    #[test]
    fn span_records_on_drop_and_finish() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span(Stage::SessionStart, ClassId::DEFAULT);
        }
        let s = reg.span(Stage::SessionEnd, ClassId::DEFAULT);
        let _micros = s.finish();
        assert_eq!(
            reg.stage_histogram(Stage::SessionStart, ClassId::DEFAULT)
                .count,
            1
        );
        assert_eq!(
            reg.stage_histogram(Stage::SessionEnd, ClassId::DEFAULT)
                .count,
            1
        );
    }
}
