//! Exposition: the [`MetricsSnapshot`] aggregate and the
//! Prometheus-style text renderer.

use serde::{Deserialize, Serialize};

use crate::journal::SlowQueryRecord;

/// Summary of one non-empty `(stage, class)` latency histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name (see [`Stage::name`](crate::Stage::name)).
    pub stage: String,
    /// Session-class name the samples were recorded under.
    pub class: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_micros: u64,
    /// Estimated 50th-percentile latency in microseconds.
    pub p50: u64,
    /// Estimated 90th-percentile latency in microseconds.
    pub p90: u64,
    /// Estimated 99th-percentile latency in microseconds.
    pub p99: u64,
}

/// Point-in-time aggregate of everything the observability layer knows:
/// per-stage latency summaries keyed by session class, engine counters
/// and gauges, and the slow-query journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// False when the engine was built with a disabled registry.
    pub enabled: bool,
    /// One entry per non-empty `(stage, class)` histogram.
    pub stages: Vec<StageSnapshot>,
    /// Named monotonic counters (cache hits, batches applied, ...).
    pub counters: Vec<(String, u64)>,
    /// Named gauges (active sessions, ingest queue depth, ...).
    pub gauges: Vec<(String, i64)>,
    /// Retained slow-query records, oldest first.
    pub slow_queries: Vec<SlowQueryRecord>,
}

impl MetricsSnapshot {
    /// Finds the summary for `(stage, class)` if any samples exist.
    pub fn stage(&self, stage: &str, class: &str) -> Option<&StageSnapshot> {
        self.stages
            .iter()
            .find(|s| s.stage == stage && s.class == class)
    }

    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// stage latencies as summary metrics with `quantile` labels plus
    /// `_count`/`_sum` series, counters and gauges as plain samples.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP sdwp_stage_latency_micros Per-stage latency summary in microseconds.\n",
        );
        out.push_str("# TYPE sdwp_stage_latency_micros summary\n");
        for s in &self.stages {
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!(
                    "sdwp_stage_latency_micros{{stage=\"{}\",class=\"{}\",quantile=\"{}\"}} {}\n",
                    s.stage, s.class, q, v
                ));
            }
            out.push_str(&format!(
                "sdwp_stage_latency_micros_count{{stage=\"{}\",class=\"{}\"}} {}\n",
                s.stage, s.class, s.count
            ));
            out.push_str(&format!(
                "sdwp_stage_latency_micros_sum{{stage=\"{}\",class=\"{}\"}} {}\n",
                s.stage, s.class, s.sum_micros
            ));
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE sdwp_{name} counter\nsdwp_{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE sdwp_{name} gauge\nsdwp_{name} {v}\n"));
        }
        out.push_str(&format!(
            "# TYPE sdwp_slow_queries_retained gauge\nsdwp_slow_queries_retained {}\n",
            self.slow_queries.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_contains_series() {
        let snap = MetricsSnapshot {
            enabled: true,
            stages: vec![StageSnapshot {
                stage: "query_scan".to_string(),
                class: "default".to_string(),
                count: 3,
                sum_micros: 300,
                p50: 127,
                p90: 127,
                p99: 127,
            }],
            counters: vec![("cache_hits".to_string(), 42)],
            gauges: vec![("sessions_active".to_string(), 7)],
            slow_queries: Vec::new(),
        };
        let text = snap.render_prometheus();
        assert!(text.contains(
            "sdwp_stage_latency_micros{stage=\"query_scan\",class=\"default\",quantile=\"0.5\"} 127"
        ));
        assert!(text
            .contains("sdwp_stage_latency_micros_count{stage=\"query_scan\",class=\"default\"} 3"));
        assert!(text.contains("sdwp_cache_hits 42"));
        assert!(text.contains("sdwp_sessions_active 7"));
        assert!(text.contains("sdwp_slow_queries_retained 0"));
    }

    #[test]
    fn lookup_helpers() {
        let snap = MetricsSnapshot {
            enabled: true,
            stages: Vec::new(),
            counters: vec![("a".to_string(), 1)],
            gauges: vec![("b".to_string(), -2)],
            slow_queries: Vec::new(),
        };
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.counter("zz"), None);
        assert_eq!(snap.gauge("b"), Some(-2));
        assert!(snap.stage("query_scan", "default").is_none());
    }
}
