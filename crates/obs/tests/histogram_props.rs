//! Property suite for [`LatencyHistogram`]: recording then merging
//! snapshots is exact and order-free, and quantile estimates stay within
//! the documented factor-of-two envelope of a sorted-vector reference.

use proptest::prelude::*;
use sdwp_obs::{HistogramSnapshot, LatencyHistogram, HISTOGRAM_BUCKETS};
use std::sync::Arc;

/// Latency samples a histogram can meet: lots of sub-millisecond values,
/// a band around bucket boundaries, occasional zeros and rare monsters.
fn sample() -> BoxedStrategy<u64> {
    prop_oneof![
        Just(0u64),
        1u64..16,
        (0u32..20).prop_map(|b| (1u64 << b) - 1),
        (0u32..20).prop_map(|b| 1u64 << b),
        1u64..1_000_000,
    ]
    .boxed()
}

fn feed(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(feed(left), feed(right)) == feed(left ++ right) for every
    /// split point: a merged snapshot is bucket-for-bucket identical to
    /// the snapshot one histogram would have produced from both streams.
    #[test]
    fn merge_agrees_with_combined_stream(
        values in prop::collection::vec(sample(), 0..200),
        split in any::<usize>(),
    ) {
        let at = if values.is_empty() { 0 } else { split % (values.len() + 1) };
        let (left, right) = values.split_at(at);
        let mut merged = feed(left);
        merged.merge(&feed(right));
        prop_assert_eq!(merged, feed(&values));
    }

    /// Merging snapshots is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), so
    /// per-thread or per-shard histograms can be folded in any grouping.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(sample(), 0..80),
        b in prop::collection::vec(sample(), 0..80),
        c in prop::collection::vec(sample(), 0..80),
    ) {
        let (sa, sb, sc) = (feed(&a), feed(&b), feed(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut tail = sb.clone();
        tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&tail);
        prop_assert_eq!(left, right);
        // The empty snapshot is the identity on both sides.
        let mut left_id = HistogramSnapshot::empty();
        left_id.merge(&sa);
        prop_assert_eq!(left_id, sa.clone());
        let mut right_id = sa.clone();
        right_id.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(right_id, sa);
    }

    /// Quantile estimates bracket the exact order statistic computed from
    /// a sorted vector of the same samples: `exact <= estimate`, and for
    /// non-zero statistics `estimate < 2 * exact` (zero statistics are
    /// reported exactly).
    #[test]
    fn quantile_brackets_sorted_reference(
        values in prop::collection::vec(sample(), 1..300),
    ) {
        let snap = feed(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let estimate = snap.quantile(q);
            prop_assert!(
                exact <= estimate,
                "q={} exact={} estimate={}", q, exact, estimate
            );
            if exact == 0 {
                prop_assert_eq!(estimate, 0, "q={}", q);
            } else {
                prop_assert!(
                    estimate < 2 * exact,
                    "q={} exact={} estimate={}", q, exact, estimate
                );
            }
        }
        // Count and sum are exact, not estimates.
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum_micros, values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
    }

    /// Concurrent recording loses nothing: threads hammering one shared
    /// histogram produce exactly the snapshot of a sequential feed of
    /// the union of their sample streams.
    #[test]
    fn concurrent_recording_is_lossless(
        chunks in prop::collection::vec(
            prop::collection::vec(sample(), 0..60),
            1..6,
        ),
    ) {
        let shared = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = chunks
            .iter()
            .cloned()
            .map(|chunk| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for v in chunk {
                        shared.record(v);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let all: Vec<u64> = chunks.concat();
        prop_assert_eq!(shared.snapshot(), feed(&all));
    }
}
