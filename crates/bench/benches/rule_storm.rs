//! B17 — compiled rule evaluation: event throughput of the compiled
//! two-phase firing path against the AST interpreter, on one shared
//! serving engine.
//!
//! Two storms per ruleset size:
//!
//! * `no_match` — spatial selections no published rule targets. The
//!   compiled path answers these entirely in its lock-free condition
//!   phase (precomputed match strings, no master lock, no profile
//!   clone); the interpreter must take the master lock and walk every
//!   rule's event spec under it. This is the conditions-only curve the
//!   experiment exists for.
//! * `fire` — selections every rule matches, so both paths pay the full
//!   effect phase under the master lock; the gap left is the compiled
//!   instruction stream (slot-indexed reads, pre-resolved ids, folded
//!   constants) against AST walking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_bench::{engine_for, manager_location, scenario_at_scale};
use sdwp_core::PersonalizationEngine;
use sdwp_datagen::PaperScenario;
use std::sync::Arc;
use std::time::Duration;

/// Events fired per measured iteration. Each iteration runs a whole
/// session lifecycle: `record_spatial_selection` appends to the session's
/// selection history by contract, so a long-lived session would make
/// later measurements pay for earlier ones. Keeping login/logout inside
/// the routine bounds the history identically for every mode.
const EVENTS_PER_ITER: usize = 64;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

/// `n` rules that all match a spatial selection of `GeoMD.Store.City` and
/// apply one `SetContent` each (idempotent, so the storm has a steady
/// state: no layers or selections accumulate across iterations).
fn storm_rules(n: usize) -> String {
    (0..n)
        .map(|i| {
            format!(
                "Rule:storm{i} When SpatialSelection(GeoMD.Store.City, 1 = 1) do \
                 SetContent(SUS.DecisionMaker.storm, {i}) endWhen\n"
            )
        })
        .collect()
}

/// A serving engine with exactly the storm ruleset published.
fn storm_engine(scenario: &PaperScenario, rules: usize) -> Arc<PersonalizationEngine> {
    let engine = engine_for(scenario);
    engine
        .reload_rules_text(&storm_rules(rules))
        .expect("storm rules publish");
    Arc::new(engine)
}

fn bench_rule_storm(c: &mut Criterion) {
    let scenario = scenario_at_scale(1);
    let location = manager_location(&scenario);

    let mut group = c.benchmark_group("B17_rule_storm");
    group.throughput(Throughput::Elements(EVENTS_PER_ITER as u64));
    for rules in [8usize, 32] {
        let engine = storm_engine(&scenario, rules);
        for (mode, compiled) in [("interpreted", false), ("compiled", true)] {
            engine.set_compiled_firing(compiled);
            for (storm, element) in [
                // No published rule targets the State level:
                // conditions-only evaluation.
                ("no_match", "GeoMD.Store.State"),
                ("fire", "GeoMD.Store.City"),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{storm}/{mode}"), rules),
                    &rules,
                    |b, _| {
                        b.iter(|| {
                            let session = engine
                                .start_session("regional-manager", Some(location.clone()))
                                .expect("login")
                                .id;
                            for _ in 0..EVENTS_PER_ITER {
                                criterion::black_box(
                                    engine
                                        .record_spatial_selection(session, element, None)
                                        .expect("storm event fires"),
                                );
                            }
                            engine.end_session(session).expect("logout");
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_rule_storm
}
criterion_main!(benches);
