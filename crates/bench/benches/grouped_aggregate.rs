//! B15 — grouped aggregation: dense group ids + selection vectors vs the
//! string-key row-at-a-time baseline.
//!
//! The grouped morsel path resolves group keys to dense integer slots
//! (one dictionary walk per query, one `u32` index per row) and
//! accumulates through the grouped slice kernels; the serial reference
//! still builds a `String` key per row through a `CellValue` cache — the
//! exact code every grouped query ran before the dense-id rebuild, kept
//! as the baseline. Two sweeps:
//!
//! * **cardinality sweep** (100k fact rows, 10 → 100k groups): the dense
//!   flat path stays near-flat until the slot vectors outgrow the cache;
//!   the `dense-hashed` curve (the same scan with the flat path disabled)
//!   shows what the integer-keyed fallback costs above
//!   `group_slot_limit`;
//! * **worker sweep** (1k groups): morsel-parallel scaling of the dense
//!   path — flat on a 1-core runner, ~1/min(workers, cores) on real
//!   hardware.
//!
//! The acceptance pair (`acceptance-*`, 10k rows / 1k groups) is the
//! scale the PR gate compares: dense must beat the string-key baseline by
//! ≥ 3× even at one worker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
use sdwp_olap::{AttributeRef, CellValue, Cube, ExecutionConfig, Query, QueryEngine};
use std::hint::black_box;
use std::time::Duration;

/// Fact rows of the cardinality/worker sweeps.
const FACT_ROWS: usize = 100_000;
/// Group cardinalities swept (dictionary-distinct key values).
const CARDINALITIES: [usize; 4] = [10, 1_000, 10_000, 100_000];

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// A flat events cube: one `Key` dimension with `cardinality` members
/// (each a distinct text key), `rows` fact rows spread over the members,
/// one dyadic float measure.
fn grouped_cube(rows: usize, cardinality: usize) -> Cube {
    let schema = SchemaBuilder::new("GroupedDW")
        .dimension(
            DimensionBuilder::new("Key")
                .simple_level("Key", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Events")
                .measure("Value", AttributeType::Float)
                .measure_with(
                    "Score",
                    AttributeType::Float,
                    sdwp_model::AggregationFunction::Avg,
                )
                .dimension("Key")
                .build(),
        )
        .build()
        .expect("grouped schema is valid");
    let mut cube = Cube::new(schema);
    for member in 0..cardinality {
        cube.add_dimension_member(
            "Key",
            vec![("Key.name", CellValue::from(format!("K{member}")))],
        )
        .expect("member loads");
    }
    // A cheap deterministic spread; dyadic values keep sums exact.
    for row in 0..rows {
        let member = (row * 7 + row / 64) % cardinality;
        cube.add_fact_row(
            "Events",
            vec![("Key", member)],
            vec![
                ("Value", CellValue::Float((row % 97) as f64 * 0.25)),
                ("Score", CellValue::Float((row % 53) as f64 * 0.5)),
            ],
        )
        .expect("fact loads");
    }
    cube
}

fn groupby_query() -> Query {
    Query::over("Events")
        .group_by(AttributeRef::new("Key", "Key", "name"))
        .measure("Value")
        .measure("Score")
}

fn bench_grouped_aggregate(c: &mut Criterion) {
    println!(
        "available parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let query = groupby_query();
    let mut group = c.benchmark_group("B15_grouped_aggregate");
    group.throughput(Throughput::Elements(FACT_ROWS as u64));

    // Cardinality sweep: string-key baseline vs dense flat vs dense
    // hashed (flat path disabled), all single-worker so the comparison is
    // per-row cost, not parallelism.
    for cardinality in CARDINALITIES {
        let cube = grouped_cube(FACT_ROWS, cardinality);
        let serial = QueryEngine::with_config(ExecutionConfig::serial().with_cache_capacity(0));
        group.bench_with_input(
            BenchmarkId::new("string-key-serial", cardinality),
            &cardinality,
            |b, _| b.iter(|| serial.execute_serial(&cube, black_box(&query)).unwrap()),
        );
        let dense = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                // Keep the flat path live across the whole sweep (the
                // dictionary reserves a null slot, hence the +1).
                .with_group_slot_limit(CARDINALITIES[3] + 1),
        );
        group.bench_with_input(
            BenchmarkId::new("dense-flat", cardinality),
            &cardinality,
            |b, _| b.iter(|| dense.execute(&cube, black_box(&query)).unwrap()),
        );
        let hashed = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_group_slot_limit(0),
        );
        group.bench_with_input(
            BenchmarkId::new("dense-hashed", cardinality),
            &cardinality,
            |b, _| b.iter(|| hashed.execute(&cube, black_box(&query)).unwrap()),
        );
    }

    // Worker sweep at 1k groups: morsel-parallel scaling of the dense
    // path.
    let cube = grouped_cube(FACT_ROWS, 1_000);
    for workers in [1usize, 2, 4, 8] {
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(workers)
                .with_cache_capacity(0),
        );
        group.bench_with_input(
            BenchmarkId::new("dense-workers", workers),
            &workers,
            |b, _| b.iter(|| engine.execute(&cube, black_box(&query)).unwrap()),
        );
    }
    group.finish();

    // The acceptance pair: 10k rows / 1k groups, dense (1 worker) must be
    // ≥ 3× the string-key baseline.
    let cube = grouped_cube(10_000, 1_000);
    let mut acceptance = c.benchmark_group("B15_acceptance_10k_rows_1k_groups");
    acceptance.throughput(Throughput::Elements(10_000));
    let serial = QueryEngine::with_config(ExecutionConfig::serial().with_cache_capacity(0));
    acceptance.bench_function("string-key-baseline", |b| {
        b.iter(|| serial.execute_serial(&cube, black_box(&query)).unwrap())
    });
    let dense = QueryEngine::with_config(
        ExecutionConfig::default()
            .with_workers(1)
            .with_cache_capacity(0),
    );
    acceptance.bench_function("dense-grouped", |b| {
        b.iter(|| dense.execute(&cube, black_box(&query)).unwrap())
    });
    acceptance.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_grouped_aggregate
}
criterion_main!(benches);
