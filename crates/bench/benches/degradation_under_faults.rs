//! B20 — degradation under injected faults: the personalized query path
//! with the fault-injection hooks compiled in, across four regimes —
//! disarmed (the failpoint checks' standing cost), a slow scan (an armed
//! `SleepMs` failpoint stretching every Nth morsel, the degraded-but-
//! surviving case), a deadline cutoff (the same slow scan under a
//! per-query budget, measuring time-to-typed-refusal instead of
//! time-to-answer), and panic containment (helper startup panics once in
//! N; the caller gets `ExecutionPanicked` while the pool keeps serving,
//! so the regime measures the survivors' latency plus the refusals'
//! cost).
//!
//! Built without the `failpoints` feature only the disarmed regime
//! exists — which is the point: comparing its numbers against a default
//! build (B12's standalone roll-up) bounds the framework's overhead at
//! zero, because the macro expands to nothing.
//!
//! Acceptance: the armed regimes refuse *typed* — every non-`Ok` outcome
//! is `DeadlineExceeded` or `ExecutionPanicked`, never a generic error —
//! and the deadline regime's time-to-refusal stays near the budget, not
//! near the degraded full-scan time.
//!
//! Criterion reports the mean; the `B20 summary` lines carry the
//! p50/p99 of the explicit sample loop that EXPERIMENTS.md quotes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdwp_bench::{default_scenario, manager_location};
use sdwp_core::PersonalizationEngine;
use sdwp_olap::{AttributeRef, ExecutionConfig, Query};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

#[cfg(feature = "failpoints")]
use sdwp_core::CoreError;
#[cfg(feature = "failpoints")]
use sdwp_olap::fault::{arm, disarm_all, set_seed, FailAction};

/// Explicit latency samples per regime for the p50/p99 summary lines.
const SAMPLES: usize = 200;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// Disarms every failpoint when dropped, so a panicking regime cannot
/// leak an armed point into the next one.
#[cfg(feature = "failpoints")]
struct Disarm;
#[cfg(feature = "failpoints")]
impl Drop for Disarm {
    fn drop(&mut self) {
        disarm_all();
    }
}

fn percentile(sorted_micros: &[u64], q: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((sorted_micros.len() as f64 - 1.0) * q).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

/// Runs `SAMPLES` queries of `run`, printing the regime's p50/p99.
fn summarize(label: &str, mut run: impl FnMut() -> u64) {
    let mut samples: Vec<u64> = (0..SAMPLES).map(|_| run()).collect();
    samples.sort_unstable();
    eprintln!(
        "B20 summary {label}: p50={}µs p99={}µs",
        percentile(&samples, 0.5),
        percentile(&samples, 0.99),
    );
}

/// The engine under test: the paper scenario with the morsel-parallel
/// executor, the result cache off (a cache hit would bypass the scan
/// failpoints), and small morsels so the scan loop evaluates its
/// failpoint often enough for "once in N" to mean something.
fn engine() -> Arc<PersonalizationEngine> {
    let scenario = default_scenario();
    let engine = sdwp_bench::engine_with_config(
        &scenario,
        ExecutionConfig::default()
            .with_workers(4)
            .with_morsel_rows(256)
            .with_cache_capacity(0),
    );
    let session = engine
        .start_session("regional-manager", Some(manager_location(&scenario)))
        .expect("session starts");
    SESSION.store(session.id, std::sync::atomic::Ordering::Relaxed);
    Arc::new(engine)
}

/// The session id of the engine's one registered user (set by
/// [`engine`], read by every regime).
static SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The dashboard panel every regime runs: a city roll-up.
fn panel() -> Query {
    Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
}

fn bench_degradation_under_faults(c: &mut Criterion) {
    let engine = engine();
    let session = SESSION.load(std::sync::atomic::Ordering::Relaxed);
    let query = panel();

    let mut group = c.benchmark_group("B20_degradation_under_faults");
    group.throughput(Throughput::Elements(1));

    // -- disarmed: the framework's standing cost ------------------------
    summarize("disarmed", || {
        let start = std::time::Instant::now();
        black_box(engine.query(session, &query).expect("panel executes"));
        start.elapsed().as_micros() as u64
    });
    group.bench_function("disarmed", |b| {
        b.iter(|| {
            engine
                .query(session, black_box(&query))
                .expect("panel executes")
        })
    });

    #[cfg(feature = "failpoints")]
    {
        let _teardown = Disarm;
        set_seed(42);

        // -- slow scan: degraded but surviving --------------------------
        // Every 4th morsel stalls 1 ms; the query still completes, just
        // late — the shape of a sick storage layer, not a dead one.
        arm("query.scan.morsel", FailAction::SleepMs(1), 4, None);
        summarize("slow-scan", || {
            let start = std::time::Instant::now();
            black_box(
                engine
                    .query(session, &query)
                    .expect("degraded panel survives"),
            );
            start.elapsed().as_micros() as u64
        });
        group.bench_function("slow-scan", |b| {
            b.iter(|| {
                engine
                    .query(session, black_box(&query))
                    .expect("degraded panel survives")
            })
        });

        // -- deadline cutoff: time-to-typed-refusal ---------------------
        // The same sick scan under a 2 ms budget: the cancel check
        // between morsels trips and the caller gets the typed refusal in
        // about one morsel's degraded time, not the full degraded scan.
        let budget = Some(Duration::from_millis(2));
        arm("query.scan.morsel", FailAction::SleepMs(5), 1, None);
        summarize("deadline-cutoff", || {
            let start = std::time::Instant::now();
            match engine.query_with_deadline(session, &query, budget) {
                Err(CoreError::DeadlineExceeded) => {}
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
            start.elapsed().as_micros() as u64
        });
        group.bench_function("deadline-cutoff", |b| {
            b.iter(
                || match engine.query_with_deadline(session, black_box(&query), budget) {
                    Err(CoreError::DeadlineExceeded) => {}
                    other => panic!("expected DeadlineExceeded, got {other:?}"),
                },
            )
        });
        disarm_all();

        // -- panic containment: survivors plus typed refusals -----------
        // One helper startup in 16 panics. A hit query comes back as the
        // typed `ExecutionPanicked`; everything else completes on the
        // same (still healthy) pool. The regime's latency mixes both —
        // which is exactly what a caller behind the facade experiences.
        // The default panic hook would spam a backtrace per injected
        // panic; silence it for this regime only.
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        arm(
            "pool.helper.start",
            FailAction::Panic("injected helper crash".into()),
            16,
            None,
        );
        let mut survived = 0u64;
        let mut contained = 0u64;
        summarize("panic-containment", || {
            let start = std::time::Instant::now();
            match engine.query(session, &query) {
                Ok(result) => {
                    black_box(result);
                    survived += 1;
                }
                Err(CoreError::ExecutionPanicked) => contained += 1,
                Err(other) => panic!("expected containment, got {other:?}"),
            }
            start.elapsed().as_micros() as u64
        });
        eprintln!("B20 summary panic-containment: {survived} survived, {contained} contained");
        group.bench_function("panic-containment", |b| {
            b.iter(|| match engine.query(session, black_box(&query)) {
                Ok(result) => black_box(result).facts_matched,
                Err(CoreError::ExecutionPanicked) => 0,
                Err(other) => panic!("expected containment, got {other:?}"),
            })
        });
        disarm_all();
        std::panic::set_hook(quiet);

        // The pool outlived every injected crash: a clean query still
        // completes with nothing armed.
        engine
            .query(session, &query)
            .expect("the pool serves normally after the chaos regimes");
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_degradation_under_faults
}
criterion_main!(benches);
