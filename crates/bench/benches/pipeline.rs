//! F1 — the full Fig. 1 pipeline: session start (schema rules + instance
//! rules + view construction) as the warehouse grows.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sdwp_bench::{engine_for, manager_location, scenario_at_scale, STORE_SCALES};
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("F1_personalization_pipeline");
    for scale in STORE_SCALES {
        let scenario = scenario_at_scale(scale);
        let stores = scenario.retail.stores.len();
        let location = manager_location(&scenario);
        group.bench_with_input(
            BenchmarkId::new("session_start", stores),
            &stores,
            |b, _| {
                b.iter_batched(
                    || engine_for(&scenario),
                    |engine| {
                        engine
                            .start_session("regional-manager", Some(location.clone()))
                            .unwrap()
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        // Scenario generation itself (data loading), for context.
        group.bench_with_input(
            BenchmarkId::new("scenario_generation", stores),
            &scale,
            |b, &scale| b.iter(|| sdwp_bench::scenario_at_scale(scale)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_pipeline
}
criterion_main!(benches);
