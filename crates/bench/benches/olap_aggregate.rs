//! B8 — OLAP aggregation ablation: the same roll-up executed (a) with no
//! restriction, (b) through an attribute slice, (c) through a spatial
//! dimension filter and (d) through a personalized instance view, to show
//! where the pre-computed selection pays off — all through the
//! morsel-parallel executor, with the serial reference alongside for the
//! executor's own ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use sdwp_bench::default_scenario;
use sdwp_geometry::Point;
use sdwp_olap::{AttributeRef, ExecutionConfig, Filter, InstanceView, Query, QueryEngine};
use std::hint::black_box;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

fn bench_olap_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_olap_aggregation_ablation");
    let scenario = default_scenario();
    let cube = &scenario.cube;
    let engine = QueryEngine::new();
    let base_query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
        .measure("StoreSales");

    group.bench_function("unrestricted", |b| {
        b.iter(|| engine.execute(cube, black_box(&base_query)).unwrap())
    });

    // The classic row-at-a-time loop, as the executor baseline.
    let serial = QueryEngine::with_config(ExecutionConfig::serial());
    group.bench_function("unrestricted-serial-reference", |b| {
        b.iter(|| serial.execute_serial(cube, black_box(&base_query)).unwrap())
    });

    let sliced = base_query
        .clone()
        .filter_dimension("Store", Filter::eq("State.name", "North-West"));
    group.bench_function("attribute-slice", |b| {
        b.iter(|| engine.execute(cube, black_box(&sliced)).unwrap())
    });

    let store0 = scenario.retail.stores[0].location;
    let spatial = base_query.clone().filter_dimension(
        "Store",
        Filter::within_km(
            "Store.geometry",
            Point::new(store0.x(), store0.y()).into(),
            25.0,
        ),
    );
    group.bench_function("spatial-filter-25km", |b| {
        b.iter(|| engine.execute(cube, black_box(&spatial)).unwrap())
    });

    // A personalized view pre-computed once (what SelectInstance produces).
    let selected: Vec<usize> = scenario
        .retail
        .stores
        .iter()
        .enumerate()
        .filter(|(_, s)| s.location.distance(&store0) < 25.0)
        .map(|(i, _)| i)
        .collect();
    let mut view = InstanceView::unrestricted();
    view.select_dimension_members("Store", selected);
    group.bench_function("personalized-view-25km", |b| {
        b.iter(|| {
            engine
                .execute_with_view(cube, black_box(&base_query), &view)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_olap_aggregate
}
criterion_main!(benches);
