//! B16 — shared-scan multi-query batch execution: one morsel-parallel
//! pass answering a whole dashboard refresh vs executing each panel
//! alone.
//!
//! The batch path resolves every query against one snapshot up front,
//! shares group-key dictionaries per attribute, and materialises one
//! selection vector per *filter class* per morsel — queries whose
//! canonical filters coincide share it outright. Three overlap regimes
//! bound the win:
//!
//! * **identical** — every panel filters the same city: the whole batch
//!   is one filter class, so per-row predicate work is paid once and the
//!   GLADE-style sharing is maximal;
//! * **disjoint** — every panel filters a different city: each panel
//!   pays its own predicate pass and only the shared scan loop,
//!   dictionaries and morsel scheduling are amortised;
//! * **mixed** — alternating shared/distinct filters, the realistic
//!   dashboard middle ground.
//!
//! Swept at batch sizes 1/2/4/8/16 on the paper scenario scaled to
//! ~100k sales rows. `standalone/N` executes the same queries one at a
//! time (the pre-batch cost); `batched/N` is one `execute_batch_with_view`
//! call; `batched-warm-dicts/N` adds a pre-warmed group-key dictionary
//! cache (what the serving layer sees from the second refresh on). The
//! acceptance gate compares `batched/identical/8` against
//! `standalone/identical/1`: the 8-panel batch must cost ≤ 3× one
//! uncached panel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_datagen::{dashboard_batch, OverlapRegime, PaperScenario, ScenarioConfig};
use sdwp_olap::{GroupDictCache, InstanceView, QueryEngine};
use std::hint::black_box;
use std::time::Duration;

/// Batch sizes swept per overlap regime.
const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_shared_scan_batch(c: &mut Criterion) {
    // The acceptance scenario: the default paper scenario scaled 20× —
    // ~100k sales rows, 500 cities — so scans dominate setup.
    let config = ScenarioConfig::default().scaled(20);
    let cities = config.cities;
    let scenario = PaperScenario::generate(config);
    let cube = &scenario.cube;
    let rows = cube
        .fact_table("Sales")
        .expect("scenario has Sales")
        .table
        .len() as u64;
    let engine = QueryEngine::new();
    let view = InstanceView::unrestricted();

    for regime in OverlapRegime::ALL {
        let mut group = c.benchmark_group(format!("shared_scan_batch/{}", regime.label()));
        for &size in &BATCH_SIZES {
            let batch = dashboard_batch(regime, size, cities);
            // Every variant scans the same fact once per logical pass;
            // report fact-row throughput of one pass so curves compare.
            group.throughput(Throughput::Elements(rows));

            group.bench_function(BenchmarkId::new("standalone", size), |b| {
                b.iter(|| {
                    for query in &batch {
                        black_box(
                            engine
                                .execute_with_view(cube, query, &view)
                                .expect("dashboard query executes"),
                        );
                    }
                })
            });

            group.bench_function(BenchmarkId::new("batched", size), |b| {
                b.iter(|| {
                    for result in engine.execute_batch_with_view(cube, black_box(&batch), &view) {
                        black_box(result.expect("dashboard query executes"));
                    }
                })
            });

            group.bench_function(BenchmarkId::new("batched-warm-dicts", size), |b| {
                let dicts = GroupDictCache::new();
                // Warm the dictionaries once; the measured loop then
                // only pays lookups, like the second refresh onward.
                for result in engine.execute_batch_cached(cube, &batch, &view, Some((&dicts, 1))) {
                    result.expect("dashboard query executes");
                }
                b.iter(|| {
                    for result in engine.execute_batch_cached(
                        cube,
                        black_box(&batch),
                        &view,
                        Some((&dicts, 1)),
                    ) {
                        black_box(result.expect("dashboard query executes"));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_shared_scan_batch
}
criterion_main!(benches);
