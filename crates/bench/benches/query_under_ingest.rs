//! B13 — query latency and cache behaviour under streaming ingestion.
//!
//! Sweeps ingest rate × epoch size while a session runs a dashboard-style
//! repeated aggregation. What the curves show:
//!
//! * **latency** — queries run on immutable published snapshots, so added
//!   write pressure should cost little on the read path (no read/write
//!   lock convoy); what does move the needle is the cache: every epoch
//!   publication that touched `Sales` invalidates the repeated query's
//!   entry, so higher ingest rates and smaller epochs mean more misses →
//!   more executor runs;
//! * **hit rate** (printed after each configuration) — approaches 1 for
//!   idle ingest, and degrades toward the epoch-publication rate as the
//!   stream speeds up or epochs shrink.
//!
//! Backpressure is visible too: the feeder uses `try_submit` and the
//! printed summary reports how many batches were shed.
//!
//! A dedicated **`compacting` configuration** (not part of the epoch
//! sweep) enables a `CompactionPolicy` (0.3 tombstone ratio over 512
//! rows): once the retraction stream pushes `Sales` over the policy the
//! epoch worker rewrites it (renumbering row ids) mid-bench. An
//! id-addressed producer must then follow the re-anchoring protocol —
//! flush after each accepted batch (a barrier past any compaction that
//! batch triggered), then `RetailTicker::re_anchor` through the
//! published remap chain. Flushing per batch forces one publication per
//! batch, which is exactly why this runs as its *own* configuration: it
//! would otherwise collapse the epoch-size axis of the sweep.
//! The sweep configurations keep compaction disabled and the plain
//! try_submit/retry feeder, so their curves stay comparable across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdwp_bench::{engine_for, manager_location, scenario_at_scale};
use sdwp_datagen::{RetailTicker, TickerConfig};
use sdwp_ingest::{CompactionPolicy, EpochPolicy, IngestConfig};
use sdwp_olap::{AttributeRef, Query};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

/// (label, appends per feeder batch, compaction + re-anchor protocol on).
/// `0` appends = no ingestion at all. One batch is submitted per ~5 ms,
/// so trickle ≈ 1.6k and torrent ≈ 6.4k appends/s. The rates are bounded
/// so the bench converges on a 1-core runner; the epoch-publication cost
/// itself is near-flat in warehouse size since fact storage moved to
/// chunked copy-on-write columns (see B14, `snapshot_publish.rs`).
const CONFIGS: [(&str, usize, bool); 4] = [
    ("idle", 0, false),
    ("trickle", 8, false),
    ("torrent", 32, false),
    ("compacting", 8, true),
];
/// Epoch sizes swept (mutations per published snapshot).
const EPOCH_ROWS: [usize; 2] = [64, 1024];

fn bench_query_under_ingest(c: &mut Criterion) {
    let scenario = scenario_at_scale(4);
    let location = manager_location(&scenario);
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales");

    let mut group = c.benchmark_group("B13_query_under_ingest");
    for (rate_label, appends, compacting) in CONFIGS {
        for epoch_rows in EPOCH_ROWS {
            // Idle ingestion does not depend on the epoch size, and the
            // compacting protocol flushes per batch (making the epoch
            // size moot) — sweep those once.
            if (appends == 0 || compacting) && epoch_rows != EPOCH_ROWS[0] {
                continue;
            }
            // A fresh engine per configuration so ingested rows do not
            // accumulate across parameter points.
            let engine = Arc::new(engine_for(&scenario));
            let session = engine
                .start_session("regional-manager", Some(location.clone()))
                .expect("login")
                .id;
            let stop = Arc::new(AtomicBool::new(false));
            let feeder = (appends > 0).then(|| {
                let compaction = if compacting {
                    CompactionPolicy::disabled()
                        .with_max_tombstone_ratio(0.3)
                        .with_min_rows(512)
                } else {
                    CompactionPolicy::disabled()
                };
                let ingest = engine.start_ingest(
                    IngestConfig::default()
                        .with_queue_depth(32)
                        .with_epoch(
                            EpochPolicy::default()
                                .with_max_rows(epoch_rows)
                                .with_max_interval(Duration::from_millis(5)),
                        )
                        .with_compaction(compaction),
                );
                let stop = Arc::clone(&stop);
                let feeder_engine = Arc::clone(&engine);
                let mut ticker = RetailTicker::new(
                    &scenario,
                    TickerConfig::default()
                        .with_appends(appends)
                        .with_corrections(appends / 8)
                        .with_retractions(appends / 16),
                );
                thread::spawn(move || {
                    // A shed batch is retried, not regenerated: the ticker
                    // tracks the warehouse's row ids, so dropping a batch
                    // it produced would desynchronise every later
                    // correction/retraction it emits. With compaction
                    // enabled the feeder additionally follows the
                    // id-addressed producer's re-anchoring protocol:
                    // flush after every accepted batch, then translate
                    // its bookkeeping through the published remap chain.
                    let mut pending = None;
                    while !stop.load(Ordering::Relaxed) {
                        let batch = pending.take().unwrap_or_else(|| ticker.next_batch());
                        match ingest.try_submit(batch) {
                            Ok(()) if compacting => {
                                if ingest.flush().is_ok() {
                                    let cube = feeder_engine.cube();
                                    if let Ok(fact) = cube.fact_table("Sales") {
                                        // The feeder flushes after every
                                        // accepted batch, so it can never
                                        // lag past the remap retention
                                        // window.
                                        ticker
                                            .re_anchor(fact)
                                            .expect("flush-per-batch feeder never lags");
                                    }
                                }
                            }
                            Ok(()) => {}
                            Err(refused) => pending = refused.into_batch(),
                        }
                        thread::sleep(Duration::from_millis(5));
                    }
                })
            });

            let hits_before = engine.cache_stats();
            group.bench_with_input(
                BenchmarkId::new(rate_label, epoch_rows),
                &epoch_rows,
                |b, _| {
                    b.iter(|| {
                        criterion::black_box(
                            engine.query(session, &query).expect("query under ingest"),
                        )
                    })
                },
            );

            stop.store(true, Ordering::Relaxed);
            if let Some(feeder) = feeder {
                feeder.join().expect("feeder finishes");
            }
            let cache = engine.cache_stats();
            let (hits, misses) = (
                cache.hits - hits_before.hits,
                cache.misses - hits_before.misses,
            );
            let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
            match engine.stop_ingest() {
                Some(stats) => println!(
                    "    {rate_label}/epoch{epoch_rows}: cache hit rate {hit_rate:.3} \
                     ({hits} hits / {misses} misses), {} epochs published, \
                     {} rows ingested, {} submissions deferred by backpressure, \
                     {} batches failed, {} compactions",
                    stats.epochs_published,
                    stats.rows_appended,
                    stats.batches_rejected,
                    stats.batches_failed,
                    stats.compactions,
                ),
                None => println!(
                    "    {rate_label}: cache hit rate {hit_rate:.3} ({hits} hits / {misses} misses)"
                ),
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_query_under_ingest
}
criterion_main!(benches);
