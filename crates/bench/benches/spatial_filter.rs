//! B2 — instance-rule evaluation cost: selecting the stores within 5 km of
//! the user, comparing a linear scan against the R-tree and grid indexes,
//! as the number of stores grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdwp_bench::{manager_location, scenario_at_scale, STORE_SCALES};
use sdwp_geometry::distance::DistanceMetric;
use sdwp_geometry::Geometry;
use sdwp_olap::spatial;
use std::hint::black_box;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn bench_spatial_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_spatial_filter_5km");
    for scale in STORE_SCALES {
        let scenario = scenario_at_scale(scale);
        let stores = scenario.retail.stores.len();
        let user: Geometry = manager_location(&scenario).geometry.clone();
        let cube = &scenario.cube;
        let rtree = spatial::build_level_rtree(cube, "Store", "Store").unwrap();
        let grid = spatial::build_level_grid(cube, "Store", "Store", 5.0).unwrap();

        group.bench_with_input(BenchmarkId::new("linear-scan", stores), &stores, |b, _| {
            b.iter(|| {
                spatial::members_within_distance(
                    cube,
                    "Store",
                    "Store",
                    black_box(&user),
                    5.0,
                    DistanceMetric::Euclidean,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("rtree", stores), &stores, |b, _| {
            b.iter(|| {
                spatial::members_within_distance_indexed(
                    cube,
                    "Store",
                    "Store",
                    &rtree,
                    black_box(&user),
                    5.0,
                    DistanceMetric::Euclidean,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("grid", stores), &stores, |b, _| {
            b.iter(|| {
                spatial::members_within_distance_indexed(
                    cube,
                    "Store",
                    "Store",
                    &grid,
                    black_box(&user),
                    5.0,
                    DistanceMetric::Euclidean,
                )
                .unwrap()
            })
        });
        // Index construction cost (amortised once per cube load).
        group.bench_with_input(BenchmarkId::new("rtree-build", stores), &stores, |b, _| {
            b.iter(|| spatial::build_level_rtree(black_box(cube), "Store", "Store").unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_spatial_filter
}
criterion_main!(benches);
