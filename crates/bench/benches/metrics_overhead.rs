//! B18 — observability overhead: the B12 standalone roll-up and a
//! B16-style shared-scan batch executed three ways — no observability
//! handle at all, a *disabled* registry (the production default when
//! metrics are off: one branch, no clock reads), and an *enabled*
//! registry recording every stage into its latency histograms.
//!
//! Acceptance: the enabled-registry run must stay within 5% of the
//! no-obs baseline on both hot paths, and the disabled-registry run
//! must be indistinguishable from it (~0 cost). A raw-recording group
//! measures the primitive itself: one `record_micros` call is two
//! relaxed `fetch_add`s, a few nanoseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
use sdwp_obs::{ClassId, MetricsRegistry, Stage};
use sdwp_olap::{
    AttributeRef, CellValue, Cube, ExecutionConfig, InstanceView, Query, QueryEngine, QueryObs,
};
use std::hint::black_box;
use std::time::Duration;

/// Fact rows in the benchmark cube (matches the B12 floor).
const FACT_ROWS: usize = 100_000;
const STORES: usize = 64;
const CITIES: usize = 8;
/// Panels in the batched variant.
const BATCH_PANELS: usize = 8;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// The B12 scaling cube: 64 stores across 8 cities, 100k sales rows.
fn scaling_cube() -> Cube {
    let schema = SchemaBuilder::new("ScalingDW")
        .dimension(
            DimensionBuilder::new("Store")
                .simple_level("Store", "name")
                .simple_level("City", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Sales")
                .measure("UnitSales", AttributeType::Float)
                .measure_with(
                    "StoreCost",
                    AttributeType::Float,
                    sdwp_model::AggregationFunction::Avg,
                )
                .dimension("Store")
                .build(),
        )
        .build()
        .expect("scaling schema is valid");
    let mut cube = Cube::new(schema);
    for store in 0..STORES {
        cube.add_dimension_member(
            "Store",
            vec![
                ("Store.name", CellValue::from(format!("S{store}"))),
                ("City.name", CellValue::from(format!("C{}", store % CITIES))),
            ],
        )
        .expect("member loads");
    }
    for row in 0..FACT_ROWS {
        let store = (row * 7 + row / STORES) % STORES;
        cube.add_fact_row(
            "Sales",
            vec![("Store", store)],
            vec![
                ("UnitSales", CellValue::Float((row % 97) as f64 * 0.25)),
                ("StoreCost", CellValue::Float((row % 53) as f64 * 0.5)),
            ],
        )
        .expect("fact loads");
    }
    cube
}

/// An 8-panel dashboard over the scaling cube: alternating group-bys
/// and measures so the batch exercises dictionary sharing and per-panel
/// finalize like B16 does.
fn dashboard(panels: usize) -> Vec<Query> {
    (0..panels)
        .map(|panel| {
            let level = if panel % 2 == 0 { "City" } else { "Store" };
            let measure = if panel % 3 == 0 {
                "StoreCost"
            } else {
                "UnitSales"
            };
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", level, "name"))
                .measure(measure)
        })
        .collect()
}

/// The three observability variants each hot path is measured under.
fn variants() -> [(&'static str, Option<MetricsRegistry>); 3] {
    [
        ("no-obs", None),
        ("disabled-registry", Some(MetricsRegistry::disabled())),
        ("enabled-registry", Some(MetricsRegistry::new())),
    ]
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let cube = scaling_cube();
    let view = InstanceView::unrestricted();
    let engine = QueryEngine::with_config(ExecutionConfig::default().with_cache_capacity(0));
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
        .measure("StoreCost");
    let batch = dashboard(BATCH_PANELS);

    // -- B12 standalone roll-up under each variant ----------------------
    let mut group = c.benchmark_group("B18_metrics_overhead/standalone");
    group.throughput(Throughput::Elements(FACT_ROWS as u64));
    for (label, registry) in variants() {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let obs = registry.as_ref().map(|registry| QueryObs {
                registry,
                class: ClassId::DEFAULT,
                generation: 1,
            });
            b.iter(|| {
                engine
                    .execute_with_view_observed(&cube, black_box(&query), &view, None, obs)
                    .expect("roll-up executes")
            })
        });
    }
    group.finish();

    // -- B16-style shared-scan batch under each variant -----------------
    let mut group = c.benchmark_group("B18_metrics_overhead/batch");
    group.throughput(Throughput::Elements(FACT_ROWS as u64));
    for (label, registry) in variants() {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let obs = registry.as_ref().map(|registry| QueryObs {
                registry,
                class: ClassId::DEFAULT,
                generation: 1,
            });
            b.iter(|| {
                for result in
                    engine.execute_batch_observed(&cube, black_box(&batch), &view, None, obs)
                {
                    black_box(result.expect("panel executes"));
                }
            })
        });
    }
    group.finish();

    // -- the recording primitive itself ---------------------------------
    let mut group = c.benchmark_group("B18_metrics_overhead/record");
    let enabled = MetricsRegistry::new();
    let disabled = MetricsRegistry::disabled();
    group.bench_function("record_micros/enabled", |b| {
        b.iter(|| enabled.record_micros(Stage::QueryScan, ClassId::DEFAULT, black_box(1234)))
    });
    group.bench_function("record_micros/disabled", |b| {
        b.iter(|| disabled.record_micros(Stage::QueryScan, ClassId::DEFAULT, black_box(1234)))
    });
    group.bench_function("span/enabled", |b| {
        b.iter(|| enabled.span(Stage::QueryScan, ClassId::DEFAULT).finish())
    });
    group.bench_function("span/disabled", |b| {
        b.iter(|| disabled.span(Stage::QueryScan, ClassId::DEFAULT).finish())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_metrics_overhead
}
criterion_main!(benches);
