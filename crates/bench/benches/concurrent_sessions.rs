//! Concurrent multi-session serving: query throughput of one shared engine
//! as worker threads are added, plus concurrent session churn
//! (login → select → query → logout).
//!
//! The read path runs on hot-swapped cube snapshots and a sharded session
//! map, so aggregate query throughput should *scale* with threads rather
//! than serialise — the property the engine-core refactor exists for.
//!
//! Interpreting the numbers: on an N-core machine the fixed per-iteration
//! query batch should take ≈ 1/min(threads, N) of the single-thread time.
//! On a single-core runner (CI containers often are) the curve is flat
//! instead — and *flatness* is then the signal: adding contending threads
//! costs nothing, i.e. the read path does not convoy on any lock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_bench::{engine_for, engine_with_config, manager_location, scenario_at_scale};
use sdwp_core::PersonalizationEngine;
use sdwp_olap::{AttributeRef, ExecutionConfig, Query};
use sdwp_user::SessionId;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Queries executed per measured iteration, split across the workers.
const QUERIES_PER_ITER: usize = 64;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

fn city_query() -> Query {
    Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
}

/// One engine, one pre-started session per worker; measure wall-clock for
/// `QUERIES_PER_ITER` personalized queries split over `threads` workers.
/// Runs once with the result cache disabled (every query executes the
/// morsel pipeline) and once with it enabled (repeat queries are cache
/// hits), so the two scaling curves separate executor cost from cache
/// cost.
fn bench_query_scaling(c: &mut Criterion) {
    println!(
        "available parallelism: {} core(s)",
        thread::available_parallelism().map_or(1, |n| n.get())
    );
    let scenario = scenario_at_scale(4);
    let location = manager_location(&scenario);
    let query = city_query();
    let max_threads = 8;

    let mut group = c.benchmark_group("B10_concurrent_query_throughput");
    group.throughput(Throughput::Elements(QUERIES_PER_ITER as u64));
    for (label, config) in [
        (
            "uncached",
            ExecutionConfig::default().with_cache_capacity(0),
        ),
        ("cached", ExecutionConfig::default()),
    ] {
        let engine = engine_with_config(&scenario, config);
        let sessions: Vec<SessionId> = (0..max_threads)
            .map(|_| {
                engine
                    .start_session("regional-manager", Some(location.clone()))
                    .expect("session starts")
                    .id
            })
            .collect();
        let engine = Arc::new(engine);
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let per_worker = QUERIES_PER_ITER / threads;
                    let workers: Vec<_> = (0..threads)
                        .map(|w| {
                            let engine = Arc::clone(&engine);
                            let query = query.clone();
                            let session = sessions[w];
                            thread::spawn(move || {
                                for _ in 0..per_worker {
                                    criterion::black_box(
                                        engine.query(session, &query).expect("query runs"),
                                    );
                                }
                            })
                        })
                        .collect();
                    for worker in workers {
                        worker.join().expect("worker finishes");
                    }
                })
            });
        }
    }
    group.finish();
}

/// Full lifecycle churn: every worker logs in, records a selection, queries
/// and logs out, all against one shared engine.
fn bench_session_churn(c: &mut Criterion) {
    let scenario = scenario_at_scale(1);
    let location = manager_location(&scenario);
    let query = city_query();

    let mut group = c.benchmark_group("B11_concurrent_session_churn");
    for threads in [1usize, 4, 8] {
        // A fresh engine per parameter point so session history does not
        // accumulate across measurements.
        let engine: Arc<PersonalizationEngine> = Arc::new(engine_for(&scenario));
        group.throughput(Throughput::Elements(threads as u64));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let workers: Vec<_> = (0..threads)
                        .map(|_| {
                            let engine = Arc::clone(&engine);
                            let location = location.clone();
                            let query = query.clone();
                            thread::spawn(move || {
                                let handle = engine
                                    .start_session("regional-manager", Some(location))
                                    .expect("login");
                                engine
                                    .record_spatial_selection(handle.id, "GeoMD.Store.City", None)
                                    .expect("selection");
                                criterion::black_box(
                                    engine.query(handle.id, &query).expect("query"),
                                );
                                engine.end_session(handle.id).expect("logout");
                            })
                        })
                        .collect();
                    for worker in workers {
                        worker.join().expect("worker finishes");
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_query_scaling, bench_session_churn
}
criterion_main!(benches);
