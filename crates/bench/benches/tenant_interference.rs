//! B19 — tenant interference: a latency-bound dashboard tenant sharing
//! the morsel worker pool with a saturating analyst tenant, across three
//! regimes — solo (no co-tenant), contended with no policy (equal
//! shares, unlimited admission), and contended under the full tenant
//! policy: the dashboard weighted 8:1 and the analyst class budgeted to
//! one guaranteed in-flight query with a single queued helper, so
//! excess analyst callers park in admission instead of competing for
//! cores.
//!
//! Acceptance: under the governed regime the dashboard's p99 with a
//! saturating co-tenant stays within ~2× of its solo p99 (the open
//! regime lets every analyst call and its helpers race the dashboard,
//! which is exactly the starvation the weights and budgets prevent).
//! On hosts with a single hardware thread the tail is bounded by OS
//! preemption instead — the admitted analyst's *caller* scans on its
//! own thread, which the engine-level scheduler cannot deschedule — so
//! there the ~2× target applies to the mean and the governed/open gap
//! carries the story. A fourth group checks the pool against the
//! per-query `thread::scope` executor solo: reusing warm workers must
//! not cost single-query latency.
//!
//! Criterion reports the mean; the `B19 summary` lines printed per
//! regime carry the p50/p99 of the explicit sample loop that
//! EXPERIMENTS.md quotes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
use sdwp_obs::MetricsRegistry;
use sdwp_olap::{
    AttributeRef, CellValue, Cube, ExecutionConfig, InstanceView, MorselPool, PoolConfig, Query,
    QueryEngine, QueryObs, TenantPolicy,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fact rows in the benchmark cube (matches the B12 floor).
const FACT_ROWS: usize = 100_000;
const STORES: usize = 64;
const CITIES: usize = 8;
/// Saturating analyst threads in the contended regimes.
const ANALYST_THREADS: usize = 2;
/// Explicit dashboard latency samples per regime for the p50/p99 lines.
const SAMPLES: usize = 300;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// The B12 scaling cube: 64 stores across 8 cities, 100k sales rows.
fn scaling_cube() -> Cube {
    let schema = SchemaBuilder::new("ScalingDW")
        .dimension(
            DimensionBuilder::new("Store")
                .simple_level("Store", "name")
                .simple_level("City", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Sales")
                .measure("UnitSales", AttributeType::Float)
                .measure_with(
                    "StoreCost",
                    AttributeType::Float,
                    sdwp_model::AggregationFunction::Avg,
                )
                .dimension("Store")
                .build(),
        )
        .build()
        .expect("scaling schema is valid");
    let mut cube = Cube::new(schema);
    for store in 0..STORES {
        cube.add_dimension_member(
            "Store",
            vec![
                ("Store.name", CellValue::from(format!("S{store}"))),
                ("City.name", CellValue::from(format!("C{}", store % CITIES))),
            ],
        )
        .expect("member loads");
    }
    for row in 0..FACT_ROWS {
        let store = (row * 7 + row / STORES) % STORES;
        cube.add_fact_row(
            "Sales",
            vec![("Store", store)],
            vec![
                ("UnitSales", CellValue::Float((row % 97) as f64 * 0.25)),
                ("StoreCost", CellValue::Float((row % 53) as f64 * 0.5)),
            ],
        )
        .expect("fact loads");
    }
    cube
}

/// The dashboard tenant's latency-bound panel: a city roll-up.
fn dashboard_query() -> Query {
    Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
}

/// The analyst tenant's saturating workload: a store-level group-by
/// with every measure plus a COUNT DISTINCT — many more groups and far
/// wider accumulation than a panel, resubmitted in a tight loop so the
/// analyst class always has work in flight.
fn analyst_query() -> Query {
    Query::over("Sales")
        .group_by(AttributeRef::new("Store", "Store", "name"))
        .measure("UnitSales")
        .measure("StoreCost")
        .measure_agg("UnitSales", sdwp_model::AggregationFunction::CountDistinct)
}

fn percentile(sorted_micros: &[u64], q: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((sorted_micros.len() as f64 - 1.0) * q).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

/// Runs `SAMPLES` dashboard queries, returning sorted per-query
/// latencies in microseconds.
fn sample_dashboard(engine: &QueryEngine, cube: &Cube, obs: QueryObs<'_>) -> Vec<u64> {
    let view = InstanceView::unrestricted();
    let query = dashboard_query();
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let result = engine
            .execute_with_view_observed(cube, &query, &view, None, Some(obs))
            .expect("dashboard panel executes");
        samples.push(start.elapsed().as_micros() as u64);
        black_box(result);
    }
    samples.sort_unstable();
    samples
}

fn bench_tenant_interference(c: &mut Criterion) {
    let cube = Arc::new(scaling_cube());
    let registry = Arc::new(MetricsRegistry::new());
    let dashboard_class = registry.register_class("dashboard");
    let analyst_class = registry.register_class("analyst");
    let config = ExecutionConfig::default()
        .with_workers(4)
        .with_cache_capacity(0);

    // -- the interference matrix ----------------------------------------
    let mut group = c.benchmark_group("B19_tenant_interference/dashboard");
    group.throughput(Throughput::Elements(FACT_ROWS as u64));
    let mut solo_p99 = 0u64;
    for (label, analysts, governed) in [
        ("solo", 0usize, false),
        ("contended-open", ANALYST_THREADS, false),
        ("contended-governed", ANALYST_THREADS, true),
    ] {
        let pool = Arc::new(MorselPool::with_registry(
            PoolConfig::default().with_workers(3),
            Arc::clone(&registry),
        ));
        if governed {
            // The full policy toolkit: the dashboard outweighs the
            // analyst 8:1 in the worker scheduler, and the analyst class
            // is budgeted to one guaranteed in-flight query with at most
            // one queued helper item — its other callers park in
            // admission until the slot frees.
            pool.set_policy(dashboard_class, TenantPolicy::default().with_weight(8));
            pool.set_policy(
                analyst_class,
                TenantPolicy::default()
                    .with_max_in_flight(1)
                    .with_max_queued(1),
            );
        } else {
            pool.set_policy(dashboard_class, TenantPolicy::default());
            pool.set_policy(analyst_class, TenantPolicy::default());
        }
        let engine = Arc::new(QueryEngine::with_pool(config, Arc::clone(&pool)));

        // Saturating co-tenant: analyst threads loop their heavy query
        // through the same pool until told to stop. Each call takes its
        // admission slot first, exactly as the serving layer's gate does
        // — in the governed regime that parks every analyst but one.
        let stop = Arc::new(AtomicBool::new(false));
        let analysts: Vec<_> = (0..analysts)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let cube = Arc::clone(&cube);
                let pool = Arc::clone(&pool);
                let stop = Arc::clone(&stop);
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let view = InstanceView::unrestricted();
                    let query = analyst_query();
                    let obs = QueryObs {
                        registry: &registry,
                        class: analyst_class,
                        generation: 1,
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let _slot = pool
                            .try_admit(analyst_class)
                            .expect("guaranteed tenants are never shed");
                        black_box(
                            engine
                                .execute_with_view_observed(&cube, &query, &view, None, Some(obs))
                                .expect("analyst query executes"),
                        );
                    }
                })
            })
            .collect();

        let obs = QueryObs {
            registry: &registry,
            class: dashboard_class,
            generation: 1,
        };
        let samples = sample_dashboard(&engine, &cube, obs);
        let (p50, p90, p95, p99) = (
            percentile(&samples, 0.5),
            percentile(&samples, 0.9),
            percentile(&samples, 0.95),
            percentile(&samples, 0.99),
        );
        if label == "solo" {
            solo_p99 = p99;
        }
        let vs_solo = if solo_p99 > 0 {
            p99 as f64 / solo_p99 as f64
        } else {
            1.0
        };
        eprintln!(
            "B19 summary {label}: dashboard p50={p50}µs p90={p90}µs p95={p95}µs \
             p99={p99}µs ({vs_solo:.2}x solo p99)"
        );

        group.bench_function(label, |b| {
            let view = InstanceView::unrestricted();
            let query = dashboard_query();
            b.iter(|| {
                engine
                    .execute_with_view_observed(&cube, black_box(&query), &view, None, Some(obs))
                    .expect("dashboard panel executes")
            })
        });

        stop.store(true, Ordering::Relaxed);
        for analyst in analysts {
            analyst.join().expect("analyst thread exits");
        }
    }
    group.finish();

    // -- pool vs per-query thread::scope, solo ---------------------------
    // Reusing warm pool workers must not cost single-query latency
    // against the executor that spawns a scope per query.
    let mut group = c.benchmark_group("B19_tenant_interference/executor");
    group.throughput(Throughput::Elements(FACT_ROWS as u64));
    let view = InstanceView::unrestricted();
    let query = dashboard_query();
    let scoped = QueryEngine::with_config(config);
    group.bench_function("thread-scope", |b| {
        b.iter(|| {
            scoped
                .execute_with_view(&cube, black_box(&query), &view)
                .expect("scoped roll-up executes")
        })
    });
    let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(3)));
    let pooled = QueryEngine::with_pool(config, Arc::clone(&pool));
    group.bench_function("worker-pool", |b| {
        b.iter(|| {
            pooled
                .execute_with_view(&cube, black_box(&query), &view)
                .expect("pooled roll-up executes")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_tenant_interference
}
criterion_main!(benches);
