//! B14 — epoch publication cost vs warehouse size: chunked copy-on-write
//! storage against the flat (monolithic-chunk) layout it replaced.
//!
//! One measured iteration is exactly what the ingest worker does per
//! epoch for a one-row delta: apply the delta to the write master, then
//! publish (`master.clone()`) while the previous snapshot is still alive
//! (a reader may hold it). With the old flat layout the apply must copy
//! the whole dirty column — the snapshot shares it — so the epoch costs
//! O(warehouse). With fixed-size chunks only the tail chunk is copied and
//! the clone is a refcount sweep, so the curve should stay near-flat as
//! the warehouse grows: O(delta), not O(warehouse).
//!
//! The flat baseline is simulated faithfully by building the same cube
//! with one huge chunk per column (chunk size ≥ warehouse size) — the
//! copy-on-write machinery then degenerates to exactly the pre-chunking
//! clone-everything behaviour.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
use sdwp_olap::{CellValue, Cube, DEFAULT_CHUNK_ROWS};
use std::sync::Arc;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

/// Warehouse sizes swept (fact rows before the measured deltas).
const WAREHOUSE_ROWS: [usize; 3] = [10_000, 50_000, 100_000];

fn build_warehouse(rows: usize, chunk_rows: usize) -> Cube {
    let schema = SchemaBuilder::new("B14")
        .dimension(
            DimensionBuilder::new("Store")
                .simple_level("Store", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Sales")
                .measure("UnitSales", AttributeType::Float)
                .measure("StoreCost", AttributeType::Float)
                .dimension("Store")
                .build(),
        )
        .build()
        .expect("bench schema is valid");
    let mut cube = Cube::with_chunk_rows(schema, chunk_rows);
    for i in 0..8 {
        cube.add_dimension_member(
            "Store",
            vec![("Store.name", CellValue::from(format!("S{i}")))],
        )
        .expect("member loads");
    }
    for i in 0..rows {
        cube.add_fact_row(
            "Sales",
            vec![("Store", i % 8)],
            vec![
                ("UnitSales", CellValue::Float((i % 13) as f64)),
                ("StoreCost", CellValue::Float((i % 7) as f64)),
            ],
        )
        .expect("fact row loads");
    }
    cube
}

fn bench_snapshot_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("B14_snapshot_publish");
    for rows in WAREHOUSE_ROWS {
        for (layout, chunk_rows) in [("chunked", DEFAULT_CHUNK_ROWS), ("flat", rows + 8_192)] {
            let mut master = build_warehouse(rows, chunk_rows);
            // A live reader snapshot, as during serving: it is what forces
            // the copy-on-write on the next delta.
            let mut snapshot = Arc::new(master.clone());
            group.bench_with_input(BenchmarkId::new(layout, rows), &rows, |b, _| {
                b.iter(|| {
                    // One epoch: a one-row delta, then publish.
                    master
                        .add_fact_row(
                            "Sales",
                            vec![("Store", 0)],
                            vec![
                                ("UnitSales", CellValue::Float(1.0)),
                                ("StoreCost", CellValue::Float(2.0)),
                            ],
                        )
                        .expect("delta applies");
                    snapshot = Arc::new(master.clone());
                    black_box(Arc::strong_count(&snapshot))
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_snapshot_publish
}
criterion_main!(benches);
