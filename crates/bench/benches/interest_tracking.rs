//! B6 — interest-tracking throughput: how fast SpatialSelection events can
//! be ingested (each one fires the IntAirportCity acquisition rule and
//! updates the user model).

use criterion::{criterion_group, criterion_main, Criterion};
use sdwp_bench::{engine_for, manager_location, scenario_at_scale};
use std::hint::black_box;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

fn bench_interest_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_interest_tracking");
    let scenario = scenario_at_scale(1);
    let engine = engine_for(&scenario);
    let session = engine
        .start_session("regional-manager", Some(manager_location(&scenario)))
        .expect("session starts");

    group.bench_function("record_spatial_selection", |b| {
        b.iter(|| {
            engine
                .record_spatial_selection(session.id, black_box("GeoMD.Store.City"), None)
                .unwrap()
        })
    });

    // The same event delivered with an explicit expression (exact matching
    // against the rule's condition text).
    group.bench_function("record_with_expression_match", |b| {
        b.iter(|| {
            engine
                .record_spatial_selection(
                    session.id,
                    black_box("GeoMD.Store.City"),
                    Some("Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20"),
                )
                .unwrap()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_interest_tracking
}
criterion_main!(benches);
