//! B1 — the paper's central qualitative claim, quantified: analysing
//! through a personalized view avoids exploring the large SDW. Compares
//! roll-up query latency over the personalized view against the full cube
//! as the warehouse grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdwp_bench::{engine_for, manager_location, scenario_at_scale, STORE_SCALES};
use sdwp_olap::{AttributeRef, Query};
use std::hint::black_box;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

fn bench_personalized_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_personalized_vs_full_query");
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales");

    for scale in STORE_SCALES {
        let scenario = scenario_at_scale(scale);
        let facts = scenario.retail.sales.len();
        let engine = engine_for(&scenario);
        let session = engine
            .start_session("regional-manager", Some(manager_location(&scenario)))
            .expect("session starts");

        group.bench_with_input(
            BenchmarkId::new("personalized-view", facts),
            &facts,
            |b, _| b.iter(|| engine.query(session.id, black_box(&query)).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("full-cube", facts), &facts, |b, _| {
            b.iter(|| engine.query_unpersonalized(black_box(&query)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_personalized_vs_full
}
criterion_main!(benches);
