//! B4 — PRML parsing throughput: the paper corpus and synthetically grown
//! rule sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_prml::corpus::ALL_PAPER_RULES;
use sdwp_prml::{parse_rules, print_rule};
use std::hint::black_box;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// Builds a corpus of `n` distinct rules by renaming copies of the paper's
/// rules.
fn corpus_of(n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        let base = ALL_PAPER_RULES[i % ALL_PAPER_RULES.len()];
        let renamed = base.replacen("Rule:", &format!("Rule:generated{i}_"), 1);
        out.push_str(&renamed);
        out.push('\n');
    }
    out
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_prml_parse");

    let paper = ALL_PAPER_RULES.join("\n");
    group.throughput(Throughput::Bytes(paper.len() as u64));
    group.bench_function("paper-corpus", |b| {
        b.iter(|| parse_rules(black_box(&paper)).unwrap())
    });

    for n in [16usize, 64, 256] {
        let text = corpus_of(n);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("synthetic-rules", n), &n, |b, _| {
            b.iter(|| parse_rules(black_box(&text)).unwrap())
        });
    }

    // Round trip: parse + pretty-print (the cost of persisting rule
    // catalogues).
    let rules = parse_rules(&paper).unwrap();
    group.bench_function("pretty-print-paper-corpus", |b| {
        b.iter(|| {
            rules
                .iter()
                .map(|r| print_rule(black_box(r)).len())
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_parse
}
criterion_main!(benches);
