//! B12 — morsel-parallel group-by scaling: the same roll-up over a
//! ≥100 000-row fact table executed by the serial reference and by the
//! morsel pipeline at 1, 2, 4 and 8 workers. On an N-core machine the
//! parallel curve should drop towards 1/min(workers, N) of the
//! single-worker time; on a single-core CI runner flatness (no regression
//! from the morsel split) is the signal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};
use sdwp_olap::{AttributeRef, CellValue, Cube, ExecutionConfig, Query, QueryEngine};
use std::hint::black_box;
use std::time::Duration;

/// Fact rows in the benchmark cube (the acceptance floor is 100k).
const FACT_ROWS: usize = 100_000;
const STORES: usize = 64;
const CITIES: usize = 8;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// A flat sales cube sized for throughput measurement: 64 stores across
/// 8 cities, one fact row per synthetic sale.
fn scaling_cube() -> Cube {
    let schema = SchemaBuilder::new("ScalingDW")
        .dimension(
            DimensionBuilder::new("Store")
                .simple_level("Store", "name")
                .simple_level("City", "name")
                .build(),
        )
        .fact(
            FactBuilder::new("Sales")
                .measure("UnitSales", AttributeType::Float)
                .measure_with(
                    "StoreCost",
                    AttributeType::Float,
                    sdwp_model::AggregationFunction::Avg,
                )
                .dimension("Store")
                .build(),
        )
        .build()
        .expect("scaling schema is valid");
    let mut cube = Cube::new(schema);
    for store in 0..STORES {
        cube.add_dimension_member(
            "Store",
            vec![
                ("Store.name", CellValue::from(format!("S{store}"))),
                ("City.name", CellValue::from(format!("C{}", store % CITIES))),
            ],
        )
        .expect("member loads");
    }
    // A cheap deterministic value stream; exact dyadic values keep sums
    // reproducible across runs.
    for row in 0..FACT_ROWS {
        let store = (row * 7 + row / STORES) % STORES;
        cube.add_fact_row(
            "Sales",
            vec![("Store", store)],
            vec![
                ("UnitSales", CellValue::Float((row % 97) as f64 * 0.25)),
                ("StoreCost", CellValue::Float((row % 53) as f64 * 0.5)),
            ],
        )
        .expect("fact loads");
    }
    cube
}

fn bench_parallel_scaling(c: &mut Criterion) {
    println!(
        "available parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let cube = scaling_cube();
    let query = Query::over("Sales")
        .group_by(AttributeRef::new("Store", "City", "name"))
        .measure("UnitSales")
        .measure("StoreCost");

    let mut group = c.benchmark_group("B12_parallel_groupby_scaling");
    group.throughput(Throughput::Elements(FACT_ROWS as u64));

    let serial = QueryEngine::with_config(ExecutionConfig::serial().with_cache_capacity(0));
    group.bench_function("serial-reference", |b| {
        b.iter(|| serial.execute_serial(&cube, black_box(&query)).unwrap())
    });

    for workers in [1usize, 2, 4, 8] {
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(workers)
                .with_cache_capacity(0),
        );
        group.bench_with_input(
            BenchmarkId::new("morsel-workers", workers),
            &workers,
            |b, _| b.iter(|| engine.execute(&cube, black_box(&query)).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_parallel_scaling
}
criterion_main!(benches);
