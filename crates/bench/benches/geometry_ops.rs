//! B5 — spatial operator micro-benchmarks: the Distance, topological and
//! Intersection operators the paper adds to PRML, across geometry sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdwp_geometry::{
    distance, intersection, predicates, Coord, Geometry, LineString, Point, Polygon,
};
use std::hint::black_box;
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn zigzag_line(vertices: usize) -> LineString {
    let coords: Vec<Coord> = (0..vertices)
        .map(|i| Coord::new(i as f64, if i % 2 == 0 { 0.0 } else { 1.0 }))
        .collect();
    LineString::new(coords).expect("at least two vertices")
}

fn regular_polygon(vertices: usize) -> Polygon {
    let ring: Vec<Coord> = (0..vertices)
        .map(|i| {
            let a = i as f64 / vertices as f64 * std::f64::consts::TAU;
            Coord::new(50.0 + 30.0 * a.cos(), 50.0 + 30.0 * a.sin())
        })
        .collect();
    Polygon::new(ring, Vec::new()).expect("valid ring")
}

fn bench_geometry_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_geometry_operators");

    let a: Geometry = Point::new(0.0, 0.0).into();
    let b: Geometry = Point::new(3.0, 4.0).into();
    group.bench_function("distance/point-point", |bench| {
        bench.iter(|| distance::euclidean(black_box(&a), black_box(&b)))
    });

    for vertices in [16usize, 128, 1024] {
        let line: Geometry = zigzag_line(vertices).into();
        let point: Geometry = Point::new(vertices as f64 / 2.0, 5.0).into();
        group.bench_with_input(
            BenchmarkId::new("distance/point-line", vertices),
            &vertices,
            |bench, _| bench.iter(|| distance::euclidean(black_box(&point), black_box(&line))),
        );
        let other: Geometry = zigzag_line(vertices).into();
        group.bench_with_input(
            BenchmarkId::new("intersection/line-line", vertices),
            &vertices,
            |bench, _| {
                bench.iter(|| intersection::intersection(black_box(&line), black_box(&other)))
            },
        );
    }

    for vertices in [8usize, 64, 256] {
        let poly_a: Geometry = regular_polygon(vertices).into();
        let poly_b: Geometry = {
            let mut ring = regular_polygon(vertices);
            let shifted: Vec<Coord> = ring
                .exterior()
                .iter()
                .map(|c| Coord::new(c.x + 20.0, c.y))
                .collect();
            ring = Polygon::new(shifted, Vec::new()).unwrap();
            ring.into()
        };
        group.bench_with_input(
            BenchmarkId::new("predicate/intersects-polygons", vertices),
            &vertices,
            |bench, _| {
                bench.iter(|| predicates::intersects(black_box(&poly_a), black_box(&poly_b)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("predicate/inside-point-polygon", vertices),
            &vertices,
            |bench, _| {
                let p: Geometry = Point::new(50.0, 50.0).into();
                bench.iter(|| predicates::inside(black_box(&p), black_box(&poly_a)))
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_geometry_ops
}
criterion_main!(benches);
