//! B7 — schema-personalization cost: applying the Example 5.1 schema rule
//! (AddLayer + BecomeSpatial) to conceptual models of growing size.

use criterion::BatchSize;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdwp_geometry::GeometricType;
use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, Schema, SchemaBuilder};
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// Builds a schema with `dimensions` dimensions of `levels` levels each.
fn schema_of(dimensions: usize, levels: usize) -> Schema {
    let mut builder = SchemaBuilder::new("Synthetic");
    let mut fact = FactBuilder::new("Sales").measure("UnitSales", AttributeType::Float);
    for d in 0..dimensions {
        let mut dim = DimensionBuilder::new(format!("Dim{d}"));
        for l in 0..levels {
            dim = dim.simple_level(format!("Dim{d}Level{l}"), "name");
        }
        builder = builder.dimension(dim.build());
        fact = fact.dimension(format!("Dim{d}"));
    }
    builder
        .fact(fact.build())
        .build()
        .expect("synthetic schema is valid")
}

fn bench_schema_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_schema_personalization");
    for (dimensions, levels) in [(4usize, 3usize), (16, 4), (64, 6)] {
        let schema = schema_of(dimensions, levels);
        let elements = schema.element_count();
        let target_level = "Dim0Level0".to_string();
        group.bench_with_input(
            BenchmarkId::new("addlayer_becomespatial", elements),
            &elements,
            |b, _| {
                b.iter_batched(
                    || schema.clone(),
                    |mut schema| {
                        schema.add_layer("Airport", GeometricType::Point).unwrap();
                        schema
                            .become_spatial(&target_level, GeometricType::Point)
                            .unwrap();
                        schema
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("schema_diff", elements),
            &elements,
            |b, _| {
                let mut personalized = schema.clone();
                personalized
                    .add_layer("Airport", GeometricType::Point)
                    .unwrap();
                personalized
                    .become_spatial(&target_level, GeometricType::Point)
                    .unwrap();
                b.iter(|| sdwp_model::SchemaDiff::between(&schema, &personalized))
            },
        );
        group.bench_with_input(BenchmarkId::new("validate", elements), &elements, |b, _| {
            b.iter(|| sdwp_model::validate_schema(&schema).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_schema_rules
}
criterion_main!(benches);
