//! B3 — rule-engine throughput: session-start firing cost as the number of
//! registered rules grows.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sdwp_bench::{manager_location, scenario_at_scale};
use sdwp_prml::corpus::{EXAMPLE_5_1_ADD_SPATIALITY, EXAMPLE_5_2_5KM_STORES};
use sdwp_prml::{EvalContext, RuleEngine, RuntimeEvent};
use std::time::Duration;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

/// Builds a rule engine with `n` rules: renamed copies of the two
/// session-start rules of the paper (so every rule matches the event).
fn engine_with_rules(n: usize) -> RuleEngine {
    let mut engine = RuleEngine::new();
    for i in 0..n {
        let base = if i % 2 == 0 {
            EXAMPLE_5_1_ADD_SPATIALITY
        } else {
            EXAMPLE_5_2_5KM_STORES
        };
        let renamed = base.replacen("Rule:", &format!("Rule:rule{i}_"), 1);
        engine.add_rules_text(&renamed).unwrap();
    }
    engine
}

fn bench_rule_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_rule_engine_session_start");
    let scenario = scenario_at_scale(1);
    let layers = scenario.layer_source();
    let location = manager_location(&scenario);

    for rules in [2usize, 8, 32] {
        let engine = engine_with_rules(rules);
        group.bench_with_input(BenchmarkId::new("fire", rules), &rules, |b, _| {
            b.iter_batched(
                || {
                    (
                        scenario.cube.clone(),
                        scenario.manager.clone(),
                        sdwp_user::Session::start_at(1, "regional-manager", location.clone()),
                    )
                },
                |(mut cube, mut profile, session)| {
                    let mut ctx = EvalContext::new(&mut cube, &mut profile)
                        .with_session(&session)
                        .with_layer_source(&layers)
                        .with_parameter("threshold", 2.0);
                    engine.fire(&RuntimeEvent::SessionStart, &mut ctx).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_rule_engine
}
criterion_main!(benches);
