//! Shared fixtures for the benchmark harness.
//!
//! Every benchmark in `benches/` regenerates one experiment of
//! `EXPERIMENTS.md` (the B-series quantitative experiments plus the
//! pipeline benchmark for Fig. 1). The helpers here build scenarios and
//! engines at the scales the experiments sweep so the individual bench
//! files stay focused on the measurement itself.

#![warn(missing_docs)]

use sdwp_core::PersonalizationEngine;
use sdwp_datagen::{PaperScenario, ScenarioConfig};
use sdwp_prml::corpus::ALL_PAPER_RULES;
use sdwp_user::LocationContext;
use std::sync::Arc;

/// The store-count scales swept by the personalization benchmarks
/// (B1, B2, B8). Small enough to keep `cargo bench` minutes-scale while
/// still showing the trend the paper's claims imply.
pub const STORE_SCALES: [usize; 3] = [1, 4, 16];

/// Builds a scenario whose store/customer/fact counts are `scale` times the
/// tiny baseline (20 stores / 200 facts).
pub fn scenario_at_scale(scale: usize) -> PaperScenario {
    PaperScenario::generate(ScenarioConfig::tiny().scaled(scale))
}

/// Builds a default-sized scenario (200 stores, 5 000 facts).
pub fn default_scenario() -> PaperScenario {
    PaperScenario::generate(ScenarioConfig::default())
}

/// Builds a fully configured personalization engine over a scenario, with
/// the paper's four rules registered and the interest threshold set to 2.
/// Queries run through the default morsel-parallel executor and result
/// cache.
pub fn engine_for(scenario: &PaperScenario) -> PersonalizationEngine {
    engine_with_config(scenario, sdwp_olap::ExecutionConfig::default())
}

/// Builds a fully configured engine with an explicit executor
/// configuration (worker count, morsel size, cache capacity), so benches
/// can ablate the parallel pipeline and the result cache separately.
pub fn engine_with_config(
    scenario: &PaperScenario,
    config: sdwp_olap::ExecutionConfig,
) -> PersonalizationEngine {
    let engine = PersonalizationEngine::with_execution_config(
        scenario.cube.clone(),
        Arc::new(scenario.layer_source()),
        config,
    );
    engine.register_user(scenario.manager.clone());
    engine.set_parameter("threshold", 2.0);
    for rule in ALL_PAPER_RULES {
        engine
            .add_rules_text(rule)
            .expect("the paper's rules always register");
    }
    engine
}

/// A login location right next to the scenario's first store, so the 5 km
/// instance rule always selects a non-empty neighbourhood.
pub fn manager_location(scenario: &PaperScenario) -> LocationContext {
    let store = &scenario.retail.stores[0];
    LocationContext::at_point("office", store.location.x() + 0.5, store.location.y())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let scenario = scenario_at_scale(1);
        let engine = engine_for(&scenario);
        let session = engine
            .start_session("regional-manager", Some(manager_location(&scenario)))
            .unwrap();
        assert!(session.report.rules_matched > 0);
        assert_eq!(STORE_SCALES.len(), 3);
    }
}
