//! Facts («Fact» classes) and their measures.

use crate::attribute::Measure;
use crate::stereotype::Stereotype;
use serde::{Deserialize, Serialize};

/// A fact — the subject of analysis, holding measures and references to the
/// dimensions that give them context (the «Fact» class of the profile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fact {
    /// Fact name (unique within the schema), e.g. `"Sales"`.
    pub name: String,
    /// The measures («FactAttribute»s) of the fact.
    pub measures: Vec<Measure>,
    /// Names of the dimensions this fact is analysed by.
    pub dimensions: Vec<String>,
}

impl Fact {
    /// Creates a fact from its measures and dimension references.
    pub fn new(name: impl Into<String>, measures: Vec<Measure>, dimensions: Vec<String>) -> Self {
        Fact {
            name: name.into(),
            measures,
            dimensions,
        }
    }

    /// Looks up a measure by name.
    pub fn measure(&self, name: &str) -> Option<&Measure> {
        self.measures.iter().find(|m| m.name == name)
    }

    /// Returns `true` when the fact is analysed by the named dimension.
    pub fn references_dimension(&self, dimension: &str) -> bool {
        self.dimensions.iter().any(|d| d == dimension)
    }

    /// The UML-profile stereotype of the fact.
    pub fn stereotype(&self) -> Stereotype {
        Stereotype::Fact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AggregationFunction, AttributeType};

    fn sales() -> Fact {
        Fact::new(
            "Sales",
            vec![
                Measure::new("UnitSales", AttributeType::Float),
                Measure::with_aggregation(
                    "StoreCost",
                    AttributeType::Float,
                    AggregationFunction::Avg,
                ),
            ],
            vec![
                "Store".into(),
                "Customer".into(),
                "Product".into(),
                "Time".into(),
            ],
        )
    }

    #[test]
    fn measure_lookup() {
        let f = sales();
        assert!(f.measure("UnitSales").is_some());
        assert!(f.measure("Revenue").is_none());
        assert_eq!(f.measures.len(), 2);
    }

    #[test]
    fn dimension_references() {
        let f = sales();
        assert!(f.references_dimension("Store"));
        assert!(f.references_dimension("Time"));
        assert!(!f.references_dimension("Warehouse"));
    }

    #[test]
    fn stereotype() {
        assert_eq!(sales().stereotype(), Stereotype::Fact);
    }
}
