//! Textual and Graphviz-DOT rendering of schemas.
//!
//! The paper communicates its models as UML class diagrams (Figs. 2, 4
//! and 6). These renderers reproduce the same content as indented text and
//! as DOT graphs so the examples can print the "before" (MD) and "after"
//! (GeoMD) models of the personalization process.

use crate::schema::Schema;
use std::fmt::Write as _;

/// Renders the schema as an indented, stereotype-annotated outline.
pub fn render_text(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Schema '{}'", schema.name);
    for fact in &schema.facts {
        let _ = writeln!(out, "  {} {}", fact.stereotype().notation(), fact.name);
        for measure in &fact.measures {
            let _ = writeln!(
                out,
                "    {} {}: {} [{}]",
                measure.stereotype().notation(),
                measure.name,
                measure.data_type,
                measure.aggregation
            );
        }
        for dim in &fact.dimensions {
            let _ = writeln!(out, "    -> analysed by {dim}");
        }
    }
    for dim in &schema.dimensions {
        let _ = writeln!(out, "  {} {}", dim.stereotype().notation(), dim.name);
        for (i, level) in dim.levels.iter().enumerate() {
            let roll_up = if i + 1 < dim.levels.len() {
                format!(" (r-> {})", dim.levels[i + 1].name)
            } else {
                String::new()
            };
            let geometry = level
                .geometry
                .map(|g| format!(" geometry={g}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "    {} {}{}{}",
                level.stereotype().notation(),
                level.name,
                geometry,
                roll_up
            );
            for attr in &level.attributes {
                let _ = writeln!(
                    out,
                    "      {} {}: {}",
                    attr.stereotype().notation(),
                    attr.name,
                    attr.data_type
                );
            }
        }
    }
    for layer in &schema.layers {
        let _ = writeln!(
            out,
            "  {} {} geometry={}",
            layer.stereotype().notation(),
            layer.name,
            layer.geometry
        );
    }
    out
}

/// Renders the schema as a Graphviz DOT digraph. Facts, dimensions, levels
/// and layers become nodes; fact→dimension references and level roll-ups
/// become edges.
pub fn render_dot(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", schema.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=record, fontsize=10];");

    for fact in &schema.facts {
        let measures: Vec<String> = fact
            .measures
            .iter()
            .map(|m| format!("{}: {}", m.name, m.data_type))
            .collect();
        let _ = writeln!(
            out,
            "  \"fact_{}\" [label=\"{{«Fact» {}|{}}}\", style=filled, fillcolor=lightgrey];",
            fact.name,
            fact.name,
            measures.join("\\l")
        );
        for dim in &fact.dimensions {
            let _ = writeln!(out, "  \"fact_{}\" -> \"dim_{}\";", fact.name, dim);
        }
    }

    for dim in &schema.dimensions {
        let _ = writeln!(
            out,
            "  \"dim_{}\" [label=\"«Dimension» {}\"];",
            dim.name, dim.name
        );
        let mut previous: Option<String> = None;
        for level in &dim.levels {
            let node = format!("level_{}_{}", dim.name, level.name);
            let attrs: Vec<String> = level
                .attributes
                .iter()
                .map(|a| format!("{}: {}", a.name, a.data_type))
                .collect();
            let stereotype = level.stereotype();
            let color = if level.is_spatial() {
                ", style=filled, fillcolor=lightblue"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{{«{}» {}|{}}}\"{}];",
                node,
                stereotype,
                level.name,
                attrs.join("\\l"),
                color
            );
            match previous {
                None => {
                    let _ = writeln!(out, "  \"dim_{}\" -> \"{}\";", dim.name, node);
                }
                Some(prev) => {
                    let _ = writeln!(out, "  \"{prev}\" -> \"{node}\" [label=\"r\"];");
                }
            }
            previous = Some(node);
        }
    }

    for layer in &schema.layers {
        let _ = writeln!(
            out,
            "  \"layer_{}\" [label=\"«Layer» {} ({})\", style=filled, fillcolor=lightgreen];",
            layer.name, layer.name, layer.geometry
        );
    }

    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeType;
    use crate::builder::{DimensionBuilder, FactBuilder, SchemaBuilder};
    use sdwp_geometry::GeometricType;

    fn schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .spatial_level("Store", "name", GeometricType::Point)
                    .simple_level("City", "name")
                    .simple_level("State", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .layer("Airport", GeometricType::Point)
            .build()
            .unwrap()
    }

    #[test]
    fn text_rendering_mentions_every_element() {
        let text = render_text(&schema());
        assert!(text.contains("Schema 'SalesDW'"));
        assert!(text.contains("«Fact» Sales"));
        assert!(text.contains("«FactAttribute» UnitSales"));
        assert!(text.contains("«Dimension» Store"));
        assert!(text.contains("«SpatialLevel» Store geometry=POINT"));
        assert!(text.contains("«Base» City"));
        assert!(text.contains("(r-> State)"));
        assert!(text.contains("«Layer» Airport geometry=POINT"));
    }

    #[test]
    fn dot_rendering_is_well_formed() {
        let dot = render_dot(&schema());
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("fact_Sales"));
        assert!(dot.contains("dim_Store"));
        assert!(dot.contains("level_Store_City"));
        assert!(dot.contains("layer_Airport"));
        // Roll-up edge between consecutive levels.
        assert!(dot.contains("\"level_Store_Store\" -> \"level_Store_City\""));
    }

    #[test]
    fn rendering_without_layers_or_spatial_levels() {
        let plain = SchemaBuilder::new("Plain")
            .dimension(
                DimensionBuilder::new("Time")
                    .simple_level("Day", "date")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        let text = render_text(&plain);
        assert!(!text.contains("«Layer»"));
        assert!(!text.contains("SpatialLevel"));
        let dot = render_dot(&plain);
        assert!(!dot.contains("layer_"));
    }
}
