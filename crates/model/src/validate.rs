//! Schema well-formedness validation.

use crate::error::ModelError;
use crate::schema::Schema;
use std::collections::HashSet;

/// Validates a schema's structural well-formedness:
///
/// * schema, fact, dimension and layer names are unique;
/// * level names are unique within a dimension and attribute names unique
///   within a level;
/// * measure names are unique within a fact;
/// * every dimension has at least one level and every level has at least
///   one attribute;
/// * every fact references at least one dimension and only declared
///   dimensions;
/// * SUM/AVG measures are numeric.
pub fn validate_schema(schema: &Schema) -> Result<(), ModelError> {
    if schema.name.trim().is_empty() {
        return Err(ModelError::Invalid {
            message: "schema name is empty".into(),
        });
    }

    let mut dim_names = HashSet::new();
    for dim in &schema.dimensions {
        if !dim_names.insert(dim.name.as_str()) {
            return Err(ModelError::DuplicateName {
                kind: "dimension",
                name: dim.name.clone(),
            });
        }
        if dim.levels.is_empty() {
            return Err(ModelError::EmptyDimension {
                dimension: dim.name.clone(),
            });
        }
        let mut level_names = HashSet::new();
        for level in &dim.levels {
            if !level_names.insert(level.name.as_str()) {
                return Err(ModelError::DuplicateName {
                    kind: "level",
                    name: level.name.clone(),
                });
            }
            if level.attributes.is_empty() {
                return Err(ModelError::Invalid {
                    message: format!(
                        "level '{}' of dimension '{}' has no attributes",
                        level.name, dim.name
                    ),
                });
            }
            let mut attr_names = HashSet::new();
            for attr in &level.attributes {
                if !attr_names.insert(attr.name.as_str()) {
                    return Err(ModelError::DuplicateName {
                        kind: "attribute",
                        name: attr.name.clone(),
                    });
                }
            }
        }
    }

    let mut fact_names = HashSet::new();
    for fact in &schema.facts {
        if !fact_names.insert(fact.name.as_str()) {
            return Err(ModelError::DuplicateName {
                kind: "fact",
                name: fact.name.clone(),
            });
        }
        if fact.dimensions.is_empty() {
            return Err(ModelError::FactWithoutDimensions {
                fact: fact.name.clone(),
            });
        }
        for dim in &fact.dimensions {
            if schema.dimension(dim).is_none() {
                return Err(ModelError::UnknownElement {
                    kind: "dimension",
                    name: dim.clone(),
                });
            }
        }
        let mut measure_names = HashSet::new();
        for measure in &fact.measures {
            if !measure_names.insert(measure.name.as_str()) {
                return Err(ModelError::DuplicateName {
                    kind: "measure",
                    name: measure.name.clone(),
                });
            }
            use crate::attribute::AggregationFunction::{Avg, Sum};
            if matches!(measure.aggregation, Sum | Avg) && !measure.data_type.is_numeric() {
                return Err(ModelError::Invalid {
                    message: format!(
                        "measure '{}' uses {} aggregation but has non-numeric type {}",
                        measure.name, measure.aggregation, measure.data_type
                    ),
                });
            }
        }
    }

    let mut layer_names = HashSet::new();
    for layer in &schema.layers {
        if !layer_names.insert(layer.name.as_str()) {
            return Err(ModelError::DuplicateName {
                kind: "layer",
                name: layer.name.clone(),
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AggregationFunction, Attribute, AttributeType, Measure};
    use crate::builder::{DimensionBuilder, FactBuilder, SchemaBuilder};
    use crate::dimension::{Dimension, Level};
    use crate::fact::Fact;

    fn valid() -> Schema {
        SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build_unchecked()
    }

    #[test]
    fn valid_schema_passes() {
        assert!(validate_schema(&valid()).is_ok());
    }

    #[test]
    fn empty_name_fails() {
        let mut s = valid();
        s.name = "  ".into();
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::Invalid { .. })
        ));
    }

    #[test]
    fn duplicate_dimension_fails() {
        let mut s = valid();
        s.dimensions.push(
            DimensionBuilder::new("Store")
                .simple_level("Other", "name")
                .build(),
        );
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::DuplicateName {
                kind: "dimension",
                ..
            })
        ));
    }

    #[test]
    fn empty_dimension_fails() {
        let mut s = valid();
        s.dimensions.push(Dimension::new("Empty", vec![]));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn duplicate_level_fails() {
        let mut s = valid();
        s.dimensions.push(Dimension::new(
            "Time",
            vec![
                Level::with_descriptor("Day", "d"),
                Level::with_descriptor("Day", "d"),
            ],
        ));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::DuplicateName { kind: "level", .. })
        ));
    }

    #[test]
    fn level_without_attributes_fails() {
        let mut s = valid();
        s.dimensions
            .push(Dimension::new("Time", vec![Level::new("Day", vec![])]));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::Invalid { .. })
        ));
    }

    #[test]
    fn duplicate_attribute_fails() {
        let mut s = valid();
        s.dimensions.push(Dimension::new(
            "Time",
            vec![Level::new(
                "Day",
                vec![
                    Attribute::descriptor("name", AttributeType::Text),
                    Attribute::new("name", AttributeType::Integer),
                ],
            )],
        ));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::DuplicateName {
                kind: "attribute",
                ..
            })
        ));
    }

    #[test]
    fn fact_without_dimensions_fails() {
        let mut s = valid();
        s.facts.push(Fact::new(
            "Orphan",
            vec![Measure::new("x", AttributeType::Float)],
            vec![],
        ));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::FactWithoutDimensions { .. })
        ));
    }

    #[test]
    fn fact_referencing_unknown_dimension_fails() {
        let mut s = valid();
        s.facts.push(Fact::new(
            "Shipments",
            vec![Measure::new("x", AttributeType::Float)],
            vec!["Warehouse".into()],
        ));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::UnknownElement {
                kind: "dimension",
                ..
            })
        ));
    }

    #[test]
    fn duplicate_measure_fails() {
        let mut s = valid();
        s.facts[0]
            .measures
            .push(Measure::new("UnitSales", AttributeType::Float));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::DuplicateName {
                kind: "measure",
                ..
            })
        ));
    }

    #[test]
    fn non_numeric_sum_measure_fails() {
        let mut s = valid();
        s.facts[0].measures.push(Measure::with_aggregation(
            "Comment",
            AttributeType::Text,
            AggregationFunction::Sum,
        ));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::Invalid { .. })
        ));
        // Non-numeric measures with MIN/MAX/COUNT are fine.
        s.facts[0].measures.pop();
        s.facts[0].measures.push(Measure::with_aggregation(
            "Comment",
            AttributeType::Text,
            AggregationFunction::Count,
        ));
        assert!(validate_schema(&s).is_ok());
    }

    #[test]
    fn duplicate_layer_fails() {
        let mut s = valid();
        s.layers.push(crate::geo::Layer::new(
            "Airport",
            sdwp_geometry::GeometricType::Point,
        ));
        s.layers.push(crate::geo::Layer::new(
            "Airport",
            sdwp_geometry::GeometricType::Point,
        ));
        assert!(matches!(
            validate_schema(&s),
            Err(ModelError::DuplicateName { kind: "layer", .. })
        ));
    }
}
