//! Attributes, measures and their data types.

use crate::stereotype::Stereotype;
use sdwp_geometry::GeometricType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The data type of an attribute or measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean flag.
    Boolean,
    /// A date, stored as days since an epoch by the OLAP layer.
    Date,
    /// A geometry of the given geometric type (GeoMD extension).
    Geometry(GeometricType),
}

impl AttributeType {
    /// Returns `true` when the attribute carries a geometry.
    pub fn is_spatial(&self) -> bool {
        matches!(self, AttributeType::Geometry(_))
    }

    /// Returns `true` when the type supports arithmetic aggregation
    /// (SUM / AVG).
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttributeType::Integer | AttributeType::Float)
    }
}

impl fmt::Display for AttributeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeType::Integer => write!(f, "Integer"),
            AttributeType::Float => write!(f, "Float"),
            AttributeType::Text => write!(f, "Text"),
            AttributeType::Boolean => write!(f, "Boolean"),
            AttributeType::Date => write!(f, "Date"),
            AttributeType::Geometry(g) => write!(f, "Geometry({g})"),
        }
    }
}

/// The aggregation function applied to a measure when rolling up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AggregationFunction {
    /// Sum of values (additive measures such as UnitSales).
    #[default]
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// Number of rows.
    Count,
    /// Number of distinct values.
    CountDistinct,
}

impl AggregationFunction {
    /// All aggregation functions.
    pub const ALL: [AggregationFunction; 6] = [
        AggregationFunction::Sum,
        AggregationFunction::Avg,
        AggregationFunction::Min,
        AggregationFunction::Max,
        AggregationFunction::Count,
        AggregationFunction::CountDistinct,
    ];

    /// Parses the SQL-like spelling of the function (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggregationFunction::Sum),
            "AVG" | "MEAN" => Some(AggregationFunction::Avg),
            "MIN" => Some(AggregationFunction::Min),
            "MAX" => Some(AggregationFunction::Max),
            "COUNT" => Some(AggregationFunction::Count),
            "COUNT_DISTINCT" | "COUNTDISTINCT" => Some(AggregationFunction::CountDistinct),
            _ => None,
        }
    }
}

impl fmt::Display for AggregationFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregationFunction::Sum => "SUM",
            AggregationFunction::Avg => "AVG",
            AggregationFunction::Min => "MIN",
            AggregationFunction::Max => "MAX",
            AggregationFunction::Count => "COUNT",
            AggregationFunction::CountDistinct => "COUNT_DISTINCT",
        };
        f.write_str(s)
    }
}

/// A descriptive attribute of a hierarchy level («Descriptor» or
/// «DimensionAttribute»).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (unique within its level).
    pub name: String,
    /// Data type.
    pub data_type: AttributeType,
    /// Whether this is the level's identifying descriptor.
    pub is_descriptor: bool,
}

impl Attribute {
    /// Creates a non-descriptor attribute.
    pub fn new(name: impl Into<String>, data_type: AttributeType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
            is_descriptor: false,
        }
    }

    /// Creates the identifying descriptor attribute of a level.
    pub fn descriptor(name: impl Into<String>, data_type: AttributeType) -> Self {
        Attribute {
            name: name.into(),
            data_type,
            is_descriptor: true,
        }
    }

    /// The UML-profile stereotype of the attribute.
    pub fn stereotype(&self) -> Stereotype {
        if self.is_descriptor {
            Stereotype::Descriptor
        } else {
            Stereotype::DimensionAttribute
        }
    }
}

/// A measure of a fact («FactAttribute»), aggregated when rolling up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measure {
    /// Measure name (unique within its fact).
    pub name: String,
    /// Data type (usually numeric; a geometry makes it a «SpatialMeasure»).
    pub data_type: AttributeType,
    /// Default aggregation function.
    pub aggregation: AggregationFunction,
}

impl Measure {
    /// Creates a measure with the default (SUM) aggregation.
    pub fn new(name: impl Into<String>, data_type: AttributeType) -> Self {
        Measure {
            name: name.into(),
            data_type,
            aggregation: AggregationFunction::Sum,
        }
    }

    /// Creates a measure with an explicit aggregation function.
    pub fn with_aggregation(
        name: impl Into<String>,
        data_type: AttributeType,
        aggregation: AggregationFunction,
    ) -> Self {
        Measure {
            name: name.into(),
            data_type,
            aggregation,
        }
    }

    /// The UML-profile stereotype of the measure.
    pub fn stereotype(&self) -> Stereotype {
        if self.data_type.is_spatial() {
            Stereotype::SpatialMeasure
        } else {
            Stereotype::FactAttribute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_types() {
        assert!(AttributeType::Geometry(GeometricType::Point).is_spatial());
        assert!(!AttributeType::Text.is_spatial());
        assert!(AttributeType::Integer.is_numeric());
        assert!(AttributeType::Float.is_numeric());
        assert!(!AttributeType::Date.is_numeric());
        assert_eq!(
            AttributeType::Geometry(GeometricType::Line).to_string(),
            "Geometry(LINE)"
        );
    }

    #[test]
    fn aggregation_parse_round_trip() {
        for agg in AggregationFunction::ALL {
            assert_eq!(AggregationFunction::parse(&agg.to_string()), Some(agg));
        }
        assert_eq!(
            AggregationFunction::parse("avg"),
            Some(AggregationFunction::Avg)
        );
        assert_eq!(AggregationFunction::parse("median"), None);
        assert_eq!(AggregationFunction::default(), AggregationFunction::Sum);
    }

    #[test]
    fn attribute_stereotypes() {
        let d = Attribute::descriptor("name", AttributeType::Text);
        assert!(d.is_descriptor);
        assert_eq!(d.stereotype(), Stereotype::Descriptor);
        let a = Attribute::new("population", AttributeType::Integer);
        assert_eq!(a.stereotype(), Stereotype::DimensionAttribute);
    }

    #[test]
    fn measure_stereotypes() {
        let m = Measure::new("UnitSales", AttributeType::Float);
        assert_eq!(m.stereotype(), Stereotype::FactAttribute);
        assert_eq!(m.aggregation, AggregationFunction::Sum);
        let spatial = Measure::new(
            "CoveredArea",
            AttributeType::Geometry(GeometricType::Polygon),
        );
        assert_eq!(spatial.stereotype(), Stereotype::SpatialMeasure);
        let avg =
            Measure::with_aggregation("StoreCost", AttributeType::Float, AggregationFunction::Avg);
        assert_eq!(avg.aggregation, AggregationFunction::Avg);
    }
}
