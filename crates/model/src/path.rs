//! PRML-style path expressions over the MD / GeoMD models.
//!
//! The paper navigates models with OCL-like path expressions:
//!
//! * `MD.Sales.Store.State.name` — from the `Sales` fact through the
//!   `Store` dimension up to the `State` level's `name` descriptor;
//! * `GeoMD.Sales.Store.geometry` — the geometric description of the
//!   `Store` spatial level;
//! * `GeoMD.Airport.geometry` — the geometry of the `Airport` layer;
//! * `GeoMD.Store.City` — the `City` level itself (used as the range of a
//!   `Foreach` iteration).
//!
//! [`PathExpr`] is the parsed expression and [`PathResolver`] resolves it
//! against a [`Schema`] into a typed [`PathTarget`]. Expressions with the
//! `SUS` prefix belong to the user model and are resolved by `sdwp-user`.

use crate::error::ModelError;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The model a path expression starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathPrefix {
    /// `MD.` — the plain multidimensional model.
    Md,
    /// `GeoMD.` — the geographic multidimensional model.
    GeoMd,
    /// `SUS.` — the spatial-aware user model (resolved elsewhere).
    Sus,
}

impl PathPrefix {
    /// Parses the textual prefix (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "md" => Some(PathPrefix::Md),
            "geomd" => Some(PathPrefix::GeoMd),
            "sus" => Some(PathPrefix::Sus),
            _ => None,
        }
    }
}

impl fmt::Display for PathPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathPrefix::Md => write!(f, "MD"),
            PathPrefix::GeoMd => write!(f, "GeoMD"),
            PathPrefix::Sus => write!(f, "SUS"),
        }
    }
}

/// A parsed path expression: a prefix plus dot-separated segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathExpr {
    /// The model the path starts from.
    pub prefix: PathPrefix,
    /// The dot-separated navigation steps after the prefix.
    pub segments: Vec<String>,
}

impl PathExpr {
    /// Creates a path expression from a prefix and segments.
    pub fn new(prefix: PathPrefix, segments: Vec<String>) -> Self {
        PathExpr { prefix, segments }
    }

    /// Parses a textual path such as `"GeoMD.Store.City.geometry"`.
    pub fn parse(text: &str) -> Result<Self, ModelError> {
        let mut parts = text.split('.').map(str::trim);
        let prefix_text = parts.next().unwrap_or("");
        let prefix = PathPrefix::parse(prefix_text).ok_or_else(|| ModelError::PathResolution {
            path: text.to_string(),
            reason: format!("unknown prefix '{prefix_text}' (expected MD, GeoMD or SUS)"),
        })?;
        let segments: Vec<String> = parts.map(str::to_string).collect();
        if segments.is_empty() || segments.iter().any(String::is_empty) {
            return Err(ModelError::PathResolution {
                path: text.to_string(),
                reason: "path needs at least one non-empty segment after the prefix".into(),
            });
        }
        Ok(PathExpr { prefix, segments })
    }

    /// The final segment of the path.
    pub fn last_segment(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix)?;
        for s in &self.segments {
            write!(f, ".{s}")?;
        }
        Ok(())
    }
}

/// The typed model element a path resolves to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathTarget {
    /// A fact class.
    Fact {
        /// Fact name.
        fact: String,
    },
    /// A measure of a fact.
    Measure {
        /// Fact name.
        fact: String,
        /// Measure name.
        measure: String,
    },
    /// A whole dimension.
    Dimension {
        /// Dimension name.
        dimension: String,
    },
    /// A hierarchy level (e.g. the range of a `Foreach`).
    Level {
        /// Dimension name.
        dimension: String,
        /// Level name.
        level: String,
    },
    /// A descriptive attribute of a level.
    LevelAttribute {
        /// Dimension name.
        dimension: String,
        /// Level name.
        level: String,
        /// Attribute name.
        attribute: String,
    },
    /// The geometric description of a spatial level.
    LevelGeometry {
        /// Dimension name.
        dimension: String,
        /// Level name.
        level: String,
    },
    /// A thematic layer.
    Layer {
        /// Layer name.
        layer: String,
    },
    /// The geometry of a thematic layer.
    LayerGeometry {
        /// Layer name.
        layer: String,
    },
}

impl PathTarget {
    /// Returns `true` when the target denotes a geometry-valued element.
    pub fn is_spatial(&self) -> bool {
        matches!(
            self,
            PathTarget::LevelGeometry { .. } | PathTarget::LayerGeometry { .. }
        )
    }

    /// Returns `true` when the target can be iterated over by a `Foreach`
    /// (a level, layer, dimension or fact — anything with instances).
    pub fn is_iterable(&self) -> bool {
        matches!(
            self,
            PathTarget::Level { .. }
                | PathTarget::Layer { .. }
                | PathTarget::Dimension { .. }
                | PathTarget::Fact { .. }
        )
    }
}

/// Resolves path expressions against a schema.
#[derive(Debug, Clone, Copy)]
pub struct PathResolver<'a> {
    schema: &'a Schema,
}

/// The keyword that selects the geometric description of an element.
pub const GEOMETRY_SEGMENT: &str = "geometry";

impl<'a> PathResolver<'a> {
    /// Creates a resolver over the given schema.
    pub fn new(schema: &'a Schema) -> Self {
        PathResolver { schema }
    }

    /// Resolves a textual path (convenience wrapper over
    /// [`PathExpr::parse`] + [`PathResolver::resolve`]).
    pub fn resolve_text(&self, text: &str) -> Result<PathTarget, ModelError> {
        let expr = PathExpr::parse(text)?;
        self.resolve(&expr)
    }

    /// Resolves a parsed path expression to a typed target.
    pub fn resolve(&self, expr: &PathExpr) -> Result<PathTarget, ModelError> {
        if expr.prefix == PathPrefix::Sus {
            return Err(ModelError::PathResolution {
                path: expr.to_string(),
                reason: "SUS paths are resolved against the user model, not the schema".into(),
            });
        }
        let segs: Vec<&str> = expr.segments.iter().map(String::as_str).collect();
        let err = |reason: String| ModelError::PathResolution {
            path: expr.to_string(),
            reason,
        };

        let mut i = 0;
        let mut fact_name: Option<&str> = None;

        // Optional leading fact segment (the paper's MD paths start at the
        // fact class).
        if let Some(fact) = self.schema.fact(segs[0]) {
            fact_name = Some(fact.name.as_str());
            i = 1;
            if i < segs.len() {
                if let Some(measure) = fact.measure(segs[i]) {
                    if i + 1 != segs.len() {
                        return Err(err(format!(
                            "measure '{}' cannot be navigated further",
                            measure.name
                        )));
                    }
                    return Ok(PathTarget::Measure {
                        fact: fact.name.clone(),
                        measure: measure.name.clone(),
                    });
                }
            }
        }

        if i >= segs.len() {
            return match fact_name {
                Some(f) => Ok(PathTarget::Fact {
                    fact: f.to_string(),
                }),
                None => Err(err("empty path".into())),
            };
        }

        // Layer?
        if let Some(layer) = self.schema.layer(segs[i]) {
            i += 1;
            if i == segs.len() {
                return Ok(PathTarget::Layer {
                    layer: layer.name.clone(),
                });
            }
            if segs[i].eq_ignore_ascii_case(GEOMETRY_SEGMENT) && i + 1 == segs.len() {
                return Ok(PathTarget::LayerGeometry {
                    layer: layer.name.clone(),
                });
            }
            return Err(err(format!(
                "layer '{}' only supports the '.geometry' navigation",
                layer.name
            )));
        }

        // Dimension (or directly a level of some dimension).
        let (dimension, mut level) = if let Some(dim) = self.schema.dimension(segs[i]) {
            let leaf = dim.leaf_level().ok_or_else(|| ModelError::EmptyDimension {
                dimension: dim.name.clone(),
            })?;
            (dim, leaf)
        } else if let Some((dim_name, level)) = self.schema.find_level(segs[i]) {
            let dim = self
                .schema
                .dimension(dim_name)
                .expect("find_level returned an existing dimension");
            (dim, level)
        } else {
            return Err(err(format!(
                "'{}' is not a fact, dimension, level or layer of schema '{}'",
                segs[i], self.schema.name
            )));
        };
        i += 1;

        while i < segs.len() {
            let seg = segs[i];
            let is_last = i + 1 == segs.len();
            if seg.eq_ignore_ascii_case(GEOMETRY_SEGMENT) {
                if !is_last {
                    return Err(err("'.geometry' must be the final segment".into()));
                }
                if !level.is_spatial() {
                    return Err(ModelError::NotSpatial {
                        element: format!("{}.{}", dimension.name, level.name),
                    });
                }
                return Ok(PathTarget::LevelGeometry {
                    dimension: dimension.name.clone(),
                    level: level.name.clone(),
                });
            }
            if let Some(next_level) = dimension.level(seg) {
                level = next_level;
                i += 1;
                continue;
            }
            if let Some(attr) = level.attribute(seg) {
                if !is_last {
                    return Err(err(format!(
                        "attribute '{}' cannot be navigated further",
                        attr.name
                    )));
                }
                return Ok(PathTarget::LevelAttribute {
                    dimension: dimension.name.clone(),
                    level: level.name.clone(),
                    attribute: attr.name.clone(),
                });
            }
            return Err(err(format!(
                "'{}' is neither a level of dimension '{}' nor an attribute of level '{}'",
                seg, dimension.name, level.name
            )));
        }

        Ok(PathTarget::Level {
            dimension: dimension.name.clone(),
            level: level.name.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{Attribute, AttributeType};
    use crate::builder::{DimensionBuilder, FactBuilder, SchemaBuilder};
    use sdwp_geometry::GeometricType;

    /// A schema close to Fig. 6 of the paper: Sales fact, Store dimension
    /// with Store→City→State hierarchy (Store spatial), an Airport layer.
    fn geomd_schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .level(
                        "Store",
                        vec![
                            Attribute::descriptor("name", AttributeType::Text),
                            Attribute::new("address", AttributeType::Text),
                        ],
                    )
                    .spatial_level("City", "name", GeometricType::Point)
                    .simple_level("State", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .simple_level("Day", "date")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure("StoreCost", AttributeType::Float)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .layer("Airport", GeometricType::Point)
            .build()
            .unwrap()
    }

    #[test]
    fn parse_and_display() {
        let p = PathExpr::parse("GeoMD.Store.City.geometry").unwrap();
        assert_eq!(p.prefix, PathPrefix::GeoMd);
        assert_eq!(p.segments.len(), 3);
        assert_eq!(p.to_string(), "GeoMD.Store.City.geometry");
        assert_eq!(p.last_segment(), "geometry");
        assert!(PathExpr::parse("Bogus.X").is_err());
        assert!(PathExpr::parse("MD.").is_err());
        assert!(PathExpr::parse("MD").is_err());
        assert_eq!(
            PathExpr::parse("sus.DecisionMaker.name").unwrap().prefix,
            PathPrefix::Sus
        );
    }

    #[test]
    fn resolve_measure_via_fact() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        let t = r.resolve_text("MD.Sales.UnitSales").unwrap();
        assert_eq!(
            t,
            PathTarget::Measure {
                fact: "Sales".into(),
                measure: "UnitSales".into()
            }
        );
    }

    #[test]
    fn resolve_fact_alone() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        assert_eq!(
            r.resolve_text("MD.Sales").unwrap(),
            PathTarget::Fact {
                fact: "Sales".into()
            }
        );
    }

    #[test]
    fn resolve_attribute_through_hierarchy() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        // Paper example: MD.Sale.Store.State.name (with our fact named Sales).
        let t = r.resolve_text("MD.Sales.Store.State.name").unwrap();
        assert_eq!(
            t,
            PathTarget::LevelAttribute {
                dimension: "Store".into(),
                level: "State".into(),
                attribute: "name".into()
            }
        );
        // Leaf level attribute without climbing.
        let t2 = r.resolve_text("MD.Sales.Store.address").unwrap();
        assert_eq!(
            t2,
            PathTarget::LevelAttribute {
                dimension: "Store".into(),
                level: "Store".into(),
                attribute: "address".into()
            }
        );
    }

    #[test]
    fn resolve_level_geometry() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        let t = r.resolve_text("GeoMD.Store.City.geometry").unwrap();
        assert_eq!(
            t,
            PathTarget::LevelGeometry {
                dimension: "Store".into(),
                level: "City".into()
            }
        );
        assert!(t.is_spatial());
        // Geometry of a non-spatial level is an error.
        let err = r.resolve_text("GeoMD.Store.State.geometry").unwrap_err();
        assert!(matches!(err, ModelError::NotSpatial { .. }));
    }

    #[test]
    fn resolve_level_for_iteration() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        // Paper: Foreach s in (GeoMD.Store)
        let t = r.resolve_text("GeoMD.Store").unwrap();
        assert_eq!(
            t,
            PathTarget::Level {
                dimension: "Store".into(),
                level: "Store".into()
            }
        );
        assert!(t.is_iterable());
        // Explicit coarser level.
        let t2 = r.resolve_text("GeoMD.Store.City").unwrap();
        assert_eq!(
            t2,
            PathTarget::Level {
                dimension: "Store".into(),
                level: "City".into()
            }
        );
    }

    #[test]
    fn resolve_level_directly_by_name() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        // "City" is a level name, not a dimension name.
        let t = r.resolve_text("GeoMD.City.geometry").unwrap();
        assert_eq!(
            t,
            PathTarget::LevelGeometry {
                dimension: "Store".into(),
                level: "City".into()
            }
        );
    }

    #[test]
    fn resolve_layer_and_its_geometry() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        assert_eq!(
            r.resolve_text("GeoMD.Airport").unwrap(),
            PathTarget::Layer {
                layer: "Airport".into()
            }
        );
        assert_eq!(
            r.resolve_text("GeoMD.Airport.geometry").unwrap(),
            PathTarget::LayerGeometry {
                layer: "Airport".into()
            }
        );
        assert!(r.resolve_text("GeoMD.Airport.runways").is_err());
    }

    #[test]
    fn resolution_errors() {
        let schema = geomd_schema();
        let r = PathResolver::new(&schema);
        assert!(r.resolve_text("MD.Returns.UnitSales").is_err());
        assert!(r.resolve_text("MD.Sales.Store.Country.name").is_err());
        assert!(r.resolve_text("MD.Sales.UnitSales.more").is_err());
        assert!(r.resolve_text("GeoMD.Store.City.geometry.x").is_err());
        assert!(r.resolve_text("SUS.DecisionMaker.name").is_err());
    }

    #[test]
    fn target_classification() {
        assert!(PathTarget::LayerGeometry { layer: "A".into() }.is_spatial());
        assert!(!PathTarget::Fact {
            fact: "Sales".into()
        }
        .is_spatial());
        assert!(PathTarget::Layer { layer: "A".into() }.is_iterable());
        assert!(!PathTarget::LevelGeometry {
            dimension: "Store".into(),
            level: "City".into()
        }
        .is_iterable());
    }
}
