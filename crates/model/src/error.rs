//! Errors raised while constructing, validating or navigating models.

use std::fmt;

/// Errors produced by model construction, validation and path resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Two model elements at the same scope share a name.
    DuplicateName {
        /// The kind of element ("dimension", "level", "measure", …).
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// A referenced element does not exist.
    UnknownElement {
        /// The kind of element that was looked up.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A dimension has no levels.
    EmptyDimension {
        /// Name of the offending dimension.
        dimension: String,
    },
    /// A fact references no dimensions.
    FactWithoutDimensions {
        /// Name of the offending fact.
        fact: String,
    },
    /// A hierarchy roll-up path contains a cycle.
    HierarchyCycle {
        /// The dimension whose hierarchy is cyclic.
        dimension: String,
    },
    /// A path expression could not be resolved.
    PathResolution {
        /// The textual path expression.
        path: String,
        /// Why resolution failed.
        reason: String,
    },
    /// A spatial operation was requested on a non-spatial element.
    NotSpatial {
        /// The element lacking a geometric description.
        element: String,
    },
    /// General validation failure.
    Invalid {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name '{name}'")
            }
            ModelError::UnknownElement { kind, name } => {
                write!(f, "unknown {kind} '{name}'")
            }
            ModelError::EmptyDimension { dimension } => {
                write!(f, "dimension '{dimension}' has no levels")
            }
            ModelError::FactWithoutDimensions { fact } => {
                write!(f, "fact '{fact}' references no dimensions")
            }
            ModelError::HierarchyCycle { dimension } => {
                write!(f, "hierarchy of dimension '{dimension}' contains a cycle")
            }
            ModelError::PathResolution { path, reason } => {
                write!(f, "cannot resolve path '{path}': {reason}")
            }
            ModelError::NotSpatial { element } => {
                write!(f, "element '{element}' has no geometric description")
            }
            ModelError::Invalid { message } => write!(f, "invalid model: {message}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (
                ModelError::DuplicateName {
                    kind: "dimension",
                    name: "Store".into(),
                },
                "duplicate dimension name 'Store'",
            ),
            (
                ModelError::UnknownElement {
                    kind: "level",
                    name: "City".into(),
                },
                "unknown level 'City'",
            ),
            (
                ModelError::EmptyDimension {
                    dimension: "Time".into(),
                },
                "dimension 'Time' has no levels",
            ),
            (
                ModelError::NotSpatial {
                    element: "Store".into(),
                },
                "element 'Store' has no geometric description",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ModelError::Invalid {
            message: "x".into(),
        });
    }
}
