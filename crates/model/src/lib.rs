//! Conceptual multidimensional (MD) and geographic multidimensional (GeoMD)
//! models.
//!
//! This crate is the Rust rendering of the UML profiles the paper builds
//! on: the multidimensional profile of Luján-Mora, Trujillo & Song
//! (reference [16] of the paper) and its geographic extension (reference
//! [10]). The profile stereotypes become Rust types:
//!
//! | Paper stereotype | Type here |
//! |---|---|
//! | Fact class | [`Fact`] |
//! | Dimension class | [`Dimension`] |
//! | Base class (hierarchy level) | [`Level`] |
//! | FactAttribute (measure) | [`Measure`] |
//! | Descriptor / DimensionAttribute | [`Attribute`] |
//! | SpatialLevel | [`Level`] with [`Level::geometry`] set |
//! | Layer | [`Layer`] |
//!
//! A [`Schema`] bundles facts, dimensions and layers. A schema with no
//! spatial annotations is a plain MD model (Fig. 2 of the paper); applying
//! the `BecomeSpatial` / `AddLayer` personalization actions turns it into a
//! GeoMD model (Fig. 6). [`SchemaDiff`] captures exactly that delta.
//!
//! Path expressions (`MD.Sales.Store.City.name`,
//! `GeoMD.Store.City.geometry`) are resolved by [`path::PathResolver`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attribute;
pub mod builder;
pub mod diff;
pub mod dimension;
pub mod error;
pub mod fact;
pub mod geo;
pub mod path;
pub mod render;
pub mod schema;
pub mod stereotype;
pub mod validate;

pub use attribute::{AggregationFunction, Attribute, AttributeType, Measure};
pub use builder::{DimensionBuilder, FactBuilder, SchemaBuilder};
pub use diff::SchemaDiff;
pub use dimension::{Dimension, Level};
pub use error::ModelError;
pub use fact::Fact;
pub use geo::Layer;
pub use path::{PathExpr, PathPrefix, PathResolver, PathTarget};
pub use schema::Schema;
pub use stereotype::Stereotype;
pub use validate::validate_schema;

pub use sdwp_geometry::GeometricType;
