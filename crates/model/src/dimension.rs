//! Dimensions and hierarchy levels («Dimension» and «Base» classes).

use crate::attribute::{Attribute, AttributeType};
use crate::error::ModelError;
use crate::stereotype::Stereotype;
use sdwp_geometry::GeometricType;
use serde::{Deserialize, Serialize};

/// One level of a dimension hierarchy — a «Base» class in the paper's UML
/// profile, or a «SpatialLevel» once a geometry has been attached by the
/// `BecomeSpatial` personalization action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Level {
    /// Level name (unique within its dimension), e.g. `"Store"`, `"City"`.
    pub name: String,
    /// Descriptive attributes of the level.
    pub attributes: Vec<Attribute>,
    /// Geometric description, if the level is spatial (GeoMD extension).
    pub geometry: Option<GeometricType>,
}

impl Level {
    /// Creates a level with the given attributes and no geometry.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Level {
            name: name.into(),
            attributes,
            geometry: None,
        }
    }

    /// Creates a level with a single text descriptor named `name`.
    pub fn with_descriptor(name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        Level::new(
            name,
            vec![Attribute::descriptor(descriptor, AttributeType::Text)],
        )
    }

    /// The level's identifying descriptor attribute, when declared.
    pub fn descriptor(&self) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.is_descriptor)
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Returns `true` when the level carries a geometric description.
    pub fn is_spatial(&self) -> bool {
        self.geometry.is_some()
    }

    /// Attaches a geometric description, turning the «Base» level into a
    /// «SpatialLevel». This is the model-side effect of the paper's
    /// `BecomeSpatial(element, geometricType)` action.
    pub fn become_spatial(&mut self, geometry: GeometricType) {
        self.geometry = Some(geometry);
    }

    /// The UML-profile stereotype of the level.
    pub fn stereotype(&self) -> Stereotype {
        if self.is_spatial() {
            Stereotype::SpatialLevel
        } else {
            Stereotype::Base
        }
    }
}

/// A dimension («Dimension» class) with an ordered hierarchy of levels.
///
/// Levels are ordered from the finest grain (index 0, the level the fact
/// references — e.g. `Store`) to the coarsest (e.g. `State`): each level
/// rolls up (`r` role) to the next one and drills down (`d` role) to the
/// previous one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dimension {
    /// Dimension name (unique within the schema), e.g. `"Store"`.
    pub name: String,
    /// Hierarchy levels, finest first.
    pub levels: Vec<Level>,
}

impl Dimension {
    /// Creates a dimension from its hierarchy levels (finest first).
    pub fn new(name: impl Into<String>, levels: Vec<Level>) -> Self {
        Dimension {
            name: name.into(),
            levels,
        }
    }

    /// The finest-grain level (the one fact rows reference).
    pub fn leaf_level(&self) -> Option<&Level> {
        self.levels.first()
    }

    /// Looks up a level by name.
    pub fn level(&self, name: &str) -> Option<&Level> {
        self.levels.iter().find(|l| l.name == name)
    }

    /// Mutable lookup of a level by name.
    pub fn level_mut(&mut self, name: &str) -> Option<&mut Level> {
        self.levels.iter_mut().find(|l| l.name == name)
    }

    /// Index of a level within the hierarchy, if present.
    pub fn level_index(&self, name: &str) -> Option<usize> {
        self.levels.iter().position(|l| l.name == name)
    }

    /// The level one step coarser than `name` (the roll-up / `r` role
    /// target), or an error if the level is unknown.
    pub fn roll_up_target(&self, name: &str) -> Result<Option<&Level>, ModelError> {
        let idx = self
            .level_index(name)
            .ok_or_else(|| ModelError::UnknownElement {
                kind: "level",
                name: name.to_string(),
            })?;
        Ok(self.levels.get(idx + 1))
    }

    /// The level one step finer than `name` (the drill-down / `d` role
    /// target), or an error if the level is unknown.
    pub fn drill_down_target(&self, name: &str) -> Result<Option<&Level>, ModelError> {
        let idx = self
            .level_index(name)
            .ok_or_else(|| ModelError::UnknownElement {
                kind: "level",
                name: name.to_string(),
            })?;
        Ok(if idx == 0 {
            None
        } else {
            self.levels.get(idx - 1)
        })
    }

    /// The full aggregation path from the finest to the coarsest level, as
    /// level names.
    pub fn aggregation_path(&self) -> Vec<&str> {
        self.levels.iter().map(|l| l.name.as_str()).collect()
    }

    /// Returns `true` when any level of the dimension is spatial.
    pub fn has_spatial_level(&self) -> bool {
        self.levels.iter().any(Level::is_spatial)
    }

    /// The UML-profile stereotype of the dimension.
    pub fn stereotype(&self) -> Stereotype {
        Stereotype::Dimension
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_dimension() -> Dimension {
        Dimension::new(
            "Store",
            vec![
                Level::new(
                    "Store",
                    vec![
                        Attribute::descriptor("name", AttributeType::Text),
                        Attribute::new("address", AttributeType::Text),
                    ],
                ),
                Level::with_descriptor("City", "name"),
                Level::with_descriptor("State", "name"),
            ],
        )
    }

    #[test]
    fn level_lookup_and_descriptor() {
        let d = store_dimension();
        assert_eq!(d.leaf_level().unwrap().name, "Store");
        assert!(d.level("City").is_some());
        assert!(d.level("Country").is_none());
        let store = d.level("Store").unwrap();
        assert_eq!(store.descriptor().unwrap().name, "name");
        assert!(store.attribute("address").is_some());
        assert!(store.attribute("missing").is_none());
    }

    #[test]
    fn roll_up_and_drill_down() {
        let d = store_dimension();
        assert_eq!(d.roll_up_target("Store").unwrap().unwrap().name, "City");
        assert_eq!(d.roll_up_target("City").unwrap().unwrap().name, "State");
        assert!(d.roll_up_target("State").unwrap().is_none());
        assert_eq!(d.drill_down_target("State").unwrap().unwrap().name, "City");
        assert!(d.drill_down_target("Store").unwrap().is_none());
        assert!(d.roll_up_target("Nope").is_err());
        assert!(d.drill_down_target("Nope").is_err());
    }

    #[test]
    fn aggregation_path_order() {
        let d = store_dimension();
        assert_eq!(d.aggregation_path(), vec!["Store", "City", "State"]);
    }

    #[test]
    fn become_spatial_changes_stereotype() {
        let mut d = store_dimension();
        assert!(!d.has_spatial_level());
        assert_eq!(d.level("Store").unwrap().stereotype(), Stereotype::Base);
        d.level_mut("Store")
            .unwrap()
            .become_spatial(GeometricType::Point);
        assert!(d.has_spatial_level());
        let store = d.level("Store").unwrap();
        assert!(store.is_spatial());
        assert_eq!(store.stereotype(), Stereotype::SpatialLevel);
        assert_eq!(store.geometry, Some(GeometricType::Point));
    }

    #[test]
    fn dimension_stereotype() {
        assert_eq!(store_dimension().stereotype(), Stereotype::Dimension);
    }

    #[test]
    fn level_index() {
        let d = store_dimension();
        assert_eq!(d.level_index("Store"), Some(0));
        assert_eq!(d.level_index("State"), Some(2));
        assert_eq!(d.level_index("Other"), None);
    }
}
