//! UML-profile stereotypes used by the MD and GeoMD models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The stereotypes of the multidimensional UML profile (paper references
/// [16] and [10]) that this library represents.
///
/// Stereotypes are carried as metadata on model elements so that renderers
/// (and the schema diff) can reproduce the class-diagram notation of the
/// paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stereotype {
    /// «Fact» — the subject of analysis (e.g. Sales).
    Fact,
    /// «Dimension» — a context of analysis (e.g. Store, Time).
    Dimension,
    /// «Base» — one level of a dimension hierarchy (e.g. City, State).
    Base,
    /// «FactAttribute» — a measure of the fact (e.g. UnitSales).
    FactAttribute,
    /// «Descriptor» — the identifying attribute of a Base class.
    Descriptor,
    /// «DimensionAttribute» — a non-identifying descriptive attribute.
    DimensionAttribute,
    /// «SpatialLevel» — a Base class with a geometric description (GeoMD).
    SpatialLevel,
    /// «SpatialMeasure» — a measure holding a geometry (GeoMD).
    SpatialMeasure,
    /// «Layer» — an external thematic geographic layer (GeoMD).
    Layer,
}

impl Stereotype {
    /// The guillemet notation used in the paper's figures, e.g.
    /// `«SpatialLevel»`.
    pub fn notation(&self) -> String {
        format!("\u{00ab}{self}\u{00bb}")
    }

    /// Returns `true` for the stereotypes introduced by the geographic
    /// (GeoMD) extension rather than the base MD profile.
    pub fn is_geographic(&self) -> bool {
        matches!(
            self,
            Stereotype::SpatialLevel | Stereotype::SpatialMeasure | Stereotype::Layer
        )
    }
}

impl fmt::Display for Stereotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stereotype::Fact => "Fact",
            Stereotype::Dimension => "Dimension",
            Stereotype::Base => "Base",
            Stereotype::FactAttribute => "FactAttribute",
            Stereotype::Descriptor => "Descriptor",
            Stereotype::DimensionAttribute => "DimensionAttribute",
            Stereotype::SpatialLevel => "SpatialLevel",
            Stereotype::SpatialMeasure => "SpatialMeasure",
            Stereotype::Layer => "Layer",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notation_uses_guillemets() {
        assert_eq!(Stereotype::Fact.notation(), "«Fact»");
        assert_eq!(Stereotype::SpatialLevel.notation(), "«SpatialLevel»");
    }

    #[test]
    fn geographic_classification() {
        assert!(Stereotype::SpatialLevel.is_geographic());
        assert!(Stereotype::Layer.is_geographic());
        assert!(Stereotype::SpatialMeasure.is_geographic());
        assert!(!Stereotype::Fact.is_geographic());
        assert!(!Stereotype::Base.is_geographic());
        assert!(!Stereotype::Descriptor.is_geographic());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            Stereotype::DimensionAttribute.to_string(),
            "DimensionAttribute"
        );
        assert_eq!(Stereotype::Layer.to_string(), "Layer");
    }
}
