//! Schema diffs: what a set of schema personalization rules changed.

use crate::schema::Schema;
use sdwp_geometry::GeometricType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The delta between two schemas — typically the plain MD model and the
/// GeoMD model obtained after running schema personalization rules
/// (Fig. 2 → Fig. 6 in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchemaDiff {
    /// Layers present in the new schema but not the old one.
    pub added_layers: Vec<(String, GeometricType)>,
    /// Layers removed (unusual; kept for completeness).
    pub removed_layers: Vec<String>,
    /// Levels that became spatial, as `(dimension, level, geometry)`.
    pub levels_become_spatial: Vec<(String, String, GeometricType)>,
    /// Dimensions added to the schema.
    pub added_dimensions: Vec<String>,
    /// Facts added to the schema.
    pub added_facts: Vec<String>,
}

impl SchemaDiff {
    /// Computes the difference `after - before`.
    pub fn between(before: &Schema, after: &Schema) -> Self {
        let mut diff = SchemaDiff::default();

        for layer in &after.layers {
            if before.layer(&layer.name).is_none() {
                diff.added_layers.push((layer.name.clone(), layer.geometry));
            }
        }
        for layer in &before.layers {
            if after.layer(&layer.name).is_none() {
                diff.removed_layers.push(layer.name.clone());
            }
        }

        for dim in &after.dimensions {
            match before.dimension(&dim.name) {
                None => diff.added_dimensions.push(dim.name.clone()),
                Some(old_dim) => {
                    for level in &dim.levels {
                        let was_spatial = old_dim
                            .level(&level.name)
                            .map(|l| l.is_spatial())
                            .unwrap_or(false);
                        if level.is_spatial() && !was_spatial {
                            diff.levels_become_spatial.push((
                                dim.name.clone(),
                                level.name.clone(),
                                level.geometry.expect("spatial level has a geometry"),
                            ));
                        }
                    }
                }
            }
        }

        for fact in &after.facts {
            if before.fact(&fact.name).is_none() {
                diff.added_facts.push(fact.name.clone());
            }
        }

        diff
    }

    /// Returns `true` when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added_layers.is_empty()
            && self.removed_layers.is_empty()
            && self.levels_become_spatial.is_empty()
            && self.added_dimensions.is_empty()
            && self.added_facts.is_empty()
    }

    /// Number of individual changes in the diff.
    pub fn change_count(&self) -> usize {
        self.added_layers.len()
            + self.removed_layers.len()
            + self.levels_become_spatial.len()
            + self.added_dimensions.len()
            + self.added_facts.len()
    }
}

impl fmt::Display for SchemaDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no schema changes)");
        }
        for (name, g) in &self.added_layers {
            writeln!(f, "+ AddLayer('{name}', {g})")?;
        }
        for name in &self.removed_layers {
            writeln!(f, "- RemoveLayer('{name}')")?;
        }
        for (dim, level, g) in &self.levels_become_spatial {
            writeln!(f, "~ BecomeSpatial({dim}.{level}, {g})")?;
        }
        for d in &self.added_dimensions {
            writeln!(f, "+ Dimension '{d}'")?;
        }
        for fa in &self.added_facts {
            writeln!(f, "+ Fact '{fa}'")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeType;
    use crate::builder::{DimensionBuilder, FactBuilder, SchemaBuilder};

    fn md_schema() -> Schema {
        SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn identical_schemas_have_empty_diff() {
        let a = md_schema();
        let diff = SchemaDiff::between(&a, &a.clone());
        assert!(diff.is_empty());
        assert_eq!(diff.change_count(), 0);
        assert!(diff.to_string().contains("no schema changes"));
    }

    #[test]
    fn paper_schema_rule_diff() {
        // Example 5.1: AddLayer('Airport', POINT) + BecomeSpatial(Store, POINT).
        let before = md_schema();
        let mut after = before.clone();
        after.add_layer("Airport", GeometricType::Point).unwrap();
        after.become_spatial("Store", GeometricType::Point).unwrap();

        let diff = SchemaDiff::between(&before, &after);
        assert_eq!(
            diff.added_layers,
            vec![("Airport".to_string(), GeometricType::Point)]
        );
        assert_eq!(
            diff.levels_become_spatial,
            vec![(
                "Store".to_string(),
                "Store".to_string(),
                GeometricType::Point
            )]
        );
        assert_eq!(diff.change_count(), 2);
        let rendered = diff.to_string();
        assert!(rendered.contains("AddLayer('Airport', POINT)"));
        assert!(rendered.contains("BecomeSpatial(Store.Store, POINT)"));
    }

    #[test]
    fn removed_layers_and_added_elements() {
        let mut before = md_schema();
        before.add_layer("Highway", GeometricType::Line).unwrap();
        let mut after = md_schema();
        after.dimensions.push(
            DimensionBuilder::new("Promotion")
                .simple_level("Promotion", "name")
                .build(),
        );
        after.facts.push(
            FactBuilder::new("Inventory")
                .measure("Stock", AttributeType::Integer)
                .dimension("Store")
                .build(),
        );
        let diff = SchemaDiff::between(&before, &after);
        assert_eq!(diff.removed_layers, vec!["Highway".to_string()]);
        assert_eq!(diff.added_dimensions, vec!["Promotion".to_string()]);
        assert_eq!(diff.added_facts, vec!["Inventory".to_string()]);
    }
}
