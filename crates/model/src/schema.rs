//! The schema: facts, dimensions and layers bundled together.

use crate::dimension::{Dimension, Level};
use crate::error::ModelError;
use crate::fact::Fact;
use crate::geo::Layer;
use sdwp_geometry::GeometricType;
use serde::{Deserialize, Serialize};

/// A complete multidimensional schema.
///
/// With no spatial annotations this is a plain MD model (the paper's
/// Fig. 2); once levels have been made spatial and layers added it is a
/// GeoMD model (Fig. 6). The two personalization actions that change the
/// schema — `BecomeSpatial` and `AddLayer` — are exposed as methods here so
/// the rule engine has a single mutation surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema name, e.g. `"SalesDW"`.
    pub name: String,
    /// The facts of the schema.
    pub facts: Vec<Fact>,
    /// The dimensions of the schema.
    pub dimensions: Vec<Dimension>,
    /// The external geographic layers of the schema (GeoMD extension).
    pub layers: Vec<Layer>,
}

impl Schema {
    /// Creates an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            facts: Vec::new(),
            dimensions: Vec::new(),
            layers: Vec::new(),
        }
    }

    /// Looks up a fact by name.
    pub fn fact(&self, name: &str) -> Option<&Fact> {
        self.facts.iter().find(|f| f.name == name)
    }

    /// Looks up a dimension by name.
    pub fn dimension(&self, name: &str) -> Option<&Dimension> {
        self.dimensions.iter().find(|d| d.name == name)
    }

    /// Mutable lookup of a dimension by name.
    pub fn dimension_mut(&mut self, name: &str) -> Option<&mut Dimension> {
        self.dimensions.iter_mut().find(|d| d.name == name)
    }

    /// Looks up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Finds a level by name in any dimension, returning the dimension name
    /// and the level.
    pub fn find_level(&self, level_name: &str) -> Option<(&str, &Level)> {
        for dim in &self.dimensions {
            if let Some(level) = dim.level(level_name) {
                return Some((dim.name.as_str(), level));
            }
        }
        None
    }

    /// Returns `true` when any level is spatial or any layer is present —
    /// i.e. the schema is a GeoMD model rather than a plain MD model.
    pub fn is_geographic(&self) -> bool {
        !self.layers.is_empty() || self.dimensions.iter().any(Dimension::has_spatial_level)
    }

    /// Applies the paper's `AddLayer(name, geometricType)` action: adds a
    /// new thematic layer. Adding a layer that already exists with the same
    /// geometry is a no-op; adding one with a different geometry is an
    /// error.
    pub fn add_layer(
        &mut self,
        name: impl Into<String>,
        geometry: GeometricType,
    ) -> Result<&Layer, ModelError> {
        let name = name.into();
        if let Some(pos) = self.layers.iter().position(|l| l.name == name) {
            if self.layers[pos].geometry == geometry {
                return Ok(&self.layers[pos]);
            }
            return Err(ModelError::DuplicateName {
                kind: "layer",
                name,
            });
        }
        self.layers.push(Layer::new(name, geometry));
        Ok(self.layers.last().expect("just pushed"))
    }

    /// Applies the paper's `BecomeSpatial(element, geometricType)` action:
    /// attaches a geometric description to the named level (in any
    /// dimension), turning it into a «SpatialLevel».
    pub fn become_spatial(
        &mut self,
        level_name: &str,
        geometry: GeometricType,
    ) -> Result<(), ModelError> {
        for dim in &mut self.dimensions {
            if let Some(level) = dim.level_mut(level_name) {
                level.become_spatial(geometry);
                return Ok(());
            }
        }
        Err(ModelError::UnknownElement {
            kind: "level",
            name: level_name.to_string(),
        })
    }

    /// Names of every spatial level, prefixed by their dimension
    /// (`"Store.Store"`, `"Store.City"`, …).
    pub fn spatial_levels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for dim in &self.dimensions {
            for level in &dim.levels {
                if level.is_spatial() {
                    out.push(format!("{}.{}", dim.name, level.name));
                }
            }
        }
        out
    }

    /// Total number of model elements (facts + dimensions + levels +
    /// attributes + measures + layers); used to scale benchmark B7.
    pub fn element_count(&self) -> usize {
        let level_elems: usize = self
            .dimensions
            .iter()
            .map(|d| {
                d.levels
                    .iter()
                    .map(|l| 1 + l.attributes.len())
                    .sum::<usize>()
            })
            .sum();
        let fact_elems: usize = self.facts.iter().map(|f| 1 + f.measures.len()).sum();
        self.dimensions.len() + level_elems + fact_elems + self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{Attribute, AttributeType, Measure};

    fn sample_schema() -> Schema {
        let mut schema = Schema::new("SalesDW");
        schema.dimensions.push(Dimension::new(
            "Store",
            vec![
                Level::new(
                    "Store",
                    vec![Attribute::descriptor("name", AttributeType::Text)],
                ),
                Level::with_descriptor("City", "name"),
            ],
        ));
        schema.dimensions.push(Dimension::new(
            "Time",
            vec![Level::with_descriptor("Day", "date")],
        ));
        schema.facts.push(Fact::new(
            "Sales",
            vec![Measure::new("UnitSales", AttributeType::Float)],
            vec!["Store".into(), "Time".into()],
        ));
        schema
    }

    #[test]
    fn lookups() {
        let s = sample_schema();
        assert!(s.fact("Sales").is_some());
        assert!(s.fact("Returns").is_none());
        assert!(s.dimension("Store").is_some());
        assert!(s.dimension("Customer").is_none());
        assert!(s.layer("Airport").is_none());
        let (dim, level) = s.find_level("City").unwrap();
        assert_eq!(dim, "Store");
        assert_eq!(level.name, "City");
        assert!(s.find_level("Country").is_none());
    }

    #[test]
    fn md_schema_is_not_geographic() {
        assert!(!sample_schema().is_geographic());
    }

    #[test]
    fn add_layer_behaviour() {
        let mut s = sample_schema();
        s.add_layer("Airport", GeometricType::Point).unwrap();
        assert!(s.is_geographic());
        assert_eq!(s.layer("Airport").unwrap().geometry, GeometricType::Point);
        // Idempotent when the geometry matches.
        s.add_layer("Airport", GeometricType::Point).unwrap();
        assert_eq!(s.layers.len(), 1);
        // Conflicting geometry is rejected.
        let err = s.add_layer("Airport", GeometricType::Polygon).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateName { .. }));
    }

    #[test]
    fn become_spatial_behaviour() {
        let mut s = sample_schema();
        s.become_spatial("Store", GeometricType::Point).unwrap();
        assert!(s.is_geographic());
        assert_eq!(s.spatial_levels(), vec!["Store.Store".to_string()]);
        let err = s
            .become_spatial("Warehouse", GeometricType::Point)
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownElement { .. }));
    }

    #[test]
    fn element_count_grows_with_additions() {
        let mut s = sample_schema();
        let before = s.element_count();
        s.add_layer("Airport", GeometricType::Point).unwrap();
        assert_eq!(s.element_count(), before + 1);
    }
}
