//! Fluent builders for schemas, dimensions and facts.

use crate::attribute::{AggregationFunction, Attribute, AttributeType, Measure};
use crate::dimension::{Dimension, Level};
use crate::error::ModelError;
use crate::fact::Fact;
use crate::schema::Schema;
use crate::validate::validate_schema;
use sdwp_geometry::GeometricType;

/// Builds a [`Dimension`] level by level.
#[derive(Debug, Clone)]
pub struct DimensionBuilder {
    name: String,
    levels: Vec<Level>,
}

impl DimensionBuilder {
    /// Starts a dimension with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DimensionBuilder {
            name: name.into(),
            levels: Vec::new(),
        }
    }

    /// Adds a level (finest levels first) with explicit attributes.
    pub fn level(mut self, name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        self.levels.push(Level::new(name, attributes));
        self
    }

    /// Adds a level carrying only a text descriptor named `descriptor`.
    pub fn simple_level(mut self, name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        self.levels.push(Level::with_descriptor(name, descriptor));
        self
    }

    /// Adds a spatial level: a descriptor plus a geometric description.
    pub fn spatial_level(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
        geometry: GeometricType,
    ) -> Self {
        let mut level = Level::with_descriptor(name, descriptor);
        level.become_spatial(geometry);
        self.levels.push(level);
        self
    }

    /// Finishes the dimension.
    pub fn build(self) -> Dimension {
        Dimension::new(self.name, self.levels)
    }
}

/// Builds a [`Fact`] measure by measure.
#[derive(Debug, Clone)]
pub struct FactBuilder {
    name: String,
    measures: Vec<Measure>,
    dimensions: Vec<String>,
}

impl FactBuilder {
    /// Starts a fact with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FactBuilder {
            name: name.into(),
            measures: Vec::new(),
            dimensions: Vec::new(),
        }
    }

    /// Adds a SUM-aggregated measure.
    pub fn measure(mut self, name: impl Into<String>, data_type: AttributeType) -> Self {
        self.measures.push(Measure::new(name, data_type));
        self
    }

    /// Adds a measure with an explicit aggregation function.
    pub fn measure_with(
        mut self,
        name: impl Into<String>,
        data_type: AttributeType,
        aggregation: AggregationFunction,
    ) -> Self {
        self.measures
            .push(Measure::with_aggregation(name, data_type, aggregation));
        self
    }

    /// Declares that the fact is analysed by the named dimension.
    pub fn dimension(mut self, name: impl Into<String>) -> Self {
        self.dimensions.push(name.into());
        self
    }

    /// Finishes the fact.
    pub fn build(self) -> Fact {
        Fact::new(self.name, self.measures, self.dimensions)
    }
}

/// Builds a complete [`Schema`] and validates it.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Starts a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            schema: Schema::new(name),
        }
    }

    /// Adds a dimension.
    pub fn dimension(mut self, dimension: Dimension) -> Self {
        self.schema.dimensions.push(dimension);
        self
    }

    /// Adds a fact.
    pub fn fact(mut self, fact: Fact) -> Self {
        self.schema.facts.push(fact);
        self
    }

    /// Adds a thematic layer (GeoMD extension).
    pub fn layer(mut self, name: impl Into<String>, geometry: GeometricType) -> Self {
        self.schema
            .layers
            .push(crate::geo::Layer::new(name, geometry));
        self
    }

    /// Validates and returns the schema.
    pub fn build(self) -> Result<Schema, ModelError> {
        validate_schema(&self.schema)?;
        Ok(self.schema)
    }

    /// Returns the schema without validating (useful in tests that want to
    /// construct deliberately-invalid schemas).
    pub fn build_unchecked(self) -> Schema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_construction_of_valid_schema() {
        let schema = SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .level(
                        "Store",
                        vec![
                            Attribute::descriptor("name", AttributeType::Text),
                            Attribute::new("address", AttributeType::Text),
                        ],
                    )
                    .simple_level("City", "name")
                    .simple_level("State", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .simple_level("Day", "date")
                    .simple_level("Month", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure_with("StoreCost", AttributeType::Float, AggregationFunction::Avg)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        assert_eq!(schema.dimensions.len(), 2);
        assert_eq!(schema.facts.len(), 1);
        assert!(!schema.is_geographic());
    }

    #[test]
    fn builder_with_layers_and_spatial_levels() {
        let schema = SchemaBuilder::new("GeoSalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .spatial_level("Store", "name", GeometricType::Point)
                    .simple_level("City", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .layer("Airport", GeometricType::Point)
            .build()
            .unwrap();
        assert!(schema.is_geographic());
        assert_eq!(schema.spatial_levels(), vec!["Store.Store".to_string()]);
        assert!(schema.layer("Airport").is_some());
    }

    #[test]
    fn invalid_schema_is_rejected() {
        // Fact referencing an undeclared dimension.
        let result = SchemaBuilder::new("Broken")
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Ghost")
                    .build(),
            )
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let schema = SchemaBuilder::new("Broken")
            .fact(FactBuilder::new("Sales").dimension("Ghost").build())
            .build_unchecked();
        assert_eq!(schema.facts.len(), 1);
    }
}
