//! GeoMD extension elements: thematic layers.

use crate::stereotype::Stereotype;
use sdwp_geometry::GeometricType;
use serde::{Deserialize, Serialize};

/// An external thematic geographic layer («Layer» class) added to the
/// schema by the paper's `AddLayer(name, geometricType)` action — e.g. the
/// `Airport` POINT layer or the `Train` LINE layer of the running example.
///
/// A layer groups geographic data that is *external to the analysed
/// domain*: it does not belong to any dimension hierarchy but can be used
/// in spatial conditions of personalization rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name (unique within the schema), e.g. `"Airport"`.
    pub name: String,
    /// The geometric type describing the layer's instances.
    pub geometry: GeometricType,
    /// Optional human-readable description of the layer's provenance.
    pub description: Option<String>,
}

impl Layer {
    /// Creates a layer with the given name and geometric type.
    pub fn new(name: impl Into<String>, geometry: GeometricType) -> Self {
        Layer {
            name: name.into(),
            geometry,
            description: None,
        }
    }

    /// Creates a layer with a provenance description.
    pub fn with_description(
        name: impl Into<String>,
        geometry: GeometricType,
        description: impl Into<String>,
    ) -> Self {
        Layer {
            name: name.into(),
            geometry,
            description: Some(description.into()),
        }
    }

    /// The UML-profile stereotype of the layer.
    pub fn stereotype(&self) -> Stereotype {
        Stereotype::Layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_construction() {
        let airport = Layer::new("Airport", GeometricType::Point);
        assert_eq!(airport.name, "Airport");
        assert_eq!(airport.geometry, GeometricType::Point);
        assert!(airport.description.is_none());
        assert_eq!(airport.stereotype(), Stereotype::Layer);
    }

    #[test]
    fn layer_with_description() {
        let train =
            Layer::with_description("Train", GeometricType::Line, "national railway network");
        assert_eq!(train.geometry, GeometricType::Line);
        assert_eq!(
            train.description.as_deref(),
            Some("national railway network")
        );
    }
}
