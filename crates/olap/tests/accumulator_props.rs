//! Property suite for [`Accumulator::merge`]: merging partial states is
//! associative and agrees with sequential `update` feeding for every
//! aggregation function, including all-null inputs and empty chunks.
//!
//! Numeric values are generated as dyadic rationals (multiples of 0.25
//! inside the `f64` mantissa), so sums are exact and associativity is an
//! exact property — see `parallel_equivalence.rs` for the rationale.

use proptest::prelude::*;
use sdwp_model::AggregationFunction;
use sdwp_olap::aggregate::Accumulator;
use sdwp_olap::CellValue;

const FUNCTIONS: [AggregationFunction; 6] = [
    AggregationFunction::Sum,
    AggregationFunction::Avg,
    AggregationFunction::Min,
    AggregationFunction::Max,
    AggregationFunction::Count,
    AggregationFunction::CountDistinct,
];

/// Cell values an accumulator can meet: exact numerics, a small text pool
/// (so COUNT DISTINCT collides), booleans and plenty of nulls.
fn cell() -> BoxedStrategy<CellValue> {
    prop_oneof![
        (-128i32..129).prop_map(|v| CellValue::Float(f64::from(v) * 0.25)),
        (-64i64..65).prop_map(CellValue::Integer),
        (0usize..4).prop_map(|i| CellValue::Text(["a", "b", "c", "d"][i].into())),
        Just(CellValue::Boolean(true)),
        Just(CellValue::Null),
    ]
    .boxed()
}

fn accumulate(function: AggregationFunction, values: &[CellValue]) -> Accumulator {
    let mut acc = Accumulator::new(function);
    for value in values {
        acc.update(value);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(acc(left), acc(right)) == acc(left ++ right) for every split
    /// point of every generated value sequence — the property that makes
    /// per-morsel partial aggregation correct.
    #[test]
    fn merge_agrees_with_sequential_feeding(
        values in prop::collection::vec(cell(), 0..40),
        split in any::<usize>(),
    ) {
        let at = if values.is_empty() { 0 } else { split % (values.len() + 1) };
        let (left, right) = values.split_at(at);
        for function in FUNCTIONS {
            let sequential = accumulate(function, &values).finish();
            let mut merged = accumulate(function, left);
            merged.merge(&accumulate(function, right));
            prop_assert_eq!(
                merged.finish(),
                sequential,
                "{:?} split at {}",
                function,
                at
            );
        }
    }

    /// Merging is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), so the morsel
    /// merge can be regrouped freely without changing the result.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(cell(), 0..20),
        b in prop::collection::vec(cell(), 0..20),
        c in prop::collection::vec(cell(), 0..20),
    ) {
        for function in FUNCTIONS {
            let (acc_a, acc_b, acc_c) = (
                accumulate(function, &a),
                accumulate(function, &b),
                accumulate(function, &c),
            );
            // (a ⊕ b) ⊕ c
            let mut left = acc_a.clone();
            left.merge(&acc_b);
            left.merge(&acc_c);
            // a ⊕ (b ⊕ c)
            let mut right_tail = acc_b.clone();
            right_tail.merge(&acc_c);
            let mut right = acc_a.clone();
            right.merge(&right_tail);
            prop_assert_eq!(left.finish(), right.finish(), "{:?}", function);
        }
    }

    /// Empty chunks are the identity on both sides, and all-null chunks
    /// behave exactly like empty ones.
    #[test]
    fn empty_and_all_null_chunks_are_identities(
        values in prop::collection::vec(cell(), 0..30),
        nulls in 0usize..10,
    ) {
        let all_null = vec![CellValue::Null; nulls];
        for function in FUNCTIONS {
            let reference = accumulate(function, &values).finish();

            let mut left_id = Accumulator::new(function);
            left_id.merge(&accumulate(function, &values));
            prop_assert_eq!(left_id.finish(), reference.clone(), "{:?} left id", function);

            let mut right_id = accumulate(function, &values);
            right_id.merge(&Accumulator::new(function));
            prop_assert_eq!(right_id.finish(), reference.clone(), "{:?} right id", function);

            let mut with_nulls = accumulate(function, &values);
            with_nulls.merge(&accumulate(function, &all_null));
            prop_assert_eq!(with_nulls.finish(), reference, "{:?} null chunk", function);
        }
    }
}
