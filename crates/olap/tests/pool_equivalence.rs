//! The pool-equivalence property suite: executing through the shared
//! morsel worker pool ([`sdwp_olap::MorselPool`]) must be
//! **indistinguishable** from the per-query `thread::scope` executor and
//! from the serial row-at-a-time reference — same groups, same
//! aggregates, same row order, same scan counters — for arbitrary
//! generated cubes, queries and personalized views.
//!
//! This holds by construction (partials merge in morsel-index order, so
//! *which* thread scanned a morsel is invisible), and the properties here
//! pin that construction down across the axes that could break it:
//! worker-pool sizes, group-slot limits (dense-slot vs hashed paths),
//! queue-depth caps that degrade parallelism mid-query, and the
//! shared-scan batch path.
//!
//! Measure values are dyadic rationals (multiples of 0.25), so float
//! sums are exact and bit-identity is a hard property, not a tolerance.

use proptest::prelude::*;
use sdwp_model::{
    AggregationFunction, Attribute, AttributeType, DimensionBuilder, FactBuilder, Schema,
    SchemaBuilder,
};
use sdwp_olap::{
    AttributeRef, CellValue, Cube, ExecutionConfig, Filter, InstanceView, MorselPool, PoolConfig,
    Query, QueryEngine, TenantPolicy,
};
use std::sync::Arc;

/// Pool of attribute values; small so group keys collide often.
const POOL: [&str; 4] = ["x", "y", "z", "w"];
const GROUP_KEYS: [(&str, &str, &str); 3] = [
    ("D0", "A", "name"),
    ("D0", "B", "name"),
    ("D1", "T", "date"),
];
const MEASURES: [&str; 3] = ["M1", "M2", "M3"];
const AGGREGATIONS: [AggregationFunction; 6] = [
    AggregationFunction::Sum,
    AggregationFunction::Avg,
    AggregationFunction::Min,
    AggregationFunction::Max,
    AggregationFunction::Count,
    AggregationFunction::CountDistinct,
];

fn schema() -> Schema {
    SchemaBuilder::new("PoolDW")
        .dimension(
            DimensionBuilder::new("D0")
                .simple_level("A", "name")
                .simple_level("B", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("D1")
                .level(
                    "T",
                    vec![Attribute::descriptor("date", AttributeType::Date)],
                )
                .build(),
        )
        .fact(
            FactBuilder::new("F")
                .measure("M1", AttributeType::Float)
                .measure_with("M2", AttributeType::Float, AggregationFunction::Avg)
                .measure("M3", AttributeType::Integer)
                .dimension("D0")
                .dimension("D1")
                .build(),
        )
        .build()
        .expect("property schema is valid")
}

type FactSpec = (usize, usize, Option<i32>, Option<i32>, Option<i64>);

#[derive(Debug, Clone)]
struct CubeSpec {
    d0_members: Vec<(usize, usize)>,
    d1_members: usize,
    facts: Vec<FactSpec>,
}

fn cube_spec() -> impl Strategy<Value = CubeSpec> {
    (
        prop::collection::vec((0usize..=POOL.len(), 0usize..=POOL.len()), 1..6),
        1usize..5,
        prop::collection::vec(
            (
                any::<usize>(),
                any::<usize>(),
                option_of(-64i32..65),
                option_of(-64i32..65),
                option_of(-9i32..10).prop_map(|v| v.map(i64::from)),
            ),
            0..80,
        ),
    )
        .prop_map(|(d0_members, d1_members, facts)| CubeSpec {
            d0_members,
            d1_members,
            facts,
        })
}

fn option_of<S>(values: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    let some = values.prop_map(Some).boxed();
    prop_oneof![Just(None).boxed(), some.clone(), some].boxed()
}

fn pool_cell(index: usize) -> CellValue {
    if index >= POOL.len() {
        CellValue::Null
    } else {
        CellValue::from(POOL[index])
    }
}

fn build_cube(spec: &CubeSpec) -> Cube {
    let mut cube = Cube::new(schema());
    for (a, b) in &spec.d0_members {
        cube.add_dimension_member(
            "D0",
            vec![("A.name", pool_cell(*a)), ("B.name", pool_cell(*b))],
        )
        .expect("D0 member loads");
    }
    for day in 0..spec.d1_members {
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(day as i64 % 3))])
            .expect("D1 member loads");
    }
    for (fk0, fk1, m1, m2, m3) in &spec.facts {
        let mut measures: Vec<(&str, CellValue)> = Vec::new();
        if let Some(v) = m1 {
            measures.push(("M1", CellValue::Float(f64::from(*v) * 0.25)));
        }
        if let Some(v) = m2 {
            measures.push(("M2", CellValue::Float(f64::from(*v) * 0.5)));
        }
        if let Some(v) = m3 {
            measures.push(("M3", CellValue::Integer(*v)));
        }
        cube.add_fact_row(
            "F",
            vec![
                ("D0", fk0 % spec.d0_members.len()),
                ("D1", fk1 % spec.d1_members),
            ],
            measures,
        )
        .expect("fact row loads");
    }
    cube
}

#[derive(Debug, Clone)]
struct QuerySpec {
    group_by: Vec<usize>,
    measures: Vec<(usize, Option<usize>)>,
    dim_filter: Option<usize>,
    fact_filter: Option<i32>,
    limit: Option<usize>,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec(0usize..GROUP_KEYS.len(), 0..3),
        prop::collection::vec(
            (
                0usize..MEASURES.len(),
                option_of(0usize..AGGREGATIONS.len()),
            ),
            1..4,
        ),
        option_of(0usize..POOL.len()),
        option_of(-32i32..33),
        option_of(0usize..6),
    )
        .prop_map(
            |(group_by, measures, dim_filter, fact_filter, limit)| QuerySpec {
                group_by,
                measures,
                dim_filter,
                fact_filter,
                limit,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Query {
    let mut query = Query::over("F");
    for key in &spec.group_by {
        let (dimension, level, attribute) = GROUP_KEYS[*key];
        query = query.group_by(AttributeRef::new(dimension, level, attribute));
    }
    for (measure, aggregation) in &spec.measures {
        query = match aggregation {
            Some(agg) => query.measure_agg(MEASURES[*measure], AGGREGATIONS[*agg]),
            None => query.measure(MEASURES[*measure]),
        };
    }
    if let Some(value) = spec.dim_filter {
        query = query.filter_dimension("D0", Filter::eq("A.name", POOL[value]));
    }
    if let Some(threshold) = spec.fact_filter {
        query = query.filter_fact(Filter::Attribute {
            column: "M1".into(),
            op: sdwp_olap::CompareOp::Ge,
            value: CellValue::Float(f64::from(threshold) * 0.25),
        });
    }
    if let Some(limit) = spec.limit {
        query = query.limit(limit);
    }
    query
}

#[derive(Debug, Clone)]
struct ViewSpec {
    d0_selection: Option<Vec<usize>>,
    fact_selection: Option<Vec<usize>>,
}

fn view_spec() -> impl Strategy<Value = ViewSpec> {
    (
        option_of(prop::collection::vec(any::<usize>(), 0..6)),
        option_of(prop::collection::vec(any::<usize>(), 0..40)),
    )
        .prop_map(|(d0_selection, fact_selection)| ViewSpec {
            d0_selection,
            fact_selection,
        })
}

fn build_view(spec: &ViewSpec, cube_spec: &CubeSpec) -> InstanceView {
    let mut view = InstanceView::unrestricted();
    if let Some(members) = &spec.d0_selection {
        view.select_dimension_members("D0", members.iter().map(|m| m % cube_spec.d0_members.len()));
    }
    if let Some(rows) = &spec.fact_selection {
        let total = cube_spec.facts.len();
        if total > 0 {
            view.select_fact_rows("F", rows.iter().map(|r| r % total));
        } else {
            view.select_fact_rows("F", std::iter::empty());
        }
    }
    view
}

/// Engine pairs under test: a scoped executor and a pooled executor with
/// the **same** execution config, so any divergence is the pool's fault.
fn engine_pair(
    pool: &Arc<MorselPool>,
    workers: usize,
    slot_limit: usize,
) -> (QueryEngine, QueryEngine) {
    let config = ExecutionConfig::default()
        .with_workers(workers)
        // A small prime morsel size forces ragged chunks and many merges.
        .with_morsel_rows(7)
        .with_group_slot_limit(slot_limit);
    (
        QueryEngine::with_config(config),
        QueryEngine::with_pool(config, Arc::clone(pool)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for every generated (cube, query, view),
    /// execution through the shared worker pool at several requested
    /// worker counts — including counts *above* the pool's worker
    /// population, where the caller scans alongside every helper — is
    /// bit-identical to the scoped executor and the serial reference.
    #[test]
    fn pooled_equals_scoped_and_serial(
        cube in cube_spec(),
        query in query_spec(),
        view in view_spec(),
    ) {
        let built_cube = build_cube(&cube);
        let built_query = build_query(&query);
        let built_view = build_view(&view, &cube);
        let serial = QueryEngine::with_config(ExecutionConfig::serial())
            .execute_serial_with_view(&built_cube, &built_query, &built_view)
            .expect("generated queries are valid");
        let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(3)));
        for workers in [2usize, 4, 8] {
            for slot_limit in [0usize, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT] {
                let (scoped, pooled) = engine_pair(&pool, workers, slot_limit);
                let scoped_result = scoped
                    .execute_with_view(&built_cube, &built_query, &built_view)
                    .expect("scoped execution succeeds where serial does");
                let pooled_result = pooled
                    .execute_with_view(&built_cube, &built_query, &built_view)
                    .expect("pooled execution succeeds where scoped does");
                prop_assert_eq!(
                    &scoped_result, &serial,
                    "scoped vs serial, workers={} slot_limit={}", workers, slot_limit
                );
                prop_assert_eq!(
                    &pooled_result, &serial,
                    "pooled vs serial, workers={} slot_limit={}", workers, slot_limit
                );
            }
        }
    }

    /// Batch equivalence through the pool: the shared-scan batch path
    /// submits its morsel loop to the pool exactly like standalone
    /// execution does, so every batch slot must match the standalone
    /// *pooled* result — which the property above ties to serial.
    #[test]
    fn pooled_batch_matches_standalone(
        cube in cube_spec(),
        queries in prop::collection::vec(query_spec(), 1..4),
        view in view_spec(),
    ) {
        let built_cube = build_cube(&cube);
        let built_queries: Vec<Query> = queries.iter().map(build_query).collect();
        let built_view = build_view(&view, &cube);
        let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(2)));
        let (scoped, pooled) = engine_pair(&pool, 4, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT);
        let scoped_batch = scoped.execute_batch_with_view(&built_cube, &built_queries, &built_view);
        let pooled_batch = pooled.execute_batch_with_view(&built_cube, &built_queries, &built_view);
        prop_assert_eq!(scoped_batch.len(), pooled_batch.len());
        for (slot, (scoped_entry, pooled_entry)) in
            scoped_batch.iter().zip(pooled_batch.iter()).enumerate()
        {
            match (scoped_entry, pooled_entry) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "batch slot {}", slot),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "batch slot {} ok/err mismatch", slot),
            }
            if let Ok(expected) = scoped_entry {
                let standalone = pooled
                    .execute_with_view(&built_cube, &built_queries[slot], &built_view)
                    .expect("standalone pooled execution succeeds");
                prop_assert_eq!(&standalone, expected, "batch slot {} vs standalone", slot);
            }
        }
    }

    /// Queue-depth caps degrade parallelism, never correctness: a tenant
    /// whose `max_queued` budget admits fewer helper items than requested
    /// (including zero — pure caller-inline execution) must still produce
    /// the bit-identical result.
    #[test]
    fn queue_caps_shed_helpers_not_correctness(
        cube in cube_spec(),
        query in query_spec(),
        max_queued in 0usize..3,
    ) {
        let built_cube = build_cube(&cube);
        let built_query = build_query(&query);
        let view = InstanceView::unrestricted();
        let serial = QueryEngine::with_config(ExecutionConfig::serial())
            .execute_serial_with_view(&built_cube, &built_query, &view)
            .expect("generated queries are valid");
        let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(2)));
        pool.set_policy(
            sdwp_obs::ClassId::default(),
            TenantPolicy::default().with_max_queued(max_queued),
        );
        let (_, pooled) = engine_pair(&pool, 8, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT);
        let pooled_result = pooled
            .execute_with_view(&built_cube, &built_query, &view)
            .expect("pooled execution succeeds");
        prop_assert_eq!(&pooled_result, &serial, "max_queued={}", max_queued);
    }
}

/// One pool shared by concurrent querying threads of different tenants:
/// every thread's result must match the serial reference computed on the
/// same snapshot, whatever interleaving the scheduler picks.
#[test]
fn concurrent_tenants_share_one_pool_without_cross_talk() {
    let spec = CubeSpec {
        d0_members: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        d1_members: 3,
        facts: (0..240)
            .map(|i| {
                (
                    i,
                    i * 7,
                    Some((i as i32 % 64) - 32),
                    Some(i as i32 % 17),
                    None,
                )
            })
            .collect(),
    };
    let cube = Arc::new(build_cube(&spec));
    let queries: Vec<Query> = vec![
        Query::over("F")
            .group_by(AttributeRef::new("D0", "A", "name"))
            .measure("M1"),
        Query::over("F")
            .group_by(AttributeRef::new("D1", "T", "date"))
            .measure_agg("M1", AggregationFunction::Avg)
            .measure_agg("M3", AggregationFunction::Count),
        Query::over("F")
            .group_by(AttributeRef::new("D0", "B", "name"))
            .measure_agg("M2", AggregationFunction::Max)
            .limit(3),
    ];
    let serial_engine = QueryEngine::with_config(ExecutionConfig::serial());
    let view = InstanceView::unrestricted();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            serial_engine
                .execute_serial_with_view(&cube, q, &view)
                .expect("reference query runs")
        })
        .collect();

    let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(3)));
    // Distinct tenants with distinct weights, so the scheduler actually
    // has classes to arbitrate between.
    for (tenant, weight) in [(0u32, 4u32), (1, 2), (2, 1)] {
        pool.set_policy(
            sdwp_obs::ClassId(tenant as u8),
            TenantPolicy::default().with_weight(weight),
        );
    }
    std::thread::scope(|scope| {
        for round in 0..3 {
            for (index, query) in queries.iter().enumerate() {
                let pool = Arc::clone(&pool);
                let cube = Arc::clone(&cube);
                let expected = &expected[index];
                let query = query.clone();
                scope.spawn(move || {
                    let engine = QueryEngine::with_pool(
                        ExecutionConfig::default()
                            .with_workers(4)
                            .with_morsel_rows(16),
                        pool,
                    );
                    let result = engine
                        .execute_with_view(&cube, &query, &InstanceView::unrestricted())
                        .expect("pooled query runs");
                    assert_eq!(
                        &result, expected,
                        "round {round} query {index} diverged under contention"
                    );
                });
            }
        }
    });
}

/// Dropping the pool while idle joins every worker; a fresh engine built
/// on a new pool keeps answering. Guards the shutdown path against
/// leaked workers or poisoned scheduler state.
#[test]
fn pool_shutdown_is_clean_and_replaceable() {
    let spec = CubeSpec {
        d0_members: vec![(0, 1), (1, 2)],
        d1_members: 1,
        facts: (0..64)
            .map(|i| (i, 0, Some(i as i32 % 7), None, None))
            .collect(),
    };
    let cube = build_cube(&spec);
    let query = Query::over("F")
        .group_by(AttributeRef::new("D0", "A", "name"))
        .measure("M1");
    let serial = QueryEngine::with_config(ExecutionConfig::serial())
        .execute_serial(&cube, &query)
        .unwrap();
    for _ in 0..3 {
        let pool = Arc::new(MorselPool::new(PoolConfig::default().with_workers(2)));
        let engine = QueryEngine::with_pool(
            ExecutionConfig::default()
                .with_workers(3)
                .with_morsel_rows(8),
            Arc::clone(&pool),
        );
        assert_eq!(engine.execute(&cube, &query).unwrap(), serial);
        drop(engine);
        drop(pool); // joins the workers; a hang here fails via test timeout
    }
}
