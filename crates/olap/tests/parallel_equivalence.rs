//! The parallel-equivalence property suite: for arbitrary generated
//! cubes, queries and personalized views, the morsel-parallel executor at
//! 1, 2 and 8 workers must return results **identical** to the serial
//! row-at-a-time reference — same groups, same aggregates, same row order
//! after sort/limit, same scan counters.
//!
//! Measure values are generated as dyadic rationals (multiples of 0.25
//! well inside `f64`'s 53-bit mantissa), so every partial sum is exact
//! and float addition is associative on the generated data. That makes
//! bit-identity a *provable* property of the executor rather than an
//! approximate one: any grouping, filtering, ordering or merge bug shows
//! up as a hard mismatch instead of hiding inside a rounding tolerance.
//! A separate property below checks worker-count invariance on arbitrary
//! (non-exact) floats, where the fixed morsel-merge tree — not exactness —
//! is what guarantees determinism.

use proptest::prelude::*;
use sdwp_model::{
    AggregationFunction, Attribute, AttributeType, DimensionBuilder, FactBuilder, Schema,
    SchemaBuilder,
};
use sdwp_olap::{
    AttributeRef, CellValue, Cube, ExecutionConfig, Filter, InstanceView, Query, QueryEngine,
};

/// Pool of attribute values; small so group keys collide often.
const POOL: [&str; 4] = ["x", "y", "z", "w"];
/// Group-by keys the query generator picks from.
const GROUP_KEYS: [(&str, &str, &str); 3] = [
    ("D0", "A", "name"),
    ("D0", "B", "name"),
    ("D1", "T", "date"),
];
const MEASURES: [&str; 3] = ["M1", "M2", "M3"];
const AGGREGATIONS: [AggregationFunction; 6] = [
    AggregationFunction::Sum,
    AggregationFunction::Avg,
    AggregationFunction::Min,
    AggregationFunction::Max,
    AggregationFunction::Count,
    AggregationFunction::CountDistinct,
];

fn schema() -> Schema {
    SchemaBuilder::new("PropDW")
        .dimension(
            DimensionBuilder::new("D0")
                .simple_level("A", "name")
                .simple_level("B", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("D1")
                .level(
                    "T",
                    vec![Attribute::descriptor("date", AttributeType::Date)],
                )
                .build(),
        )
        .fact(
            FactBuilder::new("F")
                .measure("M1", AttributeType::Float)
                .measure_with("M2", AttributeType::Float, AggregationFunction::Avg)
                .measure("M3", AttributeType::Integer)
                .dimension("D0")
                .dimension("D1")
                .build(),
        )
        .build()
        .expect("property schema is valid")
}

/// One generated fact row: raw foreign keys (reduced modulo the member
/// counts at build time) and three optional measure values.
type FactSpec = (usize, usize, Option<i32>, Option<i32>, Option<i64>);

/// Generated cube content: per-member attribute picks for D0 (index 4 =
/// null), the D1 member count, and the fact rows.
#[derive(Debug, Clone)]
struct CubeSpec {
    d0_members: Vec<(usize, usize)>,
    d1_members: usize,
    facts: Vec<FactSpec>,
}

fn cube_spec() -> impl Strategy<Value = CubeSpec> {
    (
        prop::collection::vec((0usize..=POOL.len(), 0usize..=POOL.len()), 1..6),
        1usize..5,
        prop::collection::vec(
            (
                any::<usize>(),
                any::<usize>(),
                option_of(-64i32..65),
                option_of(-64i32..65),
                option_of(-9i32..10).prop_map(|v| v.map(i64::from)),
            ),
            0..80,
        ),
    )
        .prop_map(|(d0_members, d1_members, facts)| CubeSpec {
            d0_members,
            d1_members,
            facts,
        })
}

/// `Option<T>` strategy: roughly one value in three is `None` (a null
/// cell / an absent query part).
fn option_of<S>(values: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    let some = values.prop_map(Some).boxed();
    prop_oneof![Just(None).boxed(), some.clone(), some].boxed()
}

fn pool_cell(index: usize) -> CellValue {
    if index >= POOL.len() {
        CellValue::Null
    } else {
        CellValue::from(POOL[index])
    }
}

fn build_cube(spec: &CubeSpec) -> Cube {
    let mut cube = Cube::new(schema());
    for (a, b) in &spec.d0_members {
        cube.add_dimension_member(
            "D0",
            vec![("A.name", pool_cell(*a)), ("B.name", pool_cell(*b))],
        )
        .expect("D0 member loads");
    }
    for day in 0..spec.d1_members {
        // Dates repeat modulo 3 so the date group key collides too.
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(day as i64 % 3))])
            .expect("D1 member loads");
    }
    for (fk0, fk1, m1, m2, m3) in &spec.facts {
        let mut measures: Vec<(&str, CellValue)> = Vec::new();
        if let Some(v) = m1 {
            // Dyadic: multiples of 0.25, exactly representable.
            measures.push(("M1", CellValue::Float(f64::from(*v) * 0.25)));
        }
        if let Some(v) = m2 {
            measures.push(("M2", CellValue::Float(f64::from(*v) * 0.5)));
        }
        if let Some(v) = m3 {
            measures.push(("M3", CellValue::Integer(*v)));
        }
        cube.add_fact_row(
            "F",
            vec![
                ("D0", fk0 % spec.d0_members.len()),
                ("D1", fk1 % spec.d1_members),
            ],
            measures,
        )
        .expect("fact row loads");
    }
    cube
}

/// A generated query: group-by key picks, measures with optional
/// aggregation overrides, an optional dimension filter, an optional fact
/// filter and an optional limit.
#[derive(Debug, Clone)]
struct QuerySpec {
    group_by: Vec<usize>,
    measures: Vec<(usize, Option<usize>)>,
    dim_filter: Option<usize>,
    fact_filter: Option<i32>,
    limit: Option<usize>,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec(0usize..GROUP_KEYS.len(), 0..3),
        prop::collection::vec(
            (
                0usize..MEASURES.len(),
                option_of(0usize..AGGREGATIONS.len()),
            ),
            1..4,
        ),
        option_of(0usize..POOL.len()),
        option_of(-32i32..33),
        option_of(0usize..6),
    )
        .prop_map(
            |(group_by, measures, dim_filter, fact_filter, limit)| QuerySpec {
                group_by,
                measures,
                dim_filter,
                fact_filter,
                limit,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Query {
    let mut query = Query::over("F");
    for key in &spec.group_by {
        let (dimension, level, attribute) = GROUP_KEYS[*key];
        query = query.group_by(AttributeRef::new(dimension, level, attribute));
    }
    for (measure, aggregation) in &spec.measures {
        query = match aggregation {
            Some(agg) => query.measure_agg(MEASURES[*measure], AGGREGATIONS[*agg]),
            None => query.measure(MEASURES[*measure]),
        };
    }
    if let Some(value) = spec.dim_filter {
        query = query.filter_dimension("D0", Filter::eq("A.name", POOL[value]));
    }
    if let Some(threshold) = spec.fact_filter {
        query = query.filter_fact(Filter::Attribute {
            column: "M1".into(),
            op: sdwp_olap::CompareOp::Ge,
            value: CellValue::Float(f64::from(threshold) * 0.25),
        });
    }
    if let Some(limit) = spec.limit {
        query = query.limit(limit);
    }
    query
}

/// A generated personalized view: optional member selection on D0 and
/// optional fact-row selection (raw ids reduced modulo the table sizes).
#[derive(Debug, Clone)]
struct ViewSpec {
    d0_selection: Option<Vec<usize>>,
    fact_selection: Option<Vec<usize>>,
}

fn view_spec() -> impl Strategy<Value = ViewSpec> {
    (
        option_of(prop::collection::vec(any::<usize>(), 0..6)),
        option_of(prop::collection::vec(any::<usize>(), 0..40)),
    )
        .prop_map(|(d0_selection, fact_selection)| ViewSpec {
            d0_selection,
            fact_selection,
        })
}

fn build_view(spec: &ViewSpec, cube_spec: &CubeSpec) -> InstanceView {
    let mut view = InstanceView::unrestricted();
    if let Some(members) = &spec.d0_selection {
        view.select_dimension_members("D0", members.iter().map(|m| m % cube_spec.d0_members.len()));
    }
    if let Some(rows) = &spec.fact_selection {
        let total = cube_spec.facts.len();
        if total > 0 {
            view.select_fact_rows("F", rows.iter().map(|r| r % total));
        } else {
            view.select_fact_rows("F", std::iter::empty());
        }
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: parallel execution at 1, 2 and 8 workers is
    /// indistinguishable from the serial reference for every generated
    /// (cube, query, view) — including row order after sort and limit.
    #[test]
    fn parallel_equals_serial_reference(
        cube in cube_spec(),
        query in query_spec(),
        view in view_spec(),
    ) {
        let built_cube = build_cube(&cube);
        let built_query = build_query(&query);
        let built_view = build_view(&view, &cube);
        let serial = QueryEngine::with_config(ExecutionConfig::serial())
            .execute_serial_with_view(&built_cube, &built_query, &built_view)
            .expect("generated queries are valid");
        for workers in [1usize, 2, 8] {
            // A small prime morsel size forces ragged chunks and many
            // merges; slot limit 0 forces every grouped query onto the
            // integer-keyed hashed fallback while the default keeps the
            // flat dense-slot path live.
            for slot_limit in [0usize, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT] {
                let engine = QueryEngine::with_config(
                    ExecutionConfig::default()
                        .with_workers(workers)
                        .with_morsel_rows(7)
                        .with_group_slot_limit(slot_limit),
                );
                let parallel = engine
                    .execute_with_view(&built_cube, &built_query, &built_view)
                    .expect("parallel execution succeeds where serial does");
                prop_assert_eq!(
                    &parallel, &serial,
                    "workers={} slot_limit={}", workers, slot_limit
                );
            }
        }
    }

    /// Grouped equivalence across the flat-slot threshold and cardinality
    /// extremes: the same generated warehouse grouped through every slot
    /// limit around its exact cardinality — hashed (0), just-below, exact,
    /// and unbounded — must match the serial reference bit-for-bit.
    #[test]
    fn grouped_paths_agree_across_the_slot_threshold(
        members in prop::collection::vec(0usize..=POOL.len(), 1..40),
        facts in prop::collection::vec(
            (any::<usize>(), option_of(-64i32..65)),
            0..60,
        ),
    ) {
        let mut cube = Cube::new(schema());
        for (i, a) in members.iter().enumerate() {
            // High member counts with a small value pool: many members
            // collapse onto few dense key ids, like city roll-ups do.
            cube.add_dimension_member(
                "D0",
                vec![
                    ("A.name", pool_cell(*a)),
                    ("B.name", pool_cell(i % (POOL.len() + 1))),
                ],
            ).unwrap();
        }
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(0))]).unwrap();
        for (fk, m) in &facts {
            let mut measures: Vec<(&str, CellValue)> = Vec::new();
            if let Some(v) = m {
                measures.push(("M1", CellValue::Float(f64::from(*v) * 0.25)));
            }
            cube.add_fact_row("F", vec![("D0", fk % members.len()), ("D1", 0)], measures)
                .unwrap();
        }
        let query = Query::over("F")
            .group_by(AttributeRef::new("D0", "A", "name"))
            .group_by(AttributeRef::new("D0", "B", "name"))
            .measure("M1")
            .measure_agg("M1", AggregationFunction::Min);
        let serial = QueryEngine::with_config(ExecutionConfig::serial())
            .execute_serial_with_view(&cube, &query, &InstanceView::unrestricted())
            .expect("query is valid");
        // Exact cardinality = product of (distinct values + reserved null
        // slot) per attribute, mirroring the engine's dictionary sizes.
        let distinct = |cells: Vec<CellValue>| {
            let mut keys: Vec<String> = cells.iter().map(CellValue::group_key).collect();
            keys.sort();
            keys.dedup();
            // +1 unless Null is already among the values (the dictionary
            // always reserves a null id; a null member value reuses it).
            keys.len() + usize::from(!cells.iter().any(CellValue::is_null))
        };
        let card_a = distinct(members.iter().map(|a| pool_cell(*a)).collect());
        let card_b = distinct((0..members.len()).map(|i| pool_cell(i % (POOL.len() + 1))).collect());
        let exact = card_a * card_b;
        for slot_limit in [0usize, exact.saturating_sub(1), exact, usize::MAX] {
            let engine = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(4)
                    .with_morsel_rows(5)
                    .with_group_slot_limit(slot_limit),
            );
            let parallel = engine
                .execute(&cube, &query)
                .expect("parallel execution succeeds");
            prop_assert_eq!(&parallel, &serial, "slot_limit={}", slot_limit);
        }
    }

    /// Worker-count invariance on *arbitrary* (non-dyadic) floats: the
    /// morsel-merge tree is fixed by the morsel size, so however the sums
    /// round, every worker count must round identically.
    #[test]
    fn worker_count_invariant_for_arbitrary_floats(
        values in prop::collection::vec(prop::num::f64::NORMAL, 1..120),
        keys in prop::collection::vec(0usize..3, 1..120),
    ) {
        let mut cube = Cube::new(schema());
        for name in POOL.iter().take(3) {
            cube.add_dimension_member(
                "D0",
                vec![("A.name", CellValue::from(*name)), ("B.name", CellValue::Null)],
            ).unwrap();
        }
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(0))]).unwrap();
        for (i, value) in values.iter().enumerate() {
            let key = keys[i % keys.len()];
            cube.add_fact_row(
                "F",
                vec![("D0", key), ("D1", 0)],
                vec![("M1", CellValue::Float(*value))],
            ).unwrap();
        }
        let query = Query::over("F")
            .group_by(AttributeRef::new("D0", "A", "name"))
            .measure("M1")
            .measure_agg("M1", AggregationFunction::Avg);
        let reference = QueryEngine::with_config(
            ExecutionConfig::default().with_workers(1).with_morsel_rows(5),
        ).execute(&cube, &query).unwrap();
        for workers in [2usize, 3, 8] {
            let result = QueryEngine::with_config(
                ExecutionConfig::default().with_workers(workers).with_morsel_rows(5),
            ).execute(&cube, &query).unwrap();
            prop_assert_eq!(&result, &reference, "workers={}", workers);
        }
    }
}

/// Text keys containing the serial reference's key separator must not
/// collapse composite groups: the serial loop length-prefixes each
/// attribute's key (an injective encoding), agreeing with the dense-id
/// parallel path, which keys attributes independently by construction.
#[test]
fn adversarial_separator_keys_stay_distinct() {
    let mut cube = Cube::new(schema());
    // Crafted so naive separator-joined keys would collide:
    // ("a\u{1f}tb", "c") and ("a", "b\u{1f}tc") concatenate identically.
    cube.add_dimension_member(
        "D0",
        vec![
            ("A.name", CellValue::from("a\u{1f}tb")),
            ("B.name", CellValue::from("c")),
        ],
    )
    .unwrap();
    cube.add_dimension_member(
        "D0",
        vec![
            ("A.name", CellValue::from("a")),
            ("B.name", CellValue::from("b\u{1f}tc")),
        ],
    )
    .unwrap();
    cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(0))])
        .unwrap();
    for member in 0..2 {
        cube.add_fact_row(
            "F",
            vec![("D0", member), ("D1", 0)],
            vec![("M1", CellValue::Float(1.0))],
        )
        .unwrap();
    }
    let query = Query::over("F")
        .group_by(AttributeRef::new("D0", "A", "name"))
        .group_by(AttributeRef::new("D0", "B", "name"))
        .measure("M1");
    let serial = QueryEngine::with_config(ExecutionConfig::serial())
        .execute_serial(&cube, &query)
        .unwrap();
    assert_eq!(serial.len(), 2, "separator-bearing keys must not merge");
    for slot_limit in [0usize, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT] {
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(2)
                .with_morsel_rows(1)
                .with_group_slot_limit(slot_limit),
        )
        .execute(&cube, &query)
        .unwrap();
        assert_eq!(parallel, serial, "slot_limit={slot_limit}");
    }
}

/// Regression for the view check's pre-resolved FK indices: a grouped
/// query through a view restricting both a dimension and the fact's row
/// set — including a selection captured *before* a compaction, so the
/// resolved check's hoisted remap walk is exercised — must agree with
/// the serial reference, which still goes through the name-based
/// `allows_fact_row`.
#[test]
fn view_restricted_grouped_query_matches_serial_reference() {
    let mut cube = Cube::new(schema());
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
        cube.add_dimension_member(
            "D0",
            vec![("A.name", pool_cell(a)), ("B.name", pool_cell(b))],
        )
        .unwrap();
    }
    cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(0))])
        .unwrap();
    for row in 0..24 {
        cube.add_fact_row(
            "F",
            vec![("D0", row % 4), ("D1", 0)],
            vec![("M1", CellValue::Float(row as f64 * 0.25))],
        )
        .unwrap();
    }
    // Capture the selection at version 0, then retract and compact so
    // queried row ids must translate backwards through the remap.
    let mut view = InstanceView::unrestricted();
    view.select_dimension_members("D0", [0usize, 1, 2]);
    view.select_fact_rows("F", (0..24).filter(|r| r % 3 != 0));
    for row in [1usize, 4, 7, 10] {
        cube.retract_fact_row("F", row).unwrap();
    }
    cube.compact_fact_table("F").unwrap();
    let query = Query::over("F")
        .group_by(AttributeRef::new("D0", "A", "name"))
        .measure("M1")
        .measure_agg("M1", AggregationFunction::Count);
    let serial = QueryEngine::with_config(ExecutionConfig::serial())
        .execute_serial_with_view(&cube, &query, &view)
        .unwrap();
    assert!(
        serial.rows.iter().len() > 1,
        "the restricted view should still leave several groups"
    );
    for workers in [1usize, 2, 4] {
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(workers)
                .with_morsel_rows(5),
        )
        .execute_with_view(&cube, &query, &view)
        .unwrap();
        assert_eq!(parallel, serial, "workers={workers}");
    }
}

/// All-null measure columns: the group must still exist (a matched row
/// creates it) with SUM 0.0 / AVG-MIN-MAX null / COUNT 0, identically on
/// the flat, hashed and serial paths.
#[test]
fn all_null_measures_keep_groups_alive_on_every_path() {
    let mut cube = Cube::new(schema());
    for name in ["x", "y"] {
        cube.add_dimension_member(
            "D0",
            vec![
                ("A.name", CellValue::from(name)),
                ("B.name", CellValue::Null),
            ],
        )
        .unwrap();
    }
    cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(0))])
        .unwrap();
    for row in 0..10 {
        // Every M1 cell is null; M3 never written either.
        cube.add_fact_row("F", vec![("D0", row % 2), ("D1", 0)], vec![])
            .unwrap();
    }
    let query = Query::over("F")
        .group_by(AttributeRef::new("D0", "A", "name"))
        .measure("M1")
        .measure_agg("M1", AggregationFunction::Avg)
        .measure_agg("M1", AggregationFunction::Min)
        .measure_agg("M3", AggregationFunction::Count);
    let serial = QueryEngine::with_config(ExecutionConfig::serial())
        .execute_serial(&cube, &query)
        .unwrap();
    assert_eq!(serial.len(), 2, "all-null groups still materialise");
    assert_eq!(serial.rows[0].values[0], CellValue::Float(0.0));
    assert_eq!(serial.rows[0].values[1], CellValue::Null);
    assert_eq!(serial.rows[0].values[2], CellValue::Null);
    assert_eq!(serial.rows[0].values[3], CellValue::Integer(0));
    for slot_limit in [0usize, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT] {
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(3)
                .with_group_slot_limit(slot_limit),
        )
        .execute(&cube, &query)
        .unwrap();
        assert_eq!(parallel, serial, "slot_limit={slot_limit}");
    }
}
