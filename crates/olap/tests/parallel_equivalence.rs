//! The parallel-equivalence property suite: for arbitrary generated
//! cubes, queries and personalized views, the morsel-parallel executor at
//! 1, 2 and 8 workers must return results **identical** to the serial
//! row-at-a-time reference — same groups, same aggregates, same row order
//! after sort/limit, same scan counters.
//!
//! Measure values are generated as dyadic rationals (multiples of 0.25
//! well inside `f64`'s 53-bit mantissa), so every partial sum is exact
//! and float addition is associative on the generated data. That makes
//! bit-identity a *provable* property of the executor rather than an
//! approximate one: any grouping, filtering, ordering or merge bug shows
//! up as a hard mismatch instead of hiding inside a rounding tolerance.
//! A separate property below checks worker-count invariance on arbitrary
//! (non-exact) floats, where the fixed morsel-merge tree — not exactness —
//! is what guarantees determinism.

use proptest::prelude::*;
use sdwp_model::{
    AggregationFunction, Attribute, AttributeType, DimensionBuilder, FactBuilder, Schema,
    SchemaBuilder,
};
use sdwp_olap::{
    AttributeRef, CellValue, Cube, ExecutionConfig, Filter, InstanceView, Query, QueryEngine,
};

/// Pool of attribute values; small so group keys collide often.
const POOL: [&str; 4] = ["x", "y", "z", "w"];
/// Group-by keys the query generator picks from.
const GROUP_KEYS: [(&str, &str, &str); 3] = [
    ("D0", "A", "name"),
    ("D0", "B", "name"),
    ("D1", "T", "date"),
];
const MEASURES: [&str; 3] = ["M1", "M2", "M3"];
const AGGREGATIONS: [AggregationFunction; 6] = [
    AggregationFunction::Sum,
    AggregationFunction::Avg,
    AggregationFunction::Min,
    AggregationFunction::Max,
    AggregationFunction::Count,
    AggregationFunction::CountDistinct,
];

fn schema() -> Schema {
    SchemaBuilder::new("PropDW")
        .dimension(
            DimensionBuilder::new("D0")
                .simple_level("A", "name")
                .simple_level("B", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("D1")
                .level(
                    "T",
                    vec![Attribute::descriptor("date", AttributeType::Date)],
                )
                .build(),
        )
        .fact(
            FactBuilder::new("F")
                .measure("M1", AttributeType::Float)
                .measure_with("M2", AttributeType::Float, AggregationFunction::Avg)
                .measure("M3", AttributeType::Integer)
                .dimension("D0")
                .dimension("D1")
                .build(),
        )
        .build()
        .expect("property schema is valid")
}

/// One generated fact row: raw foreign keys (reduced modulo the member
/// counts at build time) and three optional measure values.
type FactSpec = (usize, usize, Option<i32>, Option<i32>, Option<i64>);

/// Generated cube content: per-member attribute picks for D0 (index 4 =
/// null), the D1 member count, and the fact rows.
#[derive(Debug, Clone)]
struct CubeSpec {
    d0_members: Vec<(usize, usize)>,
    d1_members: usize,
    facts: Vec<FactSpec>,
}

fn cube_spec() -> impl Strategy<Value = CubeSpec> {
    (
        prop::collection::vec((0usize..=POOL.len(), 0usize..=POOL.len()), 1..6),
        1usize..5,
        prop::collection::vec(
            (
                any::<usize>(),
                any::<usize>(),
                option_of(-64i32..65),
                option_of(-64i32..65),
                option_of(-9i32..10).prop_map(|v| v.map(i64::from)),
            ),
            0..80,
        ),
    )
        .prop_map(|(d0_members, d1_members, facts)| CubeSpec {
            d0_members,
            d1_members,
            facts,
        })
}

/// `Option<T>` strategy: roughly one value in three is `None` (a null
/// cell / an absent query part).
fn option_of<S>(values: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    let some = values.prop_map(Some).boxed();
    prop_oneof![Just(None).boxed(), some.clone(), some].boxed()
}

fn pool_cell(index: usize) -> CellValue {
    if index >= POOL.len() {
        CellValue::Null
    } else {
        CellValue::from(POOL[index])
    }
}

fn build_cube(spec: &CubeSpec) -> Cube {
    let mut cube = Cube::new(schema());
    for (a, b) in &spec.d0_members {
        cube.add_dimension_member(
            "D0",
            vec![("A.name", pool_cell(*a)), ("B.name", pool_cell(*b))],
        )
        .expect("D0 member loads");
    }
    for day in 0..spec.d1_members {
        // Dates repeat modulo 3 so the date group key collides too.
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(day as i64 % 3))])
            .expect("D1 member loads");
    }
    for (fk0, fk1, m1, m2, m3) in &spec.facts {
        let mut measures: Vec<(&str, CellValue)> = Vec::new();
        if let Some(v) = m1 {
            // Dyadic: multiples of 0.25, exactly representable.
            measures.push(("M1", CellValue::Float(f64::from(*v) * 0.25)));
        }
        if let Some(v) = m2 {
            measures.push(("M2", CellValue::Float(f64::from(*v) * 0.5)));
        }
        if let Some(v) = m3 {
            measures.push(("M3", CellValue::Integer(*v)));
        }
        cube.add_fact_row(
            "F",
            vec![
                ("D0", fk0 % spec.d0_members.len()),
                ("D1", fk1 % spec.d1_members),
            ],
            measures,
        )
        .expect("fact row loads");
    }
    cube
}

/// A generated query: group-by key picks, measures with optional
/// aggregation overrides, an optional dimension filter, an optional fact
/// filter and an optional limit.
#[derive(Debug, Clone)]
struct QuerySpec {
    group_by: Vec<usize>,
    measures: Vec<(usize, Option<usize>)>,
    dim_filter: Option<usize>,
    fact_filter: Option<i32>,
    limit: Option<usize>,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec(0usize..GROUP_KEYS.len(), 0..3),
        prop::collection::vec(
            (
                0usize..MEASURES.len(),
                option_of(0usize..AGGREGATIONS.len()),
            ),
            1..4,
        ),
        option_of(0usize..POOL.len()),
        option_of(-32i32..33),
        option_of(0usize..6),
    )
        .prop_map(
            |(group_by, measures, dim_filter, fact_filter, limit)| QuerySpec {
                group_by,
                measures,
                dim_filter,
                fact_filter,
                limit,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Query {
    let mut query = Query::over("F");
    for key in &spec.group_by {
        let (dimension, level, attribute) = GROUP_KEYS[*key];
        query = query.group_by(AttributeRef::new(dimension, level, attribute));
    }
    for (measure, aggregation) in &spec.measures {
        query = match aggregation {
            Some(agg) => query.measure_agg(MEASURES[*measure], AGGREGATIONS[*agg]),
            None => query.measure(MEASURES[*measure]),
        };
    }
    if let Some(value) = spec.dim_filter {
        query = query.filter_dimension("D0", Filter::eq("A.name", POOL[value]));
    }
    if let Some(threshold) = spec.fact_filter {
        query = query.filter_fact(Filter::Attribute {
            column: "M1".into(),
            op: sdwp_olap::CompareOp::Ge,
            value: CellValue::Float(f64::from(threshold) * 0.25),
        });
    }
    if let Some(limit) = spec.limit {
        query = query.limit(limit);
    }
    query
}

/// A generated personalized view: optional member selection on D0 and
/// optional fact-row selection (raw ids reduced modulo the table sizes).
#[derive(Debug, Clone)]
struct ViewSpec {
    d0_selection: Option<Vec<usize>>,
    fact_selection: Option<Vec<usize>>,
}

fn view_spec() -> impl Strategy<Value = ViewSpec> {
    (
        option_of(prop::collection::vec(any::<usize>(), 0..6)),
        option_of(prop::collection::vec(any::<usize>(), 0..40)),
    )
        .prop_map(|(d0_selection, fact_selection)| ViewSpec {
            d0_selection,
            fact_selection,
        })
}

fn build_view(spec: &ViewSpec, cube_spec: &CubeSpec) -> InstanceView {
    let mut view = InstanceView::unrestricted();
    if let Some(members) = &spec.d0_selection {
        view.select_dimension_members("D0", members.iter().map(|m| m % cube_spec.d0_members.len()));
    }
    if let Some(rows) = &spec.fact_selection {
        let total = cube_spec.facts.len();
        if total > 0 {
            view.select_fact_rows("F", rows.iter().map(|r| r % total));
        } else {
            view.select_fact_rows("F", std::iter::empty());
        }
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: parallel execution at 1, 2 and 8 workers is
    /// indistinguishable from the serial reference for every generated
    /// (cube, query, view) — including row order after sort and limit.
    #[test]
    fn parallel_equals_serial_reference(
        cube in cube_spec(),
        query in query_spec(),
        view in view_spec(),
    ) {
        let built_cube = build_cube(&cube);
        let built_query = build_query(&query);
        let built_view = build_view(&view, &cube);
        let serial = QueryEngine::with_config(ExecutionConfig::serial())
            .execute_serial_with_view(&built_cube, &built_query, &built_view)
            .expect("generated queries are valid");
        for workers in [1usize, 2, 8] {
            // A small prime morsel size forces ragged chunks and many merges.
            let engine = QueryEngine::with_config(
                ExecutionConfig::default().with_workers(workers).with_morsel_rows(7),
            );
            let parallel = engine
                .execute_with_view(&built_cube, &built_query, &built_view)
                .expect("parallel execution succeeds where serial does");
            prop_assert_eq!(&parallel, &serial, "workers={}", workers);
        }
    }

    /// Worker-count invariance on *arbitrary* (non-dyadic) floats: the
    /// morsel-merge tree is fixed by the morsel size, so however the sums
    /// round, every worker count must round identically.
    #[test]
    fn worker_count_invariant_for_arbitrary_floats(
        values in prop::collection::vec(prop::num::f64::NORMAL, 1..120),
        keys in prop::collection::vec(0usize..3, 1..120),
    ) {
        let mut cube = Cube::new(schema());
        for name in POOL.iter().take(3) {
            cube.add_dimension_member(
                "D0",
                vec![("A.name", CellValue::from(*name)), ("B.name", CellValue::Null)],
            ).unwrap();
        }
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(0))]).unwrap();
        for (i, value) in values.iter().enumerate() {
            let key = keys[i % keys.len()];
            cube.add_fact_row(
                "F",
                vec![("D0", key), ("D1", 0)],
                vec![("M1", CellValue::Float(*value))],
            ).unwrap();
        }
        let query = Query::over("F")
            .group_by(AttributeRef::new("D0", "A", "name"))
            .measure("M1")
            .measure_agg("M1", AggregationFunction::Avg);
        let reference = QueryEngine::with_config(
            ExecutionConfig::default().with_workers(1).with_morsel_rows(5),
        ).execute(&cube, &query).unwrap();
        for workers in [2usize, 3, 8] {
            let result = QueryEngine::with_config(
                ExecutionConfig::default().with_workers(workers).with_morsel_rows(5),
            ).execute(&cube, &query).unwrap();
            prop_assert_eq!(&result, &reference, "workers={}", workers);
        }
    }
}
