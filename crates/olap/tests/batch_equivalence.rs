//! The batch-equivalence property suite: for arbitrary generated cubes,
//! personalized views and query *batches* — mixed grouped/ungrouped
//! shapes, shared and disjoint filters — `QueryEngine::execute_batch`
//! must return, for every member, a result **identical** to executing
//! that query alone, at every worker count and on both grouped paths.
//! The same holds when the batch runs through a shared group-key
//! dictionary cache, cold or warm.
//!
//! Measures are dyadic rationals (multiples of 0.25), so float addition
//! is exact on the generated data and identity is a provable property:
//! any divergence between the shared-scan path and the standalone path —
//! a mis-shared selection vector, a dictionary served to the wrong
//! query, a merge in the wrong order — fails hard instead of hiding in a
//! rounding tolerance.

use proptest::prelude::*;
use sdwp_model::{
    AggregationFunction, Attribute, AttributeType, DimensionBuilder, FactBuilder, Schema,
    SchemaBuilder,
};
use sdwp_olap::{
    AttributeRef, CellValue, Cube, ExecutionConfig, Filter, GroupDictCache, InstanceView, Query,
    QueryEngine,
};

/// Pool of attribute values; small so group keys collide often and
/// independently generated queries often share (or split) filters.
const POOL: [&str; 4] = ["x", "y", "z", "w"];
const GROUP_KEYS: [(&str, &str, &str); 3] = [
    ("D0", "A", "name"),
    ("D0", "B", "name"),
    ("D1", "T", "date"),
];
const MEASURES: [&str; 3] = ["M1", "M2", "M3"];
const AGGREGATIONS: [AggregationFunction; 6] = [
    AggregationFunction::Sum,
    AggregationFunction::Avg,
    AggregationFunction::Min,
    AggregationFunction::Max,
    AggregationFunction::Count,
    AggregationFunction::CountDistinct,
];

fn schema() -> Schema {
    SchemaBuilder::new("PropDW")
        .dimension(
            DimensionBuilder::new("D0")
                .simple_level("A", "name")
                .simple_level("B", "name")
                .build(),
        )
        .dimension(
            DimensionBuilder::new("D1")
                .level(
                    "T",
                    vec![Attribute::descriptor("date", AttributeType::Date)],
                )
                .build(),
        )
        .fact(
            FactBuilder::new("F")
                .measure("M1", AttributeType::Float)
                .measure_with("M2", AttributeType::Float, AggregationFunction::Avg)
                .measure("M3", AttributeType::Integer)
                .dimension("D0")
                .dimension("D1")
                .build(),
        )
        .build()
        .expect("property schema is valid")
}

type FactSpec = (usize, usize, Option<i32>, Option<i32>, Option<i64>);

#[derive(Debug, Clone)]
struct CubeSpec {
    d0_members: Vec<(usize, usize)>,
    d1_members: usize,
    facts: Vec<FactSpec>,
}

fn cube_spec() -> impl Strategy<Value = CubeSpec> {
    (
        prop::collection::vec((0usize..=POOL.len(), 0usize..=POOL.len()), 1..6),
        1usize..5,
        prop::collection::vec(
            (
                any::<usize>(),
                any::<usize>(),
                option_of(-64i32..65),
                option_of(-64i32..65),
                option_of(-9i32..10).prop_map(|v| v.map(i64::from)),
            ),
            0..60,
        ),
    )
        .prop_map(|(d0_members, d1_members, facts)| CubeSpec {
            d0_members,
            d1_members,
            facts,
        })
}

fn option_of<S>(values: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    let some = values.prop_map(Some).boxed();
    prop_oneof![Just(None).boxed(), some.clone(), some].boxed()
}

fn pool_cell(index: usize) -> CellValue {
    if index >= POOL.len() {
        CellValue::Null
    } else {
        CellValue::from(POOL[index])
    }
}

fn build_cube(spec: &CubeSpec) -> Cube {
    let mut cube = Cube::new(schema());
    for (a, b) in &spec.d0_members {
        cube.add_dimension_member(
            "D0",
            vec![("A.name", pool_cell(*a)), ("B.name", pool_cell(*b))],
        )
        .expect("D0 member loads");
    }
    for day in 0..spec.d1_members {
        cube.add_dimension_member("D1", vec![("T.date", CellValue::Date(day as i64 % 3))])
            .expect("D1 member loads");
    }
    for (fk0, fk1, m1, m2, m3) in &spec.facts {
        let mut measures: Vec<(&str, CellValue)> = Vec::new();
        if let Some(v) = m1 {
            measures.push(("M1", CellValue::Float(f64::from(*v) * 0.25)));
        }
        if let Some(v) = m2 {
            measures.push(("M2", CellValue::Float(f64::from(*v) * 0.5)));
        }
        if let Some(v) = m3 {
            measures.push(("M3", CellValue::Integer(*v)));
        }
        cube.add_fact_row(
            "F",
            vec![
                ("D0", fk0 % spec.d0_members.len()),
                ("D1", fk1 % spec.d1_members),
            ],
            measures,
        )
        .expect("fact row loads");
    }
    cube
}

#[derive(Debug, Clone)]
struct QuerySpec {
    group_by: Vec<usize>,
    measures: Vec<(usize, Option<usize>)>,
    dim_filter: Option<usize>,
    fact_filter: Option<i32>,
    limit: Option<usize>,
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec(0usize..GROUP_KEYS.len(), 0..3),
        prop::collection::vec(
            (
                0usize..MEASURES.len(),
                option_of(0usize..AGGREGATIONS.len()),
            ),
            1..4,
        ),
        option_of(0usize..POOL.len()),
        option_of(-32i32..33),
        option_of(0usize..6),
    )
        .prop_map(
            |(group_by, measures, dim_filter, fact_filter, limit)| QuerySpec {
                group_by,
                measures,
                dim_filter,
                fact_filter,
                limit,
            },
        )
}

fn build_query(spec: &QuerySpec) -> Query {
    let mut query = Query::over("F");
    for key in &spec.group_by {
        let (dimension, level, attribute) = GROUP_KEYS[*key];
        query = query.group_by(AttributeRef::new(dimension, level, attribute));
    }
    for (measure, aggregation) in &spec.measures {
        query = match aggregation {
            Some(agg) => query.measure_agg(MEASURES[*measure], AGGREGATIONS[*agg]),
            None => query.measure(MEASURES[*measure]),
        };
    }
    if let Some(value) = spec.dim_filter {
        query = query.filter_dimension("D0", Filter::eq("A.name", POOL[value]));
    }
    if let Some(threshold) = spec.fact_filter {
        query = query.filter_fact(Filter::Attribute {
            column: "M1".into(),
            op: sdwp_olap::CompareOp::Ge,
            value: CellValue::Float(f64::from(threshold) * 0.25),
        });
    }
    if let Some(limit) = spec.limit {
        query = query.limit(limit);
    }
    query
}

#[derive(Debug, Clone)]
struct ViewSpec {
    d0_selection: Option<Vec<usize>>,
    fact_selection: Option<Vec<usize>>,
}

fn view_spec() -> impl Strategy<Value = ViewSpec> {
    (
        option_of(prop::collection::vec(any::<usize>(), 0..6)),
        option_of(prop::collection::vec(any::<usize>(), 0..40)),
    )
        .prop_map(|(d0_selection, fact_selection)| ViewSpec {
            d0_selection,
            fact_selection,
        })
}

fn build_view(spec: &ViewSpec, cube_spec: &CubeSpec) -> InstanceView {
    let mut view = InstanceView::unrestricted();
    if let Some(members) = &spec.d0_selection {
        view.select_dimension_members("D0", members.iter().map(|m| m % cube_spec.d0_members.len()));
    }
    if let Some(rows) = &spec.fact_selection {
        let total = cube_spec.facts.len();
        if total > 0 {
            view.select_fact_rows("F", rows.iter().map(|r| r % total));
        } else {
            view.select_fact_rows("F", std::iter::empty());
        }
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: every member of a batch — whatever mix of
    /// grouped/ungrouped shapes and shared/disjoint filters the
    /// generators produced — returns exactly what it would standalone,
    /// at 1, 2 and 8 workers, on both grouped paths.
    #[test]
    fn batch_members_equal_standalone_execution(
        cube in cube_spec(),
        queries in prop::collection::vec(query_spec(), 1..6),
        view in view_spec(),
    ) {
        let built_cube = build_cube(&cube);
        let built_queries: Vec<Query> = queries.iter().map(build_query).collect();
        let built_view = build_view(&view, &cube);
        for workers in [1usize, 2, 8] {
            for slot_limit in [0usize, sdwp_olap::DEFAULT_GROUP_SLOT_LIMIT] {
                let engine = QueryEngine::with_config(
                    ExecutionConfig::default()
                        .with_workers(workers)
                        .with_morsel_rows(7)
                        .with_group_slot_limit(slot_limit),
                );
                let batched =
                    engine.execute_batch_with_view(&built_cube, &built_queries, &built_view);
                prop_assert_eq!(batched.len(), built_queries.len());
                for (query, batched) in built_queries.iter().zip(batched) {
                    let standalone = engine.execute_with_view(&built_cube, query, &built_view);
                    match (batched, standalone) {
                        (Ok(batched), Ok(standalone)) => prop_assert_eq!(
                            &batched, &standalone,
                            "workers={} slot_limit={}", workers, slot_limit
                        ),
                        (Err(batched), Err(standalone)) => prop_assert_eq!(
                            batched.to_string(), standalone.to_string(),
                            "workers={} slot_limit={}", workers, slot_limit
                        ),
                        (batched, standalone) => prop_assert!(
                            false,
                            "batch/standalone disagree on success: {:?} vs {:?}",
                            batched, standalone
                        ),
                    }
                }
            }
        }
    }

    /// Dictionary-cache transparency: the batch through a cold cache,
    /// the same batch through the now-warm cache, and the uncached batch
    /// all agree — a cached dictionary is indistinguishable from a
    /// freshly built one.
    #[test]
    fn dictionary_cache_is_transparent(
        cube in cube_spec(),
        queries in prop::collection::vec(query_spec(), 1..5),
        view in view_spec(),
    ) {
        let built_cube = build_cube(&cube);
        let built_queries: Vec<Query> = queries.iter().map(build_query).collect();
        let built_view = build_view(&view, &cube);
        let engine = QueryEngine::with_config(
            ExecutionConfig::default().with_workers(4).with_morsel_rows(7),
        );
        let uncached =
            engine.execute_batch_with_view(&built_cube, &built_queries, &built_view);
        let dicts = GroupDictCache::new();
        for round in 0..2 {
            let cached = engine.execute_batch_cached(
                &built_cube,
                &built_queries,
                &built_view,
                Some((&dicts, 1)),
            );
            for (uncached, cached) in uncached.iter().zip(cached) {
                match (uncached, cached) {
                    (Ok(uncached), Ok(cached)) => {
                        prop_assert_eq!(uncached, &cached, "round={}", round)
                    }
                    (Err(uncached), Err(cached)) => prop_assert_eq!(
                        uncached.to_string(), cached.to_string(), "round={}", round
                    ),
                    (uncached, cached) => prop_assert!(
                        false,
                        "cached/uncached disagree on success: {:?} vs {:?}",
                        uncached, cached
                    ),
                }
            }
        }
    }

    /// Duplicated queries inside one batch: each copy shares the same
    /// filter class and dictionaries, and each must still produce the
    /// standalone result independently.
    #[test]
    fn duplicated_batch_members_all_match(
        cube in cube_spec(),
        query in query_spec(),
        copies in 2usize..5,
    ) {
        let built_cube = build_cube(&cube);
        let built_query = build_query(&query);
        let batch: Vec<Query> = vec![built_query.clone(); copies];
        let engine = QueryEngine::with_config(
            ExecutionConfig::default().with_workers(4).with_morsel_rows(7),
        );
        let standalone = engine.execute(&built_cube, &built_query);
        for batched in engine.execute_batch(&built_cube, &batch) {
            match (&standalone, batched) {
                (Ok(standalone), Ok(batched)) => prop_assert_eq!(standalone, &batched),
                (Err(standalone), Err(batched)) => {
                    prop_assert_eq!(standalone.to_string(), batched.to_string())
                }
                (standalone, batched) => prop_assert!(
                    false,
                    "copy diverged from standalone: {:?} vs {:?}",
                    standalone, batched
                ),
            }
        }
    }
}
