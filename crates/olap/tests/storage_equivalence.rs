//! Storage-equivalence property suite for the chunked copy-on-write
//! layout and the vectorised kernels.
//!
//! Three layers of equivalence, each against a straight-line reference:
//!
//! * chunked [`Column`]s behave exactly like a plain `Vec<CellValue>`
//!   under arbitrary push / set / get sequences, for every chunk size;
//! * the vectorised per-chunk kernels ([`Column::numeric_agg`]) agree
//!   with feeding each row through the row-at-a-time
//!   [`Accumulator`] — including all-null columns and ranges that
//!   straddle chunk boundaries;
//! * whole queries over chunked, tombstoned cubes are identical between
//!   the morsel-parallel executor (which takes the typed / vectorised
//!   fast paths) and the serial `CellValue` reference, and compaction
//!   changes neither the results nor what a pre-compaction view resolves.
//!
//! Float measures are dyadic rationals (multiples of 0.25), so sums are
//! exact and equality is bit-for-bit, not approximate.

use proptest::prelude::*;
use sdwp_model::{
    AggregationFunction, AttributeType, DimensionBuilder, FactBuilder, Schema, SchemaBuilder,
};
use sdwp_olap::aggregate::Accumulator;
use sdwp_olap::{
    AttributeRef, CellValue, Column, ColumnType, Cube, ExecutionConfig, InstanceView, Query,
    QueryEngine,
};

fn option_of<S>(values: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    let some = values.prop_map(Some).boxed();
    prop_oneof![Just(None).boxed(), some.clone(), some].boxed()
}

fn dyadic(v: i32) -> f64 {
    f64::from(v) * 0.25
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked float columns are observably identical to a plain vector
    /// of cells under arbitrary push/set sequences, at every chunk size.
    #[test]
    fn chunked_column_matches_vec_model(
        ops in prop::collection::vec((0usize..3, -64i32..65, any::<usize>()), 1..80),
        chunk_rows in 1usize..6,
    ) {
        let mut column = Column::with_chunk_rows(ColumnType::Float, chunk_rows);
        let mut model: Vec<CellValue> = Vec::new();
        for (op, raw, target) in &ops {
            let (op, raw, target): (usize, i32, usize) = (*op, *raw, *target);
            match op {
                0 => {
                    column.push(CellValue::Float(dyadic(raw))).unwrap();
                    model.push(CellValue::Float(dyadic(raw)));
                }
                1 => {
                    column.push(CellValue::Null).unwrap();
                    model.push(CellValue::Null);
                }
                _ => {
                    if !model.is_empty() {
                        let row = target % model.len();
                        let value = if raw % 3 == 0 {
                            CellValue::Null
                        } else {
                            CellValue::Float(dyadic(raw))
                        };
                        column.set(row, value.clone()).unwrap();
                        model[row] = value;
                    }
                }
            }
        }
        prop_assert_eq!(column.len(), model.len());
        for (row, expected) in model.iter().enumerate() {
            prop_assert_eq!(&column.get(row), expected, "row {}", row);
        }
        prop_assert_eq!(column.get(model.len()), CellValue::Null);
        // Snapshot isolation: a clone taken now never sees later writes.
        let snapshot = column.clone();
        if !model.is_empty() {
            column.set(0, CellValue::Float(1e6)).unwrap();
            prop_assert_eq!(&snapshot.get(0), &model[0]);
        }
    }

    /// The vectorised kernels agree with the row-at-a-time accumulator on
    /// every subrange — all-null chunks, empty ranges and
    /// boundary-straddling ranges included.
    #[test]
    fn vectorised_kernels_match_accumulator_reference(
        values in prop::collection::vec(option_of(-64i32..65), 0..60),
        chunk_rows in 1usize..6,
        raw_start in any::<usize>(),
        raw_end in any::<usize>(),
    ) {
        for column_type in [ColumnType::Float, ColumnType::Integer, ColumnType::Date] {
            let mut column = Column::with_chunk_rows(column_type, chunk_rows);
            for v in &values {
                let cell = match (column_type, v) {
                    (_, None) => CellValue::Null,
                    (ColumnType::Float, Some(v)) => CellValue::Float(dyadic(*v)),
                    (ColumnType::Date, Some(v)) => CellValue::Date(i64::from(*v)),
                    (_, Some(v)) => CellValue::Integer(i64::from(*v)),
                };
                column.push(cell).unwrap();
            }
            let bound = values.len() + 2;
            let mut range = [raw_start % bound, raw_end % bound];
            range.sort_unstable();
            let [start, end] = range;
            let agg = column.numeric_agg(start..end).expect("numeric column");
            // Reference: the serial executor's per-row semantics.
            let mut sum = Accumulator::new(AggregationFunction::Sum);
            let mut min = Accumulator::new(AggregationFunction::Min);
            let mut count = Accumulator::new(AggregationFunction::Count);
            for row in start..end.min(values.len()) {
                sum.update(&column.get(row));
                min.update(&column.get(row));
                count.update(&column.get(row));
            }
            let mut from_kernel_sum = Accumulator::new(AggregationFunction::Sum);
            from_kernel_sum.absorb(&agg);
            let mut from_kernel_min = Accumulator::new(AggregationFunction::Min);
            from_kernel_min.absorb(&agg);
            let mut from_kernel_count = Accumulator::new(AggregationFunction::Count);
            from_kernel_count.absorb(&agg);
            prop_assert_eq!(from_kernel_sum.finish(), sum.finish(), "{:?} sum", column_type);
            prop_assert_eq!(from_kernel_min.finish(), min.finish(), "{:?} min", column_type);
            prop_assert_eq!(from_kernel_count.finish(), count.finish(), "{:?} count", column_type);
        }
    }
}

// ---------------------------------------------------------------------------
// Cube-level equivalence on chunked, tombstoned, compacted storage.
// ---------------------------------------------------------------------------

fn schema() -> Schema {
    SchemaBuilder::new("StorageDW")
        .dimension(DimensionBuilder::new("D").simple_level("L", "name").build())
        .fact(
            FactBuilder::new("F")
                .measure("M", AttributeType::Float)
                .measure("N", AttributeType::Integer)
                .dimension("D")
                .build(),
        )
        .build()
        .expect("storage property schema is valid")
}

const POOL: [&str; 3] = ["x", "y", "z"];

/// Generated warehouse content: member count, fact rows (raw fk + two
/// optional measures), retraction picks, chunk size.
#[derive(Debug, Clone)]
struct WarehouseSpec {
    members: usize,
    facts: Vec<(usize, Option<i32>, Option<i32>)>,
    retractions: Vec<usize>,
    chunk_rows: usize,
}

fn warehouse_spec() -> impl Strategy<Value = WarehouseSpec> {
    (
        1usize..4,
        prop::collection::vec(
            (any::<usize>(), option_of(-64i32..65), option_of(-9i32..10)),
            0..60,
        ),
        prop::collection::vec(any::<usize>(), 0..30),
        1usize..6,
    )
        .prop_map(|(members, facts, retractions, chunk_rows)| WarehouseSpec {
            members,
            facts,
            retractions,
            chunk_rows,
        })
}

fn build_warehouse(spec: &WarehouseSpec) -> Cube {
    let mut cube = Cube::with_chunk_rows(schema(), spec.chunk_rows);
    for m in 0..spec.members {
        cube.add_dimension_member("D", vec![("L.name", CellValue::from(POOL[m % POOL.len()]))])
            .expect("member loads");
    }
    for (fk, m, n) in &spec.facts {
        let mut measures: Vec<(&str, CellValue)> = Vec::new();
        if let Some(v) = m {
            measures.push(("M", CellValue::Float(dyadic(*v))));
        }
        if let Some(v) = n {
            measures.push(("N", CellValue::Integer(i64::from(*v))));
        }
        cube.add_fact_row("F", vec![("D", fk % spec.members)], measures)
            .expect("fact row loads");
    }
    for pick in &spec.retractions {
        if !spec.facts.is_empty() {
            cube.retract_fact_row("F", pick % spec.facts.len())
                .expect("retraction in range");
        }
    }
    cube
}

fn queries() -> Vec<Query> {
    vec![
        // Ungrouped all-numeric: the fully vectorised kernel path.
        Query::over("F").measure("M").measure("N"),
        Query::over("F")
            .measure_agg("M", AggregationFunction::Min)
            .measure_agg("M", AggregationFunction::Max)
            .measure_agg("N", AggregationFunction::Avg)
            .measure_agg("N", AggregationFunction::Count),
        // COUNT DISTINCT forces the CellValue path next to typed reads.
        Query::over("F")
            .measure("M")
            .measure_agg("M", AggregationFunction::CountDistinct),
        // Grouped all-numeric: the dense flat-slot kernel path (groups
        // straddle chunk boundaries — chunk_rows is 1..6 while morsels
        // are 7 rows).
        Query::over("F")
            .group_by(AttributeRef::new("D", "L", "name"))
            .measure("M")
            .measure_agg("N", AggregationFunction::Avg),
        Query::over("F")
            .group_by(AttributeRef::new("D", "L", "name"))
            .measure_agg("M", AggregationFunction::Min)
            .measure_agg("M", AggregationFunction::Max)
            .measure_agg("N", AggregationFunction::Count),
        // Grouped + COUNT DISTINCT: the integer-keyed hashed fallback.
        Query::over("F")
            .group_by(AttributeRef::new("D", "L", "name"))
            .measure_agg("M", AggregationFunction::CountDistinct)
            .measure("N"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked, tombstoned cubes answer identically under the
    /// morsel-parallel executor (typed + vectorised paths) and the serial
    /// CellValue reference, for every worker count and ragged morsel
    /// sizes.
    #[test]
    fn chunked_tombstoned_cubes_match_the_serial_reference(
        spec in warehouse_spec(),
        view_rows in option_of(prop::collection::vec(any::<usize>(), 0..20)),
    ) {
        let cube = build_warehouse(&spec);
        let mut view = InstanceView::unrestricted();
        if let Some(rows) = &view_rows {
            let total = spec.facts.len().max(1);
            view.select_fact_rows("F", rows.iter().map(|r| r % total));
        }
        let serial_engine = QueryEngine::with_config(ExecutionConfig::serial());
        for query in queries() {
            let serial = serial_engine
                .execute_serial_with_view(&cube, &query, &view)
                .expect("generated queries are valid");
            for workers in [1usize, 2, 8] {
                // Slot limit 0 forces the integer-keyed hashed fallback
                // for grouped queries; the default keeps the flat
                // dense-slot path live — both must match the serial
                // string-key reference.
                for slot_limit in [0usize, sdwp_olap::engine::DEFAULT_GROUP_SLOT_LIMIT] {
                    let parallel = QueryEngine::with_config(
                        ExecutionConfig::default()
                            .with_workers(workers)
                            .with_morsel_rows(7)
                            .with_group_slot_limit(slot_limit),
                    )
                    .execute_with_view(&cube, &query, &view)
                    .expect("parallel execution succeeds where serial does");
                    prop_assert_eq!(
                        &parallel,
                        &serial,
                        "workers={} slot_limit={} query={:?}",
                        workers,
                        slot_limit,
                        query
                    );
                }
            }
        }
    }

    /// Compaction is invisible to queries: the same results, through both
    /// executors, whether the view was captured before the compaction
    /// (stale ids resolving through the remap chain) or remapped after.
    #[test]
    fn compaction_preserves_results_and_stale_views(
        spec in warehouse_spec(),
        view_rows in option_of(prop::collection::vec(any::<usize>(), 0..20)),
    ) {
        let cube = build_warehouse(&spec);
        let mut view = InstanceView::unrestricted();
        if let Some(rows) = &view_rows {
            let total = spec.facts.len().max(1);
            view.select_fact_rows("F", rows.iter().map(|r| r % total));
        }
        let mut compacted = cube.clone();
        let remap = compacted.compact_fact_table("F").expect("F exists");
        prop_assert_eq!(
            compacted.fact_table("F").unwrap().table.live_len(),
            cube.fact_table("F").unwrap().table.live_len()
        );
        // Old→new ids round-trip for every surviving row.
        for new in 0..remap.live_len() {
            let old = remap.old_id(new).expect("surviving row has an old id");
            prop_assert_eq!(remap.new_id(old), Some(new));
        }
        let mut remapped_view = view.clone();
        remapped_view.remap_fact_rows("F", &remap, 0);
        let serial_engine = QueryEngine::with_config(ExecutionConfig::serial());
        let parallel_engine = QueryEngine::with_config(
            ExecutionConfig::default().with_workers(4).with_morsel_rows(5),
        );
        for query in queries() {
            let before = serial_engine
                .execute_serial_with_view(&cube, &query, &view)
                .expect("valid query");
            // Stale view against the compacted cube: the remap chain
            // resolves the same live rows.
            let after_stale = serial_engine
                .execute_serial_with_view(&compacted, &query, &view)
                .expect("valid query");
            prop_assert_eq!(&after_stale, &before, "stale view, query={:?}", query);
            // Eagerly remapped view, both executors.
            let after_remapped = parallel_engine
                .execute_with_view(&compacted, &query, &remapped_view)
                .expect("valid query");
            prop_assert_eq!(&after_remapped, &before, "remapped view, query={:?}", query);
        }
    }

    /// Publishing a snapshot shares every clean chunk: a clone taken
    /// before a delta still answers exactly like a deep copy would, and
    /// the master sees the delta.
    #[test]
    fn snapshots_are_isolated_from_later_deltas(
        spec in warehouse_spec(),
        upsert in (any::<usize>(), -64i32..65),
    ) {
        let mut master = build_warehouse(&spec);
        let snapshot = master.clone();
        let live_rows: Vec<usize> = (0..spec.facts.len())
            .filter(|r| master.fact_table("F").unwrap().table.is_live(*r))
            .collect();
        prop_assume!(!live_rows.is_empty());
        let row = live_rows[upsert.0 % live_rows.len()];
        let before = master.fact_table("F").unwrap().table.get(row, "M").unwrap();
        let new_value = CellValue::Float(dyadic(upsert.1) + 1_000_000.0);
        master.upsert_fact_cell("F", row, "M", new_value.clone()).unwrap();
        master.add_fact_row("F", vec![("D", 0)], vec![("M", CellValue::Float(0.25))]).unwrap();
        // The snapshot still reads the pre-delta cell and row count.
        prop_assert_eq!(snapshot.fact_table("F").unwrap().table.get(row, "M").unwrap(), before);
        prop_assert_eq!(snapshot.fact_table("F").unwrap().table.len(), spec.facts.len());
        prop_assert_eq!(master.fact_table("F").unwrap().table.get(row, "M").unwrap(), new_value);
        prop_assert_eq!(master.fact_table("F").unwrap().table.len(), spec.facts.len() + 1);
    }
}
