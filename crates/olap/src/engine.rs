//! The query engine: morsel-parallel group-by aggregation through
//! personalized views.
//!
//! # Execution model
//!
//! Execution is a two-phase *morsel* pipeline in the style of
//! morsel-driven parallelism: the fact table is split into fixed-size row
//! chunks ("morsels"); scoped worker threads pull morsel indices from a
//! shared atomic counter and run filter + partial aggregation per morsel
//! into a private hash table; the partial [`Accumulator`] states are then
//! merged **in morsel-index order** and finalised once.
//!
//! Because morsel boundaries and the merge order depend only on
//! [`ExecutionConfig::morsel_rows`] — never on the worker count or on
//! which worker processed which morsel — the result (including every
//! floating-point partial sum) is bit-for-bit identical whether the
//! pipeline runs on 1 or N workers. [`QueryEngine::execute_serial_with_view`]
//! keeps the classic row-at-a-time loop as the reference implementation
//! the equivalence property suite compares against.
//!
//! Within a morsel, measure reads are pushed down to the chunked column
//! storage: numeric measures go through pre-resolved column indices and
//! typed accessors instead of per-row [`CellValue`] materialisation, and
//! ungrouped all-numeric aggregates run entirely on the vectorised
//! per-chunk kernels of [`crate::kernels`] (one `&[f64]` / `&[i64]` slice
//! pass per chunk, with a validity-mask branch only for chunks that
//! actually contain nulls). The serial reference stays row-at-a-time on
//! purpose — it is the semantic yardstick the fast paths are property-
//! tested against.
//!
//! # Grouped execution: dense ids and selection vectors
//!
//! Grouped queries never touch a string key or clone a key `CellValue`
//! per row on the parallel path. Query resolution walks each group-by
//! attribute's dimension table **once** and builds a dictionary
//! `member id → dense key id` (distinct attribute values get consecutive
//! `u32` ids; the key `CellValue`s live only in the dictionary), so the
//! per-row cost of key building collapses to one array index. Composite
//! keys pack the per-attribute dense ids into a single mixed-radix
//! integer.
//!
//! Per morsel the grouped scan first materialises a **selection vector**
//! (the surviving row indices after liveness, view and filter checks),
//! batch-resolves the foreign-key columns through typed chunk slices
//! ([`crate::Column::gather_members`]) into a parallel slot vector, and
//! then accumulates one measure at a time: when the product of the
//! dictionary sizes stays under [`ExecutionConfig::group_slot_limit`],
//! measures are gathered into compacted `(values, slots)` pairs and fed
//! through the grouped slice kernels of [`crate::kernels`] into flat
//! per-slot vectors ([`crate::aggregate::SlotAccumulator`]); above the
//! limit (or when a measure needs full values, e.g. COUNT DISTINCT) the
//! morsel falls back to an **integer-keyed** hash table. Dense ids are
//! resolved back to `CellValue`s only once, at finalisation.

use crate::aggregate::{Accumulator, SlotAccumulator};
use crate::cancel::CancelToken;
use crate::column::{Column, ColumnType};
use crate::cube::{attribute_column, fk_column, Cube};
use crate::dicts::{attr_key, GroupDictCache, GroupKeys, NULL_KEY};
use crate::error::OlapError;
use crate::hash::FxHashMap;
use crate::kernels::NumericAgg;
use crate::pool::MorselPool;
use crate::query::{AttributeRef, Query, QueryResult, ResultRow};
use crate::table::Table;
use crate::value::CellValue;
use crate::view::{InstanceView, ResolvedViewCheck};
use sdwp_model::AggregationFunction;
use sdwp_obs::{ClassId, MetricsRegistry, SlowQueryRecord, Stage};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default number of fact rows per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Default cap on the product of group-key dictionary sizes under which
/// the grouped executor uses flat per-slot vectors instead of a hash
/// table (64 Ki slots ≈ a few hundred KiB of slot state per worker).
pub const DEFAULT_GROUP_SLOT_LIMIT: usize = 1 << 16;

/// Tuning knobs of the morsel-parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub workers: usize,
    /// Fact rows per morsel. The morsel size fixes the partial-merge tree,
    /// so two runs with equal `morsel_rows` produce identical results
    /// regardless of `workers`.
    pub morsel_rows: usize,
    /// Capacity (entries) of the query-result cache layered on top by
    /// callers such as `sdwp-core`; `0` disables caching.
    pub cache_capacity: usize,
    /// Cap on the total group cardinality (product of the per-attribute
    /// key-dictionary sizes) under which grouped aggregation runs on flat
    /// per-slot vectors; above it, morsels fall back to an integer-keyed
    /// hash table. `0` disables the flat path entirely.
    pub group_slot_limit: usize,
    /// Per-query execution budget: scan loops check a shared
    /// [`crate::CancelToken`] between morsels and bail with
    /// [`crate::OlapError::DeadlineExceeded`] once it expires. `None`
    /// (the default) lets queries run to completion.
    pub deadline: Option<std::time::Duration>,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            workers: 0,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            cache_capacity: 256,
            group_slot_limit: DEFAULT_GROUP_SLOT_LIMIT,
            deadline: None,
        }
    }
}

impl ExecutionConfig {
    /// A configuration that runs everything on the calling thread.
    pub fn serial() -> Self {
        ExecutionConfig {
            workers: 1,
            ..ExecutionConfig::default()
        }
    }

    /// Sets the worker count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the morsel size in fact rows (clamped to at least 1).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Sets the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the flat-slot cardinality cap of the grouped executor (`0`
    /// forces the integer-keyed hash fallback for every grouped query).
    pub fn with_group_slot_limit(mut self, group_slot_limit: usize) -> Self {
        self.group_slot_limit = group_slot_limit;
        self
    }

    /// Sets the per-query deadline (`None` = unbounded).
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The number of worker threads this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// How the morsel executor reads one measure.
struct MeasurePlan {
    /// The measure column's declaration index in the fact table, when it
    /// exists there (resolved once, so the scan loop never does a
    /// name lookup per row).
    column: Option<usize>,
    /// Whether the column is numeric (integer / float / date) and the
    /// aggregation can run on bare numbers — the typed fast path. COUNT
    /// DISTINCT needs the full value and always takes the `CellValue`
    /// path.
    numeric: bool,
}

/// The resolved, validated parts of a query that every scan shares.
struct Resolved<'q> {
    /// `(column name, aggregation)` per requested measure.
    measures: Vec<(String, AggregationFunction)>,
    /// Per-measure read plan for the morsel executor, index-aligned with
    /// `measures`.
    plans: Vec<MeasurePlan>,
    /// Allowed member sets per filtered dimension, each with the
    /// pre-resolved index of the fact table's FK column (`None` falls
    /// back to the name-based read, which reports the serial reference's
    /// error). A `BTreeMap` so the per-row check order is deterministic
    /// across executions.
    allowed_members: BTreeMap<&'q str, (Option<usize>, BTreeSet<usize>)>,
    /// Whether the whole query can run on the vectorised per-chunk
    /// kernels: no grouping, and every measure on the numeric fast path.
    vectorised: bool,
}

/// Group-by state of the **serial reference**: group key string →
/// (key cells, accumulators). The parallel path never builds these
/// strings; it keys by dense integer ids ([`GroupId`]).
type GroupMap = HashMap<String, (Vec<CellValue>, Vec<Accumulator>)>;

/// One group-by attribute pre-resolved for the parallel path: the
/// dimension walked once into a dense dictionary ([`GroupKeys`]), so
/// per-row key building is a single `u32` array index — no `HashMap`
/// probe, no `CellValue` clone, no string append. The dimension-side
/// dictionary is `Arc`-shared: within a batch, and (through
/// [`GroupDictCache`]) across queries until the snapshot generation
/// moves on; only the fact-side FK column index is per-query state.
struct GroupKeyDict {
    /// Index of the fact table's FK column for the attribute's dimension
    /// (`None` falls back to the name-based `fact_member` read).
    fk_column: Option<usize>,
    /// The shared dimension-side dictionary.
    keys: Arc<GroupKeys>,
}

/// The grouped execution plan of one parallel query: per-attribute
/// dictionaries plus the flat-vs-hashed path decision.
struct GroupPlan {
    /// Dictionaries in `query.group_by` order. Shorter than the query's
    /// group-by list only when a build error occurred (see `error`).
    dicts: Vec<GroupKeyDict>,
    /// A dictionary build error, replayed with the serial reference's
    /// per-row semantics: the scan reports it at the first row that
    /// passes selection and reaches the failing attribute — so a query
    /// that matches no rows succeeds exactly where the serial loop does.
    error: Option<(usize, OlapError)>,
    /// Product of the dictionary sizes — the mixed-radix range of a
    /// packed group id. `None` when it overflows `u128` (keys fall back
    /// to [`GroupId::Wide`]).
    cardinality: Option<u128>,
    /// `Some(total slots)` when the morsels accumulate into flat per-slot
    /// vectors (cardinality under the configured limit, every measure
    /// numeric); `None` uses the integer-keyed hash fallback.
    flat: Option<usize>,
}

impl GroupPlan {
    /// An empty plan for ungrouped queries.
    fn ungrouped() -> Self {
        GroupPlan {
            dicts: Vec::new(),
            error: None,
            cardinality: Some(1),
            flat: None,
        }
    }

    /// Resolves a group id back to its key `CellValue`s — the only point
    /// where the parallel path materialises key cells, once per surviving
    /// group at finalisation.
    fn decode(&self, id: &GroupId) -> Vec<CellValue> {
        match id {
            GroupId::Packed(value) => {
                let mut value = *value;
                let mut cells = vec![CellValue::Null; self.dicts.len()];
                for (cell, dict) in cells.iter_mut().zip(&self.dicts).rev() {
                    let radix = dict.keys.key_values.len() as u128;
                    *cell = dict.keys.key_values[(value % radix) as usize].clone();
                    value /= radix;
                }
                cells
            }
            GroupId::Wide(ids) => ids
                .iter()
                .zip(&self.dicts)
                .map(|(&dense, dict)| dict.keys.key_values[dense as usize].clone())
                .collect(),
        }
    }
}

/// A group key on the parallel path: per-attribute dense ids packed into
/// one mixed-radix integer, or the raw dense-id tuple when the packed
/// range would overflow `u128` (astronomical cardinalities only). Never a
/// string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupId {
    Packed(u128),
    Wide(Box<[u32]>),
}

/// The group state of one morsel's partial aggregate. Key cells are
/// never materialised here — the merge phase works entirely on integers
/// and decodes the surviving groups once at finalisation.
enum MorselGroups {
    /// Integer group ids → accumulator states, in first-occurrence order
    /// (the vectorised-ungrouped and hashed paths).
    Keyed(Vec<(GroupId, Vec<Accumulator>)>),
    /// The flat dense-slot path: the touched slots in first-occurrence
    /// order plus, per measure, the slots' kernel partials (parallel to
    /// `touched`). Merging is a slot-indexed [`NumericAgg::merge`] into
    /// flat totals — no hashing, no per-group allocation.
    Flat {
        touched: Vec<u32>,
        partials: Vec<Vec<NumericAgg>>,
    },
}

/// The partial aggregate of one morsel.
struct MorselPartial {
    groups: MorselGroups,
    facts_scanned: usize,
    facts_matched: usize,
}

/// One resolved member of a query batch.
struct BatchQuery<'q> {
    /// Position in the caller's batch — results go back in input order.
    index: usize,
    query: &'q Query,
    resolved: Resolved<'q>,
    plan: GroupPlan,
    /// The query's filter class (index into its fact group's class
    /// list).
    class: usize,
}

/// One filter class of a fact group: the member queries whose canonical
/// filter identity coincides, so each morsel materialises one selection
/// vector for all of them.
struct FilterClass {
    /// Index (into the group's query list) of the representative whose
    /// resolved filter state drives the shared selection. Any member
    /// would do — equal class keys imply equal selection semantics.
    rep: usize,
    /// No view restriction and no filters: the selection is exactly the
    /// live-run structure of the morsel, with no per-row work at all
    /// (the batch analogue of the vectorised path's unrestricted fast
    /// path, here available to every execution path).
    unrestricted: bool,
    /// Every member runs the vectorised ungrouped path, which consumes
    /// contiguous runs directly — an unrestricted class then never
    /// materialises the selection vector itself.
    runs_only: bool,
}

/// The queries of one batch that aggregate the same fact, sharing that
/// fact's single morsel pass.
struct FactGroup<'q> {
    fact: &'q str,
    queries: Vec<BatchQuery<'q>>,
    classes: Vec<FilterClass>,
}

/// The canonical filter identity of a query: dimension filters sorted
/// by dimension name (they are conjunctive, so order is irrelevant —
/// the same normalisation [`Query::canonical_key`] applies) plus the
/// fact filter. Queries with equal keys resolve to identical allowed
/// member sets against the same snapshot, and therefore select
/// identical rows with identical counters and per-row errors.
fn filter_class_key(query: &Query) -> String {
    let mut filters: Vec<&(String, crate::filter::Filter)> =
        query.dimension_filters.iter().collect();
    filters.sort_by(|a, b| a.0.cmp(&b.0));
    format!("{filters:?}|{:?}", query.fact_filter)
}

/// Observability context for an observed execution: where to record
/// per-stage latency samples, the session class they are keyed by, and
/// the snapshot generation (journaled alongside slow queries).
///
/// `Copy` by design — callers pass it down per query; the engine itself
/// stays stateless. A context whose registry is disabled is dropped at
/// the entry point, so the pipeline takes zero clock reads in that case.
#[derive(Debug, Clone, Copy)]
pub struct QueryObs<'a> {
    /// Registry stage samples are recorded into.
    pub registry: &'a MetricsRegistry,
    /// Session class the query runs under (`ClassId::DEFAULT` when the
    /// session is unclassified).
    pub class: ClassId,
    /// Snapshot generation the query executes against.
    pub generation: u64,
}

/// Runs one query's morsel loop on the calling thread plus up to
/// `helpers` shared-pool workers, collecting every participant's
/// partials. Collection order across participants is arbitrary —
/// [`merge_partials`] sorts by morsel index, which is what keeps pooled
/// execution bit-identical to the scoped executor regardless of how
/// many helpers the scheduler actually dispatched.
fn run_pooled<T: Send>(
    pool: &MorselPool,
    tenant: ClassId,
    helpers: usize,
    cancel: &CancelToken,
    scan: &(impl Fn() -> Vec<T> + Sync),
) -> Vec<T> {
    let collected: std::sync::Mutex<Vec<T>> = std::sync::Mutex::new(Vec::new());
    let work = || {
        let partials = scan();
        collected
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .extend(partials);
    };
    // The cancellable scan contains a participant panic (helper or
    // caller) by poisoning the token instead of re-raising; the
    // executor turns the poisoned token into a typed error after the
    // join, so partials collected here are never merged in that case —
    // recovering the collector lock above is therefore safe.
    pool.scan_cancellable(tenant, helpers, cancel, &work);
    collected
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs the single-participant (`workers <= 1`) scan with the same
/// containment contract as the pooled path: a panic poisons the token
/// and returns no partials instead of unwinding into the caller.
fn run_contained<T>(cancel: &CancelToken, scan: &impl Fn() -> Vec<T>) -> Vec<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(scan)) {
        Ok(partials) => partials,
        Err(_) => {
            cancel.poison();
            Vec::new()
        }
    }
}

/// The journal's outcome marker for an abnormal terminal state.
fn journal_outcome(error: &OlapError) -> &'static str {
    match error {
        OlapError::DeadlineExceeded => sdwp_obs::OUTCOME_DEADLINE_EXCEEDED,
        _ => sdwp_obs::OUTCOME_PANICKED,
    }
}

/// Advances an optional stage clock, returning the microseconds elapsed
/// since the previous lap (0 when timing is off).
#[inline]
fn lap(clock: &mut Option<Instant>) -> u64 {
    match clock {
        Some(prev) => {
            let now = Instant::now();
            let micros = now.duration_since(*prev).as_micros() as u64;
            *prev = now;
            micros
        }
        None => 0,
    }
}

/// Compact description of a query for the slow-query journal.
fn query_shape(query: &Query) -> String {
    let groups: Vec<&str> = query
        .group_by
        .iter()
        .map(|attr| attr.attribute.as_str())
        .collect();
    format!(
        "{} group_by=[{}] measures={} filters={}",
        query.fact,
        groups.join(","),
        query.measures.len(),
        query.dimension_filters.len() + usize::from(query.fact_filter.is_some())
    )
}

/// Executes [`Query`]s against a [`Cube`], optionally through an
/// [`InstanceView`] (the personalized selection produced by the
/// `SelectInstance` action).
#[derive(Debug, Clone, Default)]
pub struct QueryEngine {
    config: ExecutionConfig,
    /// The shared morsel worker pool parallel scans run on. `None`
    /// falls back to per-query `std::thread::scope` spawns (the
    /// pre-pool executor, kept as the equivalence reference and for
    /// standalone `QueryEngine` uses that never see enough queries to
    /// amortise a pool).
    pool: Option<Arc<MorselPool>>,
}

impl QueryEngine {
    /// Creates a query engine with the default (parallel) configuration.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Creates a query engine with an explicit execution configuration.
    pub fn with_config(config: ExecutionConfig) -> Self {
        QueryEngine { config, pool: None }
    }

    /// Creates a query engine whose parallel scans run on a shared
    /// [`MorselPool`] instead of per-query `thread::scope` spawns: the
    /// calling thread always scans, and up to `workers - 1` pool
    /// workers join it subject to the pool's per-tenant scheduling.
    /// Results are bit-identical to the scoped executor (enforced by
    /// the `pool_equivalence` property suite).
    pub fn with_pool(config: ExecutionConfig, pool: Arc<MorselPool>) -> Self {
        QueryEngine {
            config,
            pool: Some(pool),
        }
    }

    /// The shared morsel pool, when this engine executes on one.
    pub fn pool(&self) -> Option<&Arc<MorselPool>> {
        self.pool.as_ref()
    }

    /// The engine's execution configuration.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Executes a query without any personalization.
    pub fn execute(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a personalized instance view: only fact
    /// rows visible through the view participate in the aggregation.
    ///
    /// Runs the morsel-parallel pipeline described in the module docs.
    /// The result is deterministic: it depends on the cube, query, view
    /// and [`ExecutionConfig::morsel_rows`], but not on the worker count.
    pub fn execute_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        self.execute_with_view_cached(cube, query, view, None)
    }

    /// [`QueryEngine::execute_with_view`] with an optional group-key
    /// dictionary cache: `dicts` names the cache and the snapshot
    /// generation `cube` was published at, so group-by dictionaries are
    /// reused across queries instead of being rebuilt O(dimension
    /// members) each time. Pass `None` to build per query.
    pub fn execute_with_view_cached(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
        dicts: Option<(&GroupDictCache, u64)>,
    ) -> Result<QueryResult, OlapError> {
        self.execute_with_view_observed(cube, query, view, dicts, None)
    }

    /// [`QueryEngine::execute_with_view_cached`] with optional stage
    /// timing: when `obs` names an enabled registry, the resolve / scan /
    /// merge / finalize phases are timed individually and recorded as
    /// [`Stage::QueryResolve`]..[`Stage::QueryFinalize`] keyed by the
    /// context's session class, and queries slower than the registry's
    /// journal threshold are journaled with their per-stage breakdown.
    /// With `obs == None` (or a disabled registry) the pipeline runs
    /// without a single clock read.
    pub fn execute_with_view_observed(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
        dicts: Option<(&GroupDictCache, u64)>,
        obs: Option<QueryObs<'_>>,
    ) -> Result<QueryResult, OlapError> {
        let cancel =
            CancelToken::with_deadline(self.config.deadline.map(|budget| Instant::now() + budget));
        self.execute_with_view_cancellable(cube, query, view, dicts, obs, &cancel)
    }

    /// [`QueryEngine::execute_with_view_observed`] against an explicit
    /// [`CancelToken`] (typically carrying the query's deadline,
    /// computed by the caller so it also covers admission waits). The
    /// scan loop — caller and every pool helper — checks the token
    /// between morsels; a tripped token surfaces as the typed
    /// [`OlapError::DeadlineExceeded`] / [`OlapError::ExecutionPanicked`]
    /// with **no partial state**: nothing was merged, nothing reaches
    /// any cache, and (on the pooled path) a participant panic is
    /// contained to this query instead of unwinding into the caller.
    pub fn execute_with_view_cancellable(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
        dicts: Option<(&GroupDictCache, u64)>,
        obs: Option<QueryObs<'_>>,
        cancel: &CancelToken,
    ) -> Result<QueryResult, OlapError> {
        // The tenant class keys pool scheduling even when the registry
        // is disabled, so capture it before the enabled filter.
        let tenant = obs.map(|o| o.class).unwrap_or_default();
        let obs = obs.filter(|o| o.registry.is_enabled());
        let mut clock = obs.map(|_| Instant::now());

        crate::fail_point!("query.resolve", |message: String| Err(
            OlapError::InvalidQuery {
                message: format!("injected: {message}"),
            }
        ));
        let resolved = resolve(cube, query)?;
        let fact_table = &cube.fact_table(&query.fact)?.table;
        let plan = if query.group_by.is_empty() {
            GroupPlan::ungrouped()
        } else {
            let mut lookup = keys_lookup(dicts);
            build_group_plan(
                cube,
                query,
                fact_table,
                &resolved,
                self.config.group_slot_limit,
                &mut lookup,
            )
        };
        let resolve_micros = lap(&mut clock);
        let total_rows = fact_table.len();
        let morsel_rows = self.config.morsel_rows.max(1);
        let morsel_count = total_rows.div_ceil(morsel_rows);
        let workers = self
            .config
            .effective_workers()
            .clamp(1, morsel_count.max(1));

        let next_morsel = AtomicUsize::new(0);
        let scan_morsels = || {
            scan_assigned_morsels(
                cube,
                query,
                view,
                &resolved,
                &plan,
                fact_table,
                &next_morsel,
                morsel_count,
                morsel_rows,
                total_rows,
                cancel,
            )
        };

        let partials: Vec<(usize, Result<MorselPartial, OlapError>)> = if workers <= 1 {
            run_contained(cancel, &scan_morsels)
        } else if let Some(pool) = &self.pool {
            run_pooled(pool, tenant, workers - 1, cancel, &scan_morsels)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(scan_morsels)).collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("morsel worker panicked"))
                    .collect()
            })
        };
        let scan_micros = lap(&mut clock);

        // Terminal-state check, not a clock check: a deadline that
        // expires *after* the last morsel was scanned no longer fails
        // the query, but a tripped token means morsel indices were
        // consumed without being scanned — merging would silently
        // produce wrong results, so bail with the typed error. The
        // abnormal exit is journaled unconditionally (slow or not) with
        // its terminal stage marked, so cancelled and panicked queries
        // never vanish from the operator's view.
        if let Some(error) = cancel.terminal_error() {
            if let Some(o) = obs {
                o.registry
                    .record_micros(Stage::QueryResolve, o.class, resolve_micros);
                o.registry
                    .record_micros(Stage::QueryScan, o.class, scan_micros);
                o.registry.journal().record(SlowQueryRecord {
                    shape: query_shape(query),
                    class: o.registry.class_name(o.class),
                    generation: o.generation,
                    workers,
                    resolve_micros,
                    scan_micros,
                    merge_micros: 0,
                    finalize_micros: 0,
                    total_micros: resolve_micros + scan_micros,
                    outcome: journal_outcome(&error).to_string(),
                });
            }
            return Err(error);
        }

        crate::fail_point!("query.merge", |message: String| Err(
            OlapError::InvalidQuery {
                message: format!("injected: {message}"),
            }
        ));
        let (rows, facts_scanned, facts_matched) = merge_partials(&resolved, &plan, partials)?;
        let merge_micros = lap(&mut clock);
        let result = materialise(query, &resolved, rows, facts_scanned, facts_matched);
        let finalize_micros = lap(&mut clock);

        if let Some(o) = obs {
            o.registry
                .record_micros(Stage::QueryResolve, o.class, resolve_micros);
            o.registry
                .record_micros(Stage::QueryScan, o.class, scan_micros);
            o.registry
                .record_micros(Stage::QueryMerge, o.class, merge_micros);
            o.registry
                .record_micros(Stage::QueryFinalize, o.class, finalize_micros);
            let total_micros = resolve_micros + scan_micros + merge_micros + finalize_micros;
            let journal = o.registry.journal();
            if journal.is_slow(total_micros) {
                journal.record(SlowQueryRecord {
                    shape: query_shape(query),
                    class: o.registry.class_name(o.class),
                    generation: o.generation,
                    workers,
                    resolve_micros,
                    scan_micros,
                    merge_micros,
                    finalize_micros,
                    total_micros,
                    outcome: sdwp_obs::OUTCOME_COMPLETED.to_string(),
                });
            }
        }
        Ok(result)
    }

    /// Executes a batch of queries against one snapshot in a single
    /// shared morsel pass, without personalization. See
    /// [`QueryEngine::execute_batch_with_view`].
    pub fn execute_batch(
        &self,
        cube: &Cube,
        queries: &[Query],
    ) -> Vec<Result<QueryResult, OlapError>> {
        self.execute_batch_cached(cube, queries, &InstanceView::unrestricted(), None)
    }

    /// Executes a batch of queries through one personalized view in a
    /// single shared pass over each fact table (the GLADE-style
    /// multi-query scan).
    ///
    /// All queries are resolved against the snapshot up front (sharing
    /// group-key dictionaries per attribute); the queries are grouped by
    /// fact, each fact's rows are scanned **once** morsel-parallel, and
    /// within a morsel one selection vector is materialised per
    /// *filter class* — queries whose canonicalised filter sets coincide
    /// share it — then fed to every member query's own accumulation path
    /// (vectorised / flat-slot / hashed, the same choice its standalone
    /// execution makes). Per-query partials merge in morsel-index order,
    /// so **every result is bit-identical to the query's standalone
    /// [`QueryEngine::execute_with_view`] execution** — the
    /// `batch_equivalence` property suite enforces this.
    ///
    /// Per-query errors (resolution or scan) come back in the query's
    /// result slot; one query's failure never poisons its batch mates.
    pub fn execute_batch_with_view(
        &self,
        cube: &Cube,
        queries: &[Query],
        view: &InstanceView,
    ) -> Vec<Result<QueryResult, OlapError>> {
        self.execute_batch_cached(cube, queries, view, None)
    }

    /// [`QueryEngine::execute_batch_with_view`] with an optional
    /// group-key dictionary cache (see
    /// [`QueryEngine::execute_with_view_cached`]); within the batch,
    /// dictionaries are shared per attribute even without a cache.
    pub fn execute_batch_cached(
        &self,
        cube: &Cube,
        queries: &[Query],
        view: &InstanceView,
        dicts: Option<(&GroupDictCache, u64)>,
    ) -> Vec<Result<QueryResult, OlapError>> {
        self.execute_batch_observed(cube, queries, view, dicts, None)
    }

    /// [`QueryEngine::execute_batch_cached`] with optional stage timing:
    /// resolution of the whole batch records once as
    /// [`Stage::BatchResolve`]; each fact group's shared morsel pass,
    /// per-query merges and materialisation record as
    /// [`Stage::BatchScan`] / [`Stage::BatchMerge`] /
    /// [`Stage::BatchFinalize`]; fact groups slower than the journal
    /// threshold are journaled as `batch:{fact}×{queries}` records.
    pub fn execute_batch_observed(
        &self,
        cube: &Cube,
        queries: &[Query],
        view: &InstanceView,
        dicts: Option<(&GroupDictCache, u64)>,
        obs: Option<QueryObs<'_>>,
    ) -> Vec<Result<QueryResult, OlapError>> {
        let cancel =
            CancelToken::with_deadline(self.config.deadline.map(|budget| Instant::now() + budget));
        self.execute_batch_cancellable(cube, queries, view, dicts, obs, &cancel)
    }

    /// [`QueryEngine::execute_batch_observed`] against an explicit
    /// [`CancelToken`]. Fact groups run in sequence, so a deadline that
    /// trips (or a participant that panics) mid-batch fails the current
    /// group and every not-yet-scanned group with the typed error,
    /// while groups that already completed keep their results — the
    /// positional contract (one result per submitted query) holds on
    /// every exit path.
    pub fn execute_batch_cancellable(
        &self,
        cube: &Cube,
        queries: &[Query],
        view: &InstanceView,
        dicts: Option<(&GroupDictCache, u64)>,
        obs: Option<QueryObs<'_>>,
        cancel: &CancelToken,
    ) -> Vec<Result<QueryResult, OlapError>> {
        let tenant = obs.map(|o| o.class).unwrap_or_default();
        let obs = obs.filter(|o| o.registry.is_enabled());
        let mut clock = obs.map(|_| Instant::now());
        let mut results: Vec<Option<Result<QueryResult, OlapError>>> =
            (0..queries.len()).map(|_| None).collect();

        // Phase 1: resolve and plan every query up front. Resolution
        // errors land in their result slot immediately; the scan only
        // sees the survivors. Group-key dictionaries are memoised per
        // attribute across the whole batch (and served from `dicts`
        // across batches, when given).
        let mut base_lookup = keys_lookup(dicts);
        let mut shared_keys: FxHashMap<(String, String, String), Arc<GroupKeys>> =
            FxHashMap::default();
        let mut groups_by_fact: Vec<FactGroup<'_>> = Vec::new();
        let mut fact_index: HashMap<&str, usize> = HashMap::new();
        for (index, query) in queries.iter().enumerate() {
            let resolved = match resolve(cube, query) {
                Ok(resolved) => resolved,
                Err(error) => {
                    results[index] = Some(Err(error));
                    continue;
                }
            };
            let fact_table = &cube
                .fact_table(&query.fact)
                .expect("resolve validated the fact")
                .table;
            let plan = if query.group_by.is_empty() {
                GroupPlan::ungrouped()
            } else {
                let mut lookup = |cube: &Cube, attr: &AttributeRef| {
                    let key = attr_key(attr);
                    if let Some(keys) = shared_keys.get(&key) {
                        return Ok(Arc::clone(keys));
                    }
                    let keys = base_lookup(cube, attr)?;
                    shared_keys.insert(key, Arc::clone(&keys));
                    Ok(keys)
                };
                build_group_plan(
                    cube,
                    query,
                    fact_table,
                    &resolved,
                    self.config.group_slot_limit,
                    &mut lookup,
                )
            };
            let at = *fact_index.entry(query.fact.as_str()).or_insert_with(|| {
                groups_by_fact.push(FactGroup {
                    fact: query.fact.as_str(),
                    queries: Vec::new(),
                    classes: Vec::new(),
                });
                groups_by_fact.len() - 1
            });
            groups_by_fact[at].queries.push(BatchQuery {
                index,
                query,
                resolved,
                plan,
                class: 0,
            });
        }

        // Phase 2: assign filter classes within each fact group. Two
        // queries land in the same class exactly when their canonical
        // filter identity coincides — identical allowed member sets,
        // identical counters, identical per-row selection errors — so one
        // selection vector per morsel serves the whole class.
        for group in &mut groups_by_fact {
            let mut class_ids: HashMap<String, usize> = HashMap::new();
            for j in 0..group.queries.len() {
                let key = filter_class_key(group.queries[j].query);
                let class = match class_ids.entry(key) {
                    Entry::Occupied(entry) => {
                        let class = *entry.get();
                        group.classes[class].runs_only &= group.queries[j].resolved.vectorised;
                        class
                    }
                    Entry::Vacant(entry) => {
                        let class = group.classes.len();
                        let member = &group.queries[j];
                        group.classes.push(FilterClass {
                            rep: j,
                            unrestricted: view.is_unrestricted()
                                && member.resolved.allowed_members.is_empty()
                                && member.query.fact_filter.is_none(),
                            runs_only: member.resolved.vectorised,
                        });
                        entry.insert(class);
                        class
                    }
                };
                group.queries[j].class = class;
            }
        }
        let resolve_micros = lap(&mut clock);
        if let Some(o) = obs {
            o.registry
                .record_micros(Stage::BatchResolve, o.class, resolve_micros);
        }

        // Phase 3: one morsel-parallel pass per fact group, every worker
        // producing all member queries' partials for its morsels; then
        // per-query merges in morsel order (identical to standalone).
        for group in &groups_by_fact {
            let fact_table = &cube
                .fact_table(group.fact)
                .expect("resolve validated the fact")
                .table;
            let total_rows = fact_table.len();
            let morsel_rows = self.config.morsel_rows.max(1);
            let morsel_count = total_rows.div_ceil(morsel_rows);
            let workers = self
                .config
                .effective_workers()
                .clamp(1, morsel_count.max(1));
            let next_morsel = AtomicUsize::new(0);
            let scan_morsels = || {
                scan_assigned_batch_morsels(
                    cube,
                    view,
                    group,
                    fact_table,
                    &next_morsel,
                    morsel_count,
                    morsel_rows,
                    total_rows,
                    cancel,
                )
            };
            let collected: Vec<(usize, Vec<Result<MorselPartial, OlapError>>)> = if workers <= 1 {
                run_contained(cancel, &scan_morsels)
            } else if let Some(pool) = &self.pool {
                run_pooled(pool, tenant, workers - 1, cancel, &scan_morsels)
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers).map(|_| scope.spawn(scan_morsels)).collect();
                    handles
                        .into_iter()
                        .flat_map(|handle| handle.join().expect("batch morsel worker panicked"))
                        .collect()
                })
            };
            let mut per_query: Vec<Vec<(usize, Result<MorselPartial, OlapError>)>> = group
                .queries
                .iter()
                .map(|_| Vec::with_capacity(morsel_count))
                .collect();
            for (morsel, parts) in collected {
                for (j, part) in parts.into_iter().enumerate() {
                    per_query[j].push((morsel, part));
                }
            }
            let scan_micros = lap(&mut clock);
            // A token that tripped during this group's scan: its
            // members (and every group not yet scanned) fail with the
            // typed error; groups that already finished keep their
            // results. Journaled unconditionally with the terminal
            // stage marked, like the standalone path.
            if let Some(error) = cancel.terminal_error() {
                if let Some(o) = obs {
                    o.registry
                        .record_micros(Stage::BatchScan, o.class, scan_micros);
                    o.registry.journal().record(SlowQueryRecord {
                        shape: format!("batch:{}×{}", group.fact, group.queries.len()),
                        class: o.registry.class_name(o.class),
                        generation: o.generation,
                        workers,
                        resolve_micros,
                        scan_micros,
                        merge_micros: 0,
                        finalize_micros: 0,
                        total_micros: resolve_micros + scan_micros,
                        outcome: journal_outcome(&error).to_string(),
                    });
                }
                for slot in results.iter_mut().filter(|slot| slot.is_none()) {
                    *slot = Some(Err(error.clone()));
                }
                break;
            }
            // Merge every member's partials first, materialise second, so
            // the two phases time separately (the work is identical to
            // the interleaved loop — merges and materialisations are
            // independent per member).
            let merged: Vec<_> = group
                .queries
                .iter()
                .zip(per_query)
                .map(|(member, partials)| merge_partials(&member.resolved, &member.plan, partials))
                .collect();
            let merge_micros = lap(&mut clock);
            for (member, outcome) in group.queries.iter().zip(merged) {
                results[member.index] =
                    Some(outcome.map(|(rows, facts_scanned, facts_matched)| {
                        materialise(
                            member.query,
                            &member.resolved,
                            rows,
                            facts_scanned,
                            facts_matched,
                        )
                    }));
            }
            let finalize_micros = lap(&mut clock);
            if let Some(o) = obs {
                o.registry
                    .record_micros(Stage::BatchScan, o.class, scan_micros);
                o.registry
                    .record_micros(Stage::BatchMerge, o.class, merge_micros);
                o.registry
                    .record_micros(Stage::BatchFinalize, o.class, finalize_micros);
                let total_micros = resolve_micros + scan_micros + merge_micros + finalize_micros;
                let journal = o.registry.journal();
                if journal.is_slow(total_micros) {
                    journal.record(SlowQueryRecord {
                        shape: format!("batch:{}×{}", group.fact, group.queries.len()),
                        class: o.registry.class_name(o.class),
                        generation: o.generation,
                        workers,
                        resolve_micros,
                        scan_micros,
                        merge_micros,
                        finalize_micros,
                        total_micros,
                        outcome: sdwp_obs::OUTCOME_COMPLETED.to_string(),
                    });
                }
            }
        }
        results
            .into_iter()
            .map(|result| result.expect("every batch query resolved or executed"))
            .collect()
    }

    /// Executes a query serially, without personalization — the
    /// row-at-a-time reference implementation.
    pub fn execute_serial(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_serial_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a view with the classic single-threaded
    /// row-at-a-time loop. This is the reference implementation the
    /// parallel-equivalence property suite compares
    /// [`QueryEngine::execute_with_view`] against.
    pub fn execute_serial_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        let resolved = resolve(cube, query)?;
        let fact_table = &cube.fact_table(&query.fact)?.table;
        let mut key_cache: Vec<HashMap<usize, CellValue>> =
            vec![HashMap::new(); query.group_by.len()];
        let mut groups: GroupMap = HashMap::new();
        let (facts_scanned, facts_matched) = scan_range(
            cube,
            query,
            view,
            &resolved,
            fact_table,
            0..fact_table.len(),
            &mut key_cache,
            &mut groups,
        )?;
        let rows = groups.into_values().collect();
        Ok(materialise(
            query,
            &resolved,
            rows,
            facts_scanned,
            facts_matched,
        ))
    }

    /// Convenience: total of a single measure over the (possibly
    /// personalized) cube, with no grouping.
    pub fn total(
        &self,
        cube: &Cube,
        fact: &str,
        measure: &str,
        view: &InstanceView,
    ) -> Result<f64, OlapError> {
        let query = Query::over(fact).measure(measure);
        let result = self.execute_with_view(cube, &query, view)?;
        Ok(result
            .rows
            .first()
            .and_then(|r| r.values.first())
            .and_then(CellValue::as_number)
            .unwrap_or(0.0))
    }
}

/// Validates the query against the cube's schema and pre-computes the
/// allowed member sets of every filtered dimension. Shared by the
/// parallel pipeline and the serial reference so both report identical
/// errors for invalid queries.
fn resolve<'q>(cube: &Cube, query: &'q Query) -> Result<Resolved<'q>, OlapError> {
    let fact_def = cube
        .schema()
        .fact(&query.fact)
        .ok_or_else(|| OlapError::UnknownElement {
            kind: "fact",
            name: query.fact.clone(),
        })?;
    if query.measures.is_empty() {
        return Err(OlapError::InvalidQuery {
            message: "a query needs at least one measure".into(),
        });
    }

    // Resolve measures: (column name, aggregation) plus the executor's
    // read plan. A measure column missing from the fact table (it cannot
    // happen for cubes built through `Cube::new`) keeps `column: None`
    // and falls back to the name-based read, which reports the same
    // error, in the same place, as the serial reference.
    let fact_table = &cube.fact_table(&query.fact)?.table;
    let mut measures: Vec<(String, AggregationFunction)> = Vec::new();
    let mut plans: Vec<MeasurePlan> = Vec::new();
    for m in &query.measures {
        let def = fact_def
            .measure(&m.measure)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "measure",
                name: m.measure.clone(),
            })?;
        let aggregation = m.aggregation.unwrap_or(def.aggregation);
        let column = fact_table.column_index(&def.name);
        let numeric = aggregation != AggregationFunction::CountDistinct
            && column
                .map(|idx| {
                    matches!(
                        fact_table.column_at(idx).column_type(),
                        ColumnType::Integer | ColumnType::Float | ColumnType::Date
                    )
                })
                .unwrap_or(false);
        measures.push((def.name.clone(), aggregation));
        plans.push(MeasurePlan { column, numeric });
    }

    // Validate group-by references and check the dimensions are reachable.
    for key in &query.group_by {
        if !fact_def.references_dimension(&key.dimension) {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "fact '{}' is not analysed by dimension '{}'",
                    fact_def.name, key.dimension
                ),
            });
        }
        let dim =
            cube.schema()
                .dimension(&key.dimension)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "dimension",
                    name: key.dimension.clone(),
                })?;
        let level = dim
            .level(&key.level)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "level",
                name: key.level.clone(),
            })?;
        if level.attribute(&key.attribute).is_none() {
            return Err(OlapError::UnknownElement {
                kind: "attribute",
                name: format!("{}.{}", key.level, key.attribute),
            });
        }
    }

    // Pre-compute allowed member sets for every filtered dimension, with
    // the FK column index pre-resolved for the parallel path's typed
    // reads.
    let mut allowed_members: BTreeMap<&str, (Option<usize>, BTreeSet<usize>)> = BTreeMap::new();
    for (dimension, filter) in &query.dimension_filters {
        if !fact_def.references_dimension(dimension) {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "filtered dimension '{dimension}' is not referenced by fact '{}'",
                    fact_def.name
                ),
            });
        }
        let table = &cube.dimension_table(dimension)?.table;
        let matching: BTreeSet<usize> = filter.matching_rows(table)?.into_iter().collect();
        match allowed_members.entry(dimension.as_str()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let intersection: BTreeSet<usize> =
                    e.get().1.intersection(&matching).copied().collect();
                e.get_mut().1 = intersection;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((fact_table.column_index(&fk_column(dimension)), matching));
            }
        }
    }

    let vectorised = query.group_by.is_empty() && plans.iter().all(|p| p.numeric);
    Ok(Resolved {
        measures,
        plans,
        allowed_members,
        vectorised,
    })
}

/// The group planner's source of dimension-side dictionaries: a plain
/// per-query build, the generation-keyed [`GroupDictCache`], or a
/// batch-local memo layered on top of either. [`GroupKeys::build`] is
/// deterministic, so every source yields interchangeable dictionaries
/// (and, for a broken attribute, the same error).
type KeysLookup<'a> = dyn FnMut(&Cube, &AttributeRef) -> Result<Arc<GroupKeys>, OlapError> + 'a;

fn keys_lookup<'a>(
    dicts: Option<(&'a GroupDictCache, u64)>,
) -> impl FnMut(&Cube, &AttributeRef) -> Result<Arc<GroupKeys>, OlapError> + 'a {
    move |cube, attr| match dicts {
        Some((cache, generation)) => cache.get_or_build(generation, cube, attr),
        None => GroupKeys::build(cube, attr).map(Arc::new),
    }
}

/// Builds the grouped execution plan: one dense dictionary per group-by
/// attribute (obtained through `lookup` — built, memoised within a
/// batch, or served from the generation-keyed cache) plus the
/// flat-vs-hashed decision. Never fails — a dictionary that cannot be
/// built (a schema attribute with no backing column, impossible for cubes
/// loaded through [`Cube`]'s constructors) is recorded and replayed with
/// the serial reference's per-row error semantics.
fn build_group_plan(
    cube: &Cube,
    query: &Query,
    fact_table: &Table,
    resolved: &Resolved<'_>,
    group_slot_limit: usize,
    lookup: &mut KeysLookup<'_>,
) -> GroupPlan {
    let mut dicts = Vec::with_capacity(query.group_by.len());
    let mut error = None;
    for (index, attr) in query.group_by.iter().enumerate() {
        let fk_column = fact_table.column_index(&fk_column(&attr.dimension));
        match lookup(cube, attr) {
            Ok(keys) => dicts.push(GroupKeyDict { fk_column, keys }),
            Err(e) => {
                error = Some((index, e));
                break;
            }
        }
    }
    let cardinality = dicts.iter().try_fold(1u128, |product, dict| {
        product.checked_mul(dict.keys.key_values.len() as u128)
    });
    let flat = match (&error, cardinality) {
        (None, Some(slots))
            if resolved.plans.iter().all(|p| p.numeric)
                && slots <= group_slot_limit.min(u32::MAX as usize) as u128 =>
        {
            Some(slots as usize)
        }
        _ => None,
    };
    GroupPlan {
        dicts,
        error,
        cardinality,
        flat,
    }
}

/// Scans one contiguous row range, accumulating into `groups` — the
/// row-at-a-time **serial reference**: every value goes through
/// [`Table::get`]'s `CellValue` materialisation. The morsel pipeline's
/// typed and vectorised scans ([`scan_morsel`]) must stay observably
/// equivalent to this loop — same groups, same counters, same error for
/// the same first failing row — which the storage-equivalence and
/// parallel-equivalence property suites enforce.
#[allow(clippy::too_many_arguments)]
fn scan_range(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    key_cache: &mut [HashMap<usize, CellValue>],
    groups: &mut GroupMap,
) -> Result<(usize, usize), OlapError> {
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    for fact_row in rows {
        // Retracted rows are invisible to every query (and not counted as
        // scanned). Shared by the serial reference and each parallel
        // morsel, so the two executors stay equivalent mid-ingest by
        // construction.
        if !fact_table.is_live(fact_row) {
            continue;
        }
        if !view.allows_fact_row(cube, &query.fact, fact_row)? {
            continue;
        }
        facts_scanned += 1;

        // Dimension filters (the classic name-based member read — the
        // reference the typed parallel path is measured against).
        let mut passes = true;
        for (dimension, (_, allowed)) in &resolved.allowed_members {
            let member = cube.fact_member(&query.fact, fact_row, dimension)?;
            if !allowed.contains(&member) {
                passes = false;
                break;
            }
        }
        if !passes {
            continue;
        }
        // Fact filter.
        if let Some(filter) = &query.fact_filter {
            if !filter.matches(fact_table, fact_row)? {
                continue;
            }
        }
        facts_matched += 1;

        // Build the group key.
        let mut key_cells = Vec::with_capacity(query.group_by.len());
        let mut key_string = String::new();
        for (i, attr) in query.group_by.iter().enumerate() {
            let member = cube.fact_member(&query.fact, fact_row, &attr.dimension)?;
            let cell = match key_cache[i].get(&member) {
                Some(c) => c.clone(),
                None => {
                    let table = &cube.dimension_table(&attr.dimension)?.table;
                    let cell =
                        table.get(member, &attribute_column(&attr.level, &attr.attribute))?;
                    key_cache[i].insert(member, cell.clone());
                    cell
                }
            };
            // Length-prefix each attribute's key so the concatenation is
            // injective even when a text key itself contains the
            // separator — keeping the serial reference's grouping
            // identical to the dense-id parallel path, which keys each
            // attribute independently.
            let key = cell.group_key();
            key_string.push_str(&key.len().to_string());
            key_string.push('\u{1f}');
            key_string.push_str(&key);
            key_cells.push(cell);
        }

        let entry = groups.entry(key_string).or_insert_with(|| {
            (
                key_cells.clone(),
                resolved
                    .measures
                    .iter()
                    .map(|(_, agg)| Accumulator::new(*agg))
                    .collect(),
            )
        });
        for ((column, _), acc) in resolved.measures.iter().zip(entry.1.iter_mut()) {
            let value = fact_table.get(fact_row, column)?;
            acc.update(&value);
        }
    }
    Ok((facts_scanned, facts_matched))
}

/// One morsel of the parallel pipeline. Dispatches between the
/// vectorised kernel path (no grouping, all measures numeric), the flat
/// dense-slot grouped path, and the integer-keyed hashed path; all are
/// equivalent to [`scan_range`] — the serial reference the property
/// suites compare against — by the shared per-row selection semantics
/// and, for floats, by summing in ascending row order within the morsel.
#[allow(clippy::too_many_arguments)]
fn scan_morsel(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    rows: Range<usize>,
    sel: &mut Vec<u32>,
    scratch: &mut Option<FlatScratch>,
) -> Result<MorselPartial, OlapError> {
    if resolved.vectorised {
        let mut groups = Vec::new();
        let (facts_scanned, facts_matched) =
            scan_morsel_vectorised(cube, query, view, resolved, fact_table, rows, &mut groups)?;
        Ok(MorselPartial {
            groups: MorselGroups::Keyed(groups),
            facts_scanned,
            facts_matched,
        })
    } else {
        // Selection first (shared with the batch executor), then the
        // grouped accumulation path the plan chose.
        let (facts_scanned, facts_matched) =
            select_rows(cube, query, view, resolved, fact_table, rows, sel)?;
        if let Some(scratch) = scratch {
            accumulate_flat(
                cube,
                query,
                resolved,
                plan,
                fact_table,
                sel,
                facts_scanned,
                facts_matched,
                scratch,
            )
        } else {
            let mut groups = Vec::new();
            accumulate_hashed(cube, query, resolved, plan, fact_table, sel, &mut groups)?;
            Ok(MorselPartial {
                groups: MorselGroups::Keyed(groups),
                facts_scanned,
                facts_matched,
            })
        }
    }
}

/// Materialises one morsel's selection vector — the surviving row ids
/// after liveness, view and filter checks, through the shared
/// [`row_selected`] semantics — and returns the morsel's counters. One
/// call serves every query of a batch filter class.
fn select_rows(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    sel: &mut Vec<u32>,
) -> Result<(usize, usize), OlapError> {
    let view_check = resolve_view_check(cube, query, view)?;
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    sel.clear();
    for fact_row in rows {
        if row_selected(
            cube,
            query,
            view_check.as_ref(),
            resolved,
            fact_table,
            fact_row,
            &mut facts_scanned,
            &mut facts_matched,
        )? {
            sel.push(fact_row as u32);
        }
    }
    Ok((facts_scanned, facts_matched))
}

/// Resolves a restricted view's per-row check once per scan (FK column
/// indices and remap chain hoisted out of the row loop); `None` for an
/// unrestricted view, which admits every live row.
fn resolve_view_check<'a>(
    cube: &'a Cube,
    query: &Query,
    view: &'a InstanceView,
) -> Result<Option<ResolvedViewCheck<'a>>, OlapError> {
    if view.is_unrestricted() {
        Ok(None)
    } else {
        view.resolve_for_fact(cube, &query.fact).map(Some)
    }
}

/// A single-row typed FK read: the member id a fact row points to,
/// through a pre-resolved column index. Value-for-value identical to
/// [`Cube::fact_member`] (float round trip, clamping, error wording)
/// without the name lookup or the `CellValue` materialisation.
fn member_at(column: &Column, fact_row: usize) -> Result<usize, OlapError> {
    match column.get_number(fact_row) {
        Some(member) => Ok(member as usize),
        None => Err(OlapError::TypeMismatch {
            expected: "integer foreign key",
            found: column.get(fact_row).type_name().to_string(),
        }),
    }
}

/// One row's selection decision — liveness, view, dimension filters and
/// fact filter, with the scanned/matched counters updated in exactly the
/// serial reference's order. Shared by every morsel scan so their
/// counter and error semantics cannot drift apart. Both the view check
/// and the dimension filters go through pre-resolved FK column indices
/// (typed reads) where available.
#[allow(clippy::too_many_arguments)]
fn row_selected(
    cube: &Cube,
    query: &Query,
    view_check: Option<&ResolvedViewCheck<'_>>,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    fact_row: usize,
    facts_scanned: &mut usize,
    facts_matched: &mut usize,
) -> Result<bool, OlapError> {
    if !fact_table.is_live(fact_row) {
        return Ok(false);
    }
    // An unrestricted view (no check resolved) admits every live row, so
    // skip the per-row selection/FK walk.
    if let Some(check) = view_check {
        if !check.allows(cube, &query.fact, fact_table, fact_row)? {
            return Ok(false);
        }
    }
    *facts_scanned += 1;
    for (dimension, (fk, allowed)) in &resolved.allowed_members {
        let member = match fk {
            Some(index) => member_at(fact_table.column_at(*index), fact_row)?,
            None => cube.fact_member(&query.fact, fact_row, dimension)?,
        };
        if !allowed.contains(&member) {
            return Ok(false);
        }
    }
    if let Some(filter) = &query.fact_filter {
        if !filter.matches(fact_table, fact_row)? {
            return Ok(false);
        }
    }
    *facts_matched += 1;
    Ok(true)
}

/// The dense key id of one group-by attribute for one fact row: a typed
/// FK read plus one dictionary index. Members outside the dictionary
/// (impossible through validated loads) read as `Null`, exactly what the
/// serial reference's out-of-range `Table::get` returns.
fn dense_key(
    cube: &Cube,
    query: &Query,
    dict: &GroupKeyDict,
    dimension: &str,
    fact_table: &Table,
    fact_row: usize,
) -> Result<u32, OlapError> {
    let member = match dict.fk_column {
        Some(index) => member_at(fact_table.column_at(index), fact_row)?,
        None => cube.fact_member(&query.fact, fact_row, dimension)?,
    };
    Ok(dict
        .keys
        .member_to_key
        .get(member)
        .copied()
        .unwrap_or(NULL_KEY))
}

/// The integer group id of one fact row, built attribute by attribute in
/// query order (so FK-read errors surface in the serial reference's
/// order, and a recorded dictionary-build error replays at the exact
/// attribute the serial loop would have failed on).
fn row_group_id(
    cube: &Cube,
    query: &Query,
    plan: &GroupPlan,
    fact_table: &Table,
    fact_row: usize,
) -> Result<GroupId, OlapError> {
    let mut packed: u128 = 0;
    let mut wide: Vec<u32> = Vec::new();
    if plan.cardinality.is_none() {
        wide.reserve(query.group_by.len());
    }
    for (index, attr) in query.group_by.iter().enumerate() {
        let Some(dict) = plan.dicts.get(index) else {
            let (_, error) = plan.error.as_ref().expect("missing dict implies an error");
            return Err(error.clone());
        };
        let dense = dense_key(cube, query, dict, &attr.dimension, fact_table, fact_row)?;
        match plan.cardinality {
            Some(_) => packed = packed * dict.keys.key_values.len() as u128 + u128::from(dense),
            None => wide.push(dense),
        }
    }
    Ok(match plan.cardinality {
        Some(_) => GroupId::Packed(packed),
        None => GroupId::Wide(wide.into_boxed_slice()),
    })
}

/// The integer-keyed hashed accumulation over a morsel's selection
/// vector: the fallback for group cardinalities above the flat-slot
/// limit and for measures that need full values (COUNT DISTINCT, text
/// columns). Accumulation order is the selection's ascending row order —
/// identical to [`scan_range`]'s — but group keys are dense integer ids
/// fed through the fast integer hasher ([`FxHashMap`]), and numeric
/// measures are read as bare numbers through pre-resolved column
/// indices.
fn accumulate_hashed(
    cube: &Cube,
    query: &Query,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    sel: &[u32],
    out: &mut Vec<(GroupId, Vec<Accumulator>)>,
) -> Result<(), OlapError> {
    let mut groups: FxHashMap<GroupId, usize> = FxHashMap::default();
    for &row in sel {
        let fact_row = row as usize;
        let id = row_group_id(cube, query, plan, fact_table, fact_row)?;
        let slot = match groups.entry(id) {
            Entry::Occupied(entry) => *entry.get(),
            Entry::Vacant(entry) => {
                let slot = out.len();
                out.push((
                    entry.key().clone(),
                    resolved
                        .measures
                        .iter()
                        .map(|(_, agg)| Accumulator::new(*agg))
                        .collect(),
                ));
                entry.insert(slot);
                slot
            }
        };
        let accumulators = &mut out[slot].1;
        for (i, (measure_plan, acc)) in resolved
            .plans
            .iter()
            .zip(accumulators.iter_mut())
            .enumerate()
        {
            match measure_plan.column {
                Some(index) if measure_plan.numeric => {
                    if let Some(n) = fact_table.column_at(index).get_number(fact_row) {
                        acc.update_number(n);
                    }
                }
                Some(index) => acc.update(&fact_table.column_at(index).get(fact_row)),
                None => acc.update(&fact_table.get(fact_row, &resolved.measures[i].0)?),
            }
        }
    }
    Ok(())
}

/// Reusable per-worker buffers of the flat grouped scan, sized once per
/// query (the slot vectors to the plan's total cardinality) and reset
/// between morsels through the touched-slot list — never an
/// O(cardinality) clear per morsel.
struct FlatScratch {
    /// Group slot per selected row (parallel to the selection vector,
    /// which lives outside the scratch: on the batch path one selection
    /// is shared by a whole filter class).
    slots: Vec<u32>,
    /// FK gather buffer (member ids, parallel to the selection vector).
    members: Vec<u32>,
    /// Gathered non-null measure values and their slots.
    values: Vec<f64>,
    value_slots: Vec<u32>,
    /// Per-slot group-existence flags for the current morsel (a group
    /// exists once a row matches, even if every measure value is null —
    /// the serial reference's semantics).
    slot_seen: Vec<bool>,
    /// Slots touched by the current morsel, in first-occurrence order.
    touched: Vec<u32>,
    /// Per-measure slot-backed accumulator state.
    measures: Vec<SlotAccumulator>,
}

impl FlatScratch {
    fn new(resolved: &Resolved<'_>, slots: usize) -> Self {
        FlatScratch {
            slots: Vec::new(),
            members: Vec::new(),
            values: Vec::new(),
            value_slots: Vec::new(),
            slot_seen: vec![false; slots],
            touched: Vec::new(),
            measures: resolved
                .measures
                .iter()
                .map(|(_, agg)| SlotAccumulator::new(*agg, slots))
                .collect(),
        }
    }
}

/// The flat dense-slot grouped accumulation over a morsel's selection
/// vector. Two passes, each vectorisable:
///
/// 1. resolve the FK columns through typed chunk slices
///    ([`Column::gather_members`]) and fold the per-attribute dense ids
///    into one mixed-radix **slot vector**;
/// 2. per measure, gather the column into a compacted null-free
///    `(values, slots)` pair ([`Column::gather_numeric`]) and run the
///    grouped slice kernel into the per-slot vectors.
///
/// The morsel's partial is then read out of the touched slots in
/// first-occurrence order, as per-measure [`NumericAgg`] columns the
/// merge phase adds slot-wise into live-group totals.
#[allow(clippy::too_many_arguments)]
fn accumulate_flat(
    cube: &Cube,
    query: &Query,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    sel: &[u32],
    facts_scanned: usize,
    facts_matched: usize,
    scratch: &mut FlatScratch,
) -> Result<MorselPartial, OlapError> {
    if sel.is_empty() {
        return Ok(MorselPartial {
            groups: MorselGroups::Flat {
                touched: Vec::new(),
                partials: Vec::new(),
            },
            facts_scanned,
            facts_matched,
        });
    }

    // Slot vector: one typed FK gather per attribute, folded mixed-radix.
    scratch.slots.clear();
    scratch.slots.resize(sel.len(), 0);
    for (dict, attr) in plan.dicts.iter().zip(&query.group_by) {
        scratch.members.clear();
        match dict.fk_column {
            Some(index) => fact_table
                .column_at(index)
                .gather_members(sel, &mut scratch.members)?,
            None => {
                for &row in sel {
                    let member = cube.fact_member(&query.fact, row as usize, &attr.dimension)?;
                    scratch.members.push(member.min(u32::MAX as usize) as u32);
                }
            }
        }
        let radix = dict.keys.key_values.len() as u32;
        for (slot, &member) in scratch.slots.iter_mut().zip(&scratch.members) {
            let dense = dict
                .keys
                .member_to_key
                .get(member as usize)
                .copied()
                .unwrap_or(NULL_KEY);
            *slot = *slot * radix + dense;
        }
    }

    // Group existence: a slot is born when its first row matches.
    for &slot in &scratch.slots {
        let seen = &mut scratch.slot_seen[slot as usize];
        if !*seen {
            scratch.touched.push(slot);
            *seen = true;
        }
    }

    // One kernel pass per measure over the gathered null-free pairs.
    for (measure_plan, state) in resolved.plans.iter().zip(scratch.measures.iter_mut()) {
        let index = measure_plan
            .column
            .expect("flat plans resolve every measure column");
        scratch.values.clear();
        scratch.value_slots.clear();
        fact_table.column_at(index).gather_numeric(
            sel,
            &scratch.slots,
            &mut scratch.values,
            &mut scratch.value_slots,
        );
        state.accumulate(&scratch.values, &scratch.value_slots);
    }

    // Drain the touched slots into the morsel partial (per-measure
    // `NumericAgg` columns parallel to the touched list), resetting the
    // slot state for the next morsel.
    let mut partials: Vec<Vec<NumericAgg>> = resolved
        .measures
        .iter()
        .map(|_| Vec::with_capacity(scratch.touched.len()))
        .collect();
    for &slot in &scratch.touched {
        scratch.slot_seen[slot as usize] = false;
        for (state, column) in scratch.measures.iter_mut().zip(partials.iter_mut()) {
            column.push(state.take_slot(slot as usize));
        }
    }
    let touched = std::mem::take(&mut scratch.touched);
    Ok(MorselPartial {
        groups: MorselGroups::Flat { touched, partials },
        facts_scanned,
        facts_matched,
    })
}

/// Merges each measure column's kernel partial over one run of selected
/// rows.
fn accumulate_run(
    fact_table: &Table,
    resolved: &Resolved<'_>,
    partials: &mut [NumericAgg],
    run: Range<usize>,
) {
    for (plan, partial) in resolved.plans.iter().zip(partials.iter_mut()) {
        let index = plan.column.expect("vectorised plans resolve every column");
        let part = fact_table
            .column_at(index)
            .numeric_agg(run.clone())
            .expect("vectorised plans are numeric");
        partial.merge(&part);
    }
}

/// The vectorised morsel scan for ungrouped all-numeric aggregates: the
/// morsel's selected rows are gathered into maximal contiguous runs and
/// each run is aggregated by the per-chunk slice kernels. When nothing
/// restricts the scan (no view, no filters), tombstone gaps are the only
/// run boundaries and no per-row work happens at all.
fn scan_morsel_vectorised(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    groups: &mut Vec<(GroupId, Vec<Accumulator>)>,
) -> Result<(usize, usize), OlapError> {
    let mut partials: Vec<NumericAgg> = vec![NumericAgg::default(); resolved.plans.len()];
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;

    let unrestricted = view.is_unrestricted()
        && resolved.allowed_members.is_empty()
        && query.fact_filter.is_none();
    if unrestricted {
        for run in fact_table.live_runs(rows) {
            facts_scanned += run.len();
            facts_matched += run.len();
            accumulate_run(fact_table, resolved, &mut partials, run);
        }
    } else {
        // Per-row selection (the shared `row_selected` mirrors
        // `scan_range`'s check order and error behaviour), gathering
        // selected rows into runs.
        let view_check = resolve_view_check(cube, query, view)?;
        let end = rows.end;
        let mut run_start: Option<usize> = None;
        for fact_row in rows {
            let selected = row_selected(
                cube,
                query,
                view_check.as_ref(),
                resolved,
                fact_table,
                fact_row,
                &mut facts_scanned,
                &mut facts_matched,
            )?;
            match (selected, run_start) {
                (true, None) => run_start = Some(fact_row),
                (false, Some(start)) => {
                    accumulate_run(fact_table, resolved, &mut partials, start..fact_row);
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            accumulate_run(fact_table, resolved, &mut partials, start..end);
        }
    }

    // Like the reference loop, the single (ungrouped) group exists only
    // when at least one row matched.
    if facts_matched > 0 {
        groups.push((GroupId::Packed(0), absorb_partials(resolved, &partials)));
    }
    Ok((facts_scanned, facts_matched))
}

/// One accumulator per measure, seeded from the kernels' partial states.
fn absorb_partials(resolved: &Resolved<'_>, partials: &[NumericAgg]) -> Vec<Accumulator> {
    resolved
        .measures
        .iter()
        .zip(partials)
        .map(|((_, agg), partial)| {
            let mut acc = Accumulator::new(*agg);
            acc.absorb(partial);
            acc
        })
        .collect()
}

/// Maximal contiguous runs of a sorted selection vector — the batch
/// path's equivalent of [`scan_morsel_vectorised`]'s inline run
/// detection, so both feed the slice kernels identical sub-slices (and
/// therefore produce bit-identical float partials).
fn selection_runs(sel: &[u32]) -> Vec<Range<usize>> {
    let mut runs = Vec::new();
    let mut rows = sel.iter().map(|&row| row as usize);
    let Some(first) = rows.next() else {
        return runs;
    };
    let mut start = first;
    let mut prev = first;
    for row in rows {
        if row != prev + 1 {
            runs.push(start..prev + 1);
            start = row;
        }
        prev = row;
    }
    runs.push(start..prev + 1);
    runs
}

/// The vectorised ungrouped partial over pre-computed selected-row runs
/// (the batch path; counters come from the shared class selection).
fn vectorised_partial(
    fact_table: &Table,
    resolved: &Resolved<'_>,
    runs: &[Range<usize>],
    facts_scanned: usize,
    facts_matched: usize,
) -> MorselPartial {
    let mut partials: Vec<NumericAgg> = vec![NumericAgg::default(); resolved.plans.len()];
    for run in runs {
        accumulate_run(fact_table, resolved, &mut partials, run.clone());
    }
    let mut groups = Vec::new();
    if facts_matched > 0 {
        groups.push((GroupId::Packed(0), absorb_partials(resolved, &partials)));
    }
    MorselPartial {
        groups: MorselGroups::Keyed(groups),
        facts_scanned,
        facts_matched,
    }
}

/// The per-worker loop of the parallel pipeline: pulls morsel indices
/// from the shared counter until the table is exhausted, producing one
/// partial aggregate per morsel. A morsel that errors records the error
/// and the worker moves on, so the merge phase can always report the
/// error of the *lowest-indexed* failing morsel — the same error the
/// serial reference reports.
#[allow(clippy::too_many_arguments)]
fn scan_assigned_morsels(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    next_morsel: &AtomicUsize,
    morsel_count: usize,
    morsel_rows: usize,
    total_rows: usize,
    cancel: &CancelToken,
) -> Vec<(usize, Result<MorselPartial, OlapError>)> {
    let mut out = Vec::new();
    // Worker-local selection and flat-slot buffers, sized once and
    // reused across this worker's morsels (the slot state resets through
    // the touched list, not by clearing whole slot vectors).
    let mut sel: Vec<u32> = Vec::new();
    let mut scratch = plan.flat.map(|slots| FlatScratch::new(resolved, slots));
    loop {
        let morsel = next_morsel.fetch_add(1, Ordering::Relaxed);
        if morsel >= morsel_count {
            break;
        }
        // Checked after the bounds check, so a trip observed here means
        // a claimed morsel index goes unscanned — which is exactly what
        // forces the executor's terminal-state bail-out. (A participant
        // arriving after exhaustion must not trip the token: the query
        // completed.)
        if cancel.check().is_err() {
            break;
        }
        #[cfg(feature = "failpoints")]
        {
            if let Some(message) = crate::fault::eval("query.scan.morsel") {
                out.push((
                    morsel,
                    Err(OlapError::InvalidQuery {
                        message: format!("injected: {message}"),
                    }),
                ));
                continue;
            }
        }
        let start = morsel * morsel_rows;
        let end = (start + morsel_rows).min(total_rows);
        let partial = scan_morsel(
            cube,
            query,
            view,
            resolved,
            plan,
            fact_table,
            start..end,
            &mut sel,
            &mut scratch,
        );
        out.push((morsel, partial));
    }
    out
}

/// The per-worker loop of the batch pipeline: like
/// [`scan_assigned_morsels`], but each pulled morsel is scanned once for
/// the whole fact group — one selection per filter class, one partial
/// per member query.
#[allow(clippy::too_many_arguments)]
fn scan_assigned_batch_morsels(
    cube: &Cube,
    view: &InstanceView,
    group: &FactGroup<'_>,
    fact_table: &Table,
    next_morsel: &AtomicUsize,
    morsel_count: usize,
    morsel_rows: usize,
    total_rows: usize,
    cancel: &CancelToken,
) -> Vec<(usize, Vec<Result<MorselPartial, OlapError>>)> {
    let mut out = Vec::new();
    let mut sels: Vec<Vec<u32>> = group.classes.iter().map(|_| Vec::new()).collect();
    let mut scratches: Vec<Option<FlatScratch>> = group
        .queries
        .iter()
        .map(|member| {
            member
                .plan
                .flat
                .map(|slots| FlatScratch::new(&member.resolved, slots))
        })
        .collect();
    loop {
        let morsel = next_morsel.fetch_add(1, Ordering::Relaxed);
        if morsel >= morsel_count {
            break;
        }
        // Same ordering discipline as `scan_assigned_morsels`.
        if cancel.check().is_err() {
            break;
        }
        #[cfg(feature = "failpoints")]
        {
            if let Some(message) = crate::fault::eval("query.batch.morsel") {
                out.push((
                    morsel,
                    group
                        .queries
                        .iter()
                        .map(|_| {
                            Err(OlapError::InvalidQuery {
                                message: format!("injected: {message}"),
                            })
                        })
                        .collect(),
                ));
                continue;
            }
        }
        let start = morsel * morsel_rows;
        let end = (start + morsel_rows).min(total_rows);
        let partials = scan_batch_morsel(
            cube,
            view,
            group,
            fact_table,
            start..end,
            &mut sels,
            &mut scratches,
        );
        out.push((morsel, partials));
    }
    out
}

/// One class's shared selection outcome for one morsel.
struct ClassSelection {
    facts_scanned: usize,
    facts_matched: usize,
    /// Pre-computed live runs, present only for unrestricted classes
    /// (where they double as the selection).
    runs: Option<Vec<Range<usize>>>,
}

/// One morsel of the batch pipeline: selection once per filter class,
/// then each member query's own accumulation path over its class's
/// shared selection. Returns one partial per member query, in group
/// order. A selection error is the whole class's error (each member
/// would have hit it at the same row standalone); accumulation errors
/// stay per query.
fn scan_batch_morsel(
    cube: &Cube,
    view: &InstanceView,
    group: &FactGroup<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    sels: &mut [Vec<u32>],
    scratches: &mut [Option<FlatScratch>],
) -> Vec<Result<MorselPartial, OlapError>> {
    // Phase 1: one selection per filter class.
    let mut selections: Vec<Result<ClassSelection, OlapError>> =
        Vec::with_capacity(group.classes.len());
    for (c, class) in group.classes.iter().enumerate() {
        let rep = &group.queries[class.rep];
        if class.unrestricted {
            // Tombstone gaps are the only boundaries: take the live-run
            // structure directly — no per-row work. `row_selected` with
            // no filters and an unrestricted view selects exactly the
            // live rows (and cannot error), so expanding the runs yields
            // the very vector `select_rows` would have built.
            let runs = fact_table.live_runs(rows.clone());
            let live: usize = runs.iter().map(|run| run.len()).sum();
            if !class.runs_only {
                let sel = &mut sels[c];
                sel.clear();
                for run in &runs {
                    sel.extend(run.clone().map(|row| row as u32));
                }
            }
            selections.push(Ok(ClassSelection {
                facts_scanned: live,
                facts_matched: live,
                runs: Some(runs),
            }));
        } else {
            selections.push(
                select_rows(
                    cube,
                    rep.query,
                    view,
                    &rep.resolved,
                    fact_table,
                    rows.clone(),
                    &mut sels[c],
                )
                .map(|(facts_scanned, facts_matched)| ClassSelection {
                    facts_scanned,
                    facts_matched,
                    runs: None,
                }),
            );
        }
    }

    // Phase 2: per-query accumulation over the shared selections.
    group
        .queries
        .iter()
        .zip(scratches.iter_mut())
        .map(|(member, scratch)| {
            let selection = match &selections[member.class] {
                Ok(selection) => selection,
                Err(error) => return Err(error.clone()),
            };
            let (facts_scanned, facts_matched) = (selection.facts_scanned, selection.facts_matched);
            let sel = sels[member.class].as_slice();
            if member.resolved.vectorised {
                let derived;
                let runs: &[Range<usize>] = match &selection.runs {
                    Some(runs) => runs,
                    None => {
                        derived = selection_runs(sel);
                        &derived
                    }
                };
                Ok(vectorised_partial(
                    fact_table,
                    &member.resolved,
                    runs,
                    facts_scanned,
                    facts_matched,
                ))
            } else if let Some(scratch) = scratch {
                accumulate_flat(
                    cube,
                    member.query,
                    &member.resolved,
                    &member.plan,
                    fact_table,
                    sel,
                    facts_scanned,
                    facts_matched,
                    scratch,
                )
            } else {
                let mut groups = Vec::new();
                accumulate_hashed(
                    cube,
                    member.query,
                    &member.resolved,
                    &member.plan,
                    fact_table,
                    sel,
                    &mut groups,
                )?;
                Ok(MorselPartial {
                    groups: MorselGroups::Keyed(groups),
                    facts_scanned,
                    facts_matched,
                })
            }
        })
        .collect()
}

/// Merges per-morsel partials **in morsel-index order** into final group
/// rows plus the query's counters — shared verbatim by the standalone
/// and batch executors, so a batched query combines its accumulator
/// state (and reports the lowest-indexed morsel's error) exactly as its
/// standalone execution does. The merge works entirely on integer group
/// ids; key cells are decoded only for the groups that survive.
///
/// On the flat path the merge state is keyed by touched slot (a fast
/// integer-hashed index into first-occurrence-ordered live-group
/// columns), so its cost scales with the groups the morsels actually
/// produced — not with the plan's slot-space cardinality.
#[allow(clippy::type_complexity)]
fn merge_partials(
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    mut partials: Vec<(usize, Result<MorselPartial, OlapError>)>,
) -> Result<(Vec<(Vec<CellValue>, Vec<Accumulator>)>, usize, usize), OlapError> {
    partials.sort_by_key(|(morsel, _)| *morsel);
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    let rows: Vec<(Vec<CellValue>, Vec<Accumulator>)> = if plan.flat.is_some() {
        let mut slot_index: FxHashMap<u32, usize> = FxHashMap::default();
        let mut live_slots: Vec<u32> = Vec::new();
        let mut totals: Vec<Vec<NumericAgg>> = vec![Vec::new(); resolved.measures.len()];
        for (_, partial) in partials {
            let partial = partial?;
            facts_scanned += partial.facts_scanned;
            facts_matched += partial.facts_matched;
            let MorselGroups::Flat { touched, partials } = partial.groups else {
                unreachable!("flat plans produce flat partials");
            };
            for (index, &slot) in touched.iter().enumerate() {
                let at = match slot_index.entry(slot) {
                    Entry::Occupied(entry) => *entry.get(),
                    Entry::Vacant(entry) => {
                        let at = live_slots.len();
                        live_slots.push(slot);
                        for total in totals.iter_mut() {
                            total.push(NumericAgg::default());
                        }
                        entry.insert(at);
                        at
                    }
                };
                for (total, partial) in totals.iter_mut().zip(&partials) {
                    total[at].merge(&partial[index]);
                }
            }
        }
        let mut order: Vec<usize> = (0..live_slots.len()).collect();
        order.sort_unstable_by_key(|&at| live_slots[at]);
        order
            .into_iter()
            .map(|at| {
                let accumulators = resolved
                    .measures
                    .iter()
                    .zip(&totals)
                    .map(|((_, agg), total)| {
                        let mut acc = Accumulator::new(*agg);
                        acc.absorb(&total[at]);
                        acc
                    })
                    .collect();
                (
                    plan.decode(&GroupId::Packed(live_slots[at] as u128)),
                    accumulators,
                )
            })
            .collect()
    } else {
        let mut groups: FxHashMap<GroupId, Vec<Accumulator>> = FxHashMap::default();
        for (_, partial) in partials {
            let partial = partial?;
            facts_scanned += partial.facts_scanned;
            facts_matched += partial.facts_matched;
            let MorselGroups::Keyed(keyed) = partial.groups else {
                unreachable!("non-flat plans produce keyed partials");
            };
            for (key, accumulators) in keyed {
                match groups.entry(key) {
                    Entry::Vacant(entry) => {
                        entry.insert(accumulators);
                    }
                    Entry::Occupied(mut entry) => {
                        for (merged, partial_acc) in
                            entry.get_mut().iter_mut().zip(accumulators.iter())
                        {
                            merged.merge(partial_acc);
                        }
                    }
                }
            }
        }
        groups
            .into_iter()
            .map(|(id, accumulators)| (plan.decode(&id), accumulators))
            .collect()
    };
    Ok((rows, facts_scanned, facts_matched))
}

/// Finalises the group rows — `(key cells, accumulators)` pairs from
/// either executor — into a sorted, limited result.
fn materialise(
    query: &Query,
    resolved: &Resolved<'_>,
    groups: Vec<(Vec<CellValue>, Vec<Accumulator>)>,
    facts_scanned: usize,
    facts_matched: usize,
) -> QueryResult {
    let mut rows: Vec<ResultRow> = groups
        .into_iter()
        .map(|(keys, accs)| ResultRow {
            keys,
            values: accs.iter().map(Accumulator::finish).collect(),
        })
        .collect();
    rows.sort_by(|a, b| {
        let ka: Vec<String> = a.keys.iter().map(CellValue::group_key).collect();
        let kb: Vec<String> = b.keys.iter().map(CellValue::group_key).collect();
        ka.cmp(&kb)
    });
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    QueryResult {
        key_names: query.group_by.iter().map(|a| a.label()).collect(),
        value_names: resolved
            .measures
            .iter()
            .map(|(name, agg)| format!("{agg}({name})"))
            .collect(),
        rows,
        facts_scanned,
        facts_matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::query::AttributeRef;
    use sdwp_geometry::Point;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    /// Builds a small sales cube: 4 stores in 2 cities, 3 days, one fact
    /// row per (store, day) with UnitSales = store index + 1.
    fn sales_cube() -> Cube {
        let schema = SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .level(
                        "Day",
                        vec![sdwp_model::Attribute::descriptor(
                            "date",
                            AttributeType::Date,
                        )],
                    )
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure_with("StoreCost", AttributeType::Float, AggregationFunction::Avg)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        let cities = ["Alicante", "Alicante", "Madrid", "Madrid"];
        for (i, city) in cities.iter().enumerate() {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    ("City.name", CellValue::from(*city)),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        for d in 0..3 {
            cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(d))])
                .unwrap();
        }
        for s in 0..4usize {
            for d in 0..3usize {
                cube.add_fact_row(
                    "Sales",
                    vec![("Store", s), ("Time", d)],
                    vec![
                        ("UnitSales", CellValue::Float((s + 1) as f64)),
                        ("StoreCost", CellValue::Float(10.0 * (s + 1) as f64)),
                    ],
                )
                .unwrap();
            }
        }
        cube
    }

    #[test]
    fn rollup_to_city() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        // Alicante: stores 0 and 1 → (1 + 2) * 3 days = 9.
        let alicante = result.find(&[CellValue::from("Alicante")]).unwrap();
        assert_eq!(alicante.values[0], CellValue::Float(9.0));
        // Madrid: stores 2 and 3 → (3 + 4) * 3 = 21.
        let madrid = result.find(&[CellValue::from("Madrid")]).unwrap();
        assert_eq!(madrid.values[0], CellValue::Float(21.0));
        assert_eq!(result.facts_scanned, 12);
        assert_eq!(result.facts_matched, 12);
    }

    #[test]
    fn grand_total_and_avg() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure("UnitSales")
            .measure("StoreCost");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0].values[0], CellValue::Float(30.0));
        // StoreCost uses its default AVG aggregation: mean of 10,20,30,40
        // over 3 days each = 25.
        assert_eq!(result.rows[0].values[1], CellValue::Float(25.0));
        assert_eq!(
            engine
                .total(&cube, "Sales", "UnitSales", &InstanceView::unrestricted())
                .unwrap(),
            30.0
        );
    }

    #[test]
    fn dimension_filter_slice() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "Store", "name"))
            .measure("UnitSales")
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"));
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.facts_matched, 6);
    }

    #[test]
    fn spatial_dimension_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        // Stores within 15 units of the origin: stores 0 (x=0) and 1 (x=10).
        let query = Query::over("Sales").measure("UnitSales").filter_dimension(
            "Store",
            Filter::within_km("Store.geometry", Point::new(0.0, 0.0).into(), 15.0),
        );
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
    }

    #[test]
    fn view_restriction_is_equivalent_to_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let via_view = engine.execute_with_view(&cube, &query, &view).unwrap();
        let via_filter = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Store", Filter::eq("City.name", "Alicante")),
            )
            .unwrap();
        assert_eq!(via_view.rows[0].values[0], via_filter.rows[0].values[0]);
        // The view reduces the number of facts even scanned.
        assert_eq!(via_view.facts_scanned, 6);
        assert_eq!(via_filter.facts_scanned, 12);
    }

    #[test]
    fn fact_filter_on_measures() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure_agg("UnitSales", AggregationFunction::Count)
            .filter_fact(Filter::Attribute {
                column: "UnitSales".into(),
                op: crate::filter::CompareOp::Ge,
                value: CellValue::Float(3.0),
            });
        let result = engine.execute(&cube, &query).unwrap();
        // Stores 2 and 3 have UnitSales 3 and 4, over 3 days each.
        assert_eq!(result.rows[0].values[0], CellValue::Integer(6));
    }

    #[test]
    fn multi_key_grouping_and_limit() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .group_by(AttributeRef::new("Time", "Day", "date"))
            .measure("UnitSales");
        let full = engine.execute(&cube, &query).unwrap();
        assert_eq!(full.len(), 6); // 2 cities x 3 days
        let limited = engine.execute(&cube, &query.clone().limit(4)).unwrap();
        assert_eq!(limited.len(), 4);
    }

    #[test]
    fn error_cases() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        assert!(engine
            .execute(&cube, &Query::over("Returns").measure("UnitSales"))
            .is_err());
        assert!(engine.execute(&cube, &Query::over("Sales")).is_err());
        assert!(engine
            .execute(&cube, &Query::over("Sales").measure("Profit"))
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Customer", "Customer", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Store", "Country", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Customer", Filter::All)
            )
            .is_err());
    }

    #[test]
    fn parallel_matches_serial_on_the_sales_cube() {
        let cube = sales_cube();
        let serial = QueryEngine::with_config(ExecutionConfig::serial());
        let queries = [
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .measure("UnitSales")
                .measure("StoreCost"),
            Query::over("Sales")
                .measure_agg("UnitSales", AggregationFunction::CountDistinct)
                .measure_agg("StoreCost", AggregationFunction::Min),
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "Store", "name"))
                .group_by(AttributeRef::new("Time", "Day", "date"))
                .measure("UnitSales")
                .limit(5),
        ];
        for workers in [1usize, 2, 8] {
            let parallel = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(workers)
                    .with_morsel_rows(4),
            );
            for query in &queries {
                assert_eq!(
                    parallel.execute(&cube, query).unwrap(),
                    serial.execute_serial(&cube, query).unwrap(),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_preserves_view_restrictions() {
        let cube = sales_cube();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let result = engine.execute_with_view(&cube, &query, &view).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
        assert_eq!(result.facts_scanned, 6);
        assert_eq!(
            result,
            engine
                .execute_serial_with_view(&cube, &query, &view)
                .unwrap()
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let cube = sales_cube();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales")
            .measure_agg("StoreCost", AggregationFunction::Avg);
        let reference = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(1)
                .with_morsel_rows(3),
        )
        .execute(&cube, &query)
        .unwrap();
        for workers in [2usize, 3, 8] {
            let result = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(workers)
                    .with_morsel_rows(3),
            )
            .execute(&cube, &query)
            .unwrap();
            assert_eq!(result, reference, "workers={workers}");
        }
    }

    #[test]
    fn retracted_rows_are_invisible_to_both_executors() {
        let mut cube = sales_cube();
        // Retract all three rows of store 0 and one row of store 2.
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.retract_fact_row("Sales", 1).unwrap();
        cube.retract_fact_row("Sales", 2).unwrap();
        cube.retract_fact_row("Sales", 6).unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let result = parallel.execute(&cube, &query).unwrap();
        // Alicante keeps only store 1 (2.0 × 3 days); Madrid loses one
        // store-2 row (3+4)*3 - 3 = 18.
        assert_eq!(
            result.find(&[CellValue::from("Alicante")]).unwrap().values[0],
            CellValue::Float(6.0)
        );
        assert_eq!(
            result.find(&[CellValue::from("Madrid")]).unwrap().values[0],
            CellValue::Float(18.0)
        );
        assert_eq!(result.facts_scanned, 8);
        assert_eq!(
            result,
            QueryEngine::with_config(ExecutionConfig::serial())
                .execute_serial(&cube, &query)
                .unwrap()
        );
    }

    #[test]
    fn parallel_reports_serial_errors() {
        let cube = sales_cube();
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(8)
                .with_morsel_rows(1),
        );
        let serial = QueryEngine::with_config(ExecutionConfig::serial());
        let bad_queries = [
            Query::over("Returns").measure("UnitSales"),
            Query::over("Sales"),
            Query::over("Sales").measure("Profit"),
            Query::over("Sales")
                .measure("UnitSales")
                .filter_fact(Filter::eq("ghost", "x")),
        ];
        for query in &bad_queries {
            let a = parallel.execute(&cube, query).unwrap_err();
            let b = serial.execute_serial(&cube, query).unwrap_err();
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }

    #[test]
    fn execution_config_resolution() {
        assert_eq!(ExecutionConfig::serial().effective_workers(), 1);
        assert_eq!(ExecutionConfig::default().with_workers(3).workers, 3);
        assert_eq!(
            ExecutionConfig::default().with_morsel_rows(0).morsel_rows,
            1
        );
        assert!(ExecutionConfig::default().effective_workers() >= 1);
        assert_eq!(
            ExecutionConfig::default()
                .with_cache_capacity(7)
                .cache_capacity,
            7
        );
        let engine = QueryEngine::with_config(ExecutionConfig::serial());
        assert_eq!(engine.config().workers, 1);
    }

    #[test]
    fn empty_cube_returns_empty_result() {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap();
        let cube = Cube::new(schema);
        let engine = QueryEngine::new();
        let result = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .group_by(AttributeRef::new("Store", "Store", "name"))
                    .measure("UnitSales"),
            )
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.facts_scanned, 0);
    }

    /// A dashboard-style batch over the sales cube: shared filters,
    /// disjoint filters, grouped (flat), ungrouped (vectorised) and
    /// COUNT DISTINCT (hashed) members.
    fn dashboard_batch() -> Vec<Query> {
        vec![
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .measure("UnitSales"),
            Query::over("Sales")
                .measure("UnitSales")
                .measure("StoreCost"),
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "Store", "name"))
                .measure("UnitSales")
                .filter_dimension("Store", Filter::eq("City.name", "Alicante")),
            Query::over("Sales")
                .group_by(AttributeRef::new("Time", "Day", "date"))
                .measure("StoreCost")
                .filter_dimension("Store", Filter::eq("City.name", "Alicante")),
            Query::over("Sales")
                .measure_agg("UnitSales", AggregationFunction::CountDistinct)
                .filter_dimension("Store", Filter::eq("City.name", "Madrid")),
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .group_by(AttributeRef::new("Time", "Day", "date"))
                .measure("UnitSales")
                .limit(3),
        ]
    }

    #[test]
    fn batch_matches_standalone_execution() {
        let cube = sales_cube();
        let queries = dashboard_batch();
        for workers in [1usize, 2, 8] {
            for slot_limit in [0usize, DEFAULT_GROUP_SLOT_LIMIT] {
                let engine = QueryEngine::with_config(
                    ExecutionConfig::default()
                        .with_workers(workers)
                        .with_morsel_rows(4)
                        .with_group_slot_limit(slot_limit),
                );
                let batched = engine.execute_batch(&cube, &queries);
                assert_eq!(batched.len(), queries.len());
                for (query, batched) in queries.iter().zip(&batched) {
                    let standalone = engine.execute(&cube, query).unwrap();
                    assert_eq!(
                        batched.as_ref().unwrap(),
                        &standalone,
                        "workers={workers} slot_limit={slot_limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_respects_views() {
        let cube = sales_cube();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 2]);
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let queries = dashboard_batch();
        for (query, batched) in queries
            .iter()
            .zip(engine.execute_batch_with_view(&cube, &queries, &view))
        {
            assert_eq!(
                batched.unwrap(),
                engine.execute_with_view(&cube, query, &view).unwrap()
            );
        }
    }

    #[test]
    fn batch_reports_per_query_errors_without_poisoning_the_batch() {
        let cube = sales_cube();
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(2)
                .with_morsel_rows(3),
        );
        let good = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let bad_resolution = Query::over("Sales").measure("Profit");
        let bad_scan = Query::over("Sales")
            .measure("UnitSales")
            .filter_fact(Filter::eq("ghost", "x"));
        let batch = vec![bad_resolution.clone(), good.clone(), bad_scan.clone()];
        let results = engine.execute_batch(&cube, &batch);
        assert_eq!(
            format!("{}", results[0].as_ref().unwrap_err()),
            format!("{}", engine.execute(&cube, &bad_resolution).unwrap_err())
        );
        assert_eq!(
            results[1].as_ref().unwrap(),
            &engine.execute(&cube, &good).unwrap()
        );
        assert_eq!(
            format!("{}", results[2].as_ref().unwrap_err()),
            format!("{}", engine.execute(&cube, &bad_scan).unwrap_err())
        );
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let cube = sales_cube();
        assert!(QueryEngine::new().execute_batch(&cube, &[]).is_empty());
    }

    #[test]
    fn batch_shares_dictionaries_through_the_cache() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let dicts = crate::dicts::GroupDictCache::new();
        let by_city = |measure: &str| {
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .measure(measure)
        };
        let batch = vec![by_city("UnitSales"), by_city("StoreCost")];
        let view = InstanceView::unrestricted();
        let first = engine.execute_batch_cached(&cube, &batch, &view, Some((&dicts, 1)));
        assert!(first.iter().all(Result::is_ok));
        // One build for the whole batch: the second query's lookup hit
        // the batch-local memo, so the cache saw a single miss.
        let stats = dicts.stats();
        assert_eq!((stats.misses, stats.entries), (1, 1));
        // A later batch at the same generation hits the cross-batch
        // cache instead of rebuilding.
        let second = engine.execute_batch_cached(&cube, &batch, &view, Some((&dicts, 1)));
        assert_eq!(first[0].as_ref().unwrap(), second[0].as_ref().unwrap());
        let stats = dicts.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The standalone cached path shares the same dictionaries.
        let standalone = engine
            .execute_with_view_cached(&cube, &batch[0], &view, Some((&dicts, 1)))
            .unwrap();
        assert_eq!(&standalone, first[0].as_ref().unwrap());
        assert_eq!(dicts.stats().hits, 2);
    }

    #[test]
    fn dict_cache_generation_semantics() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let dicts = crate::dicts::GroupDictCache::new();
        let view = InstanceView::unrestricted();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let expected = engine.execute(&cube, &query).unwrap();
        let run = |generation: u64| {
            engine
                .execute_with_view_cached(&cube, &query, &view, Some((&dicts, generation)))
                .unwrap()
        };
        assert_eq!(run(1), expected);
        assert_eq!(dicts.stats().misses, 1);
        // A dimension-preserving publish keeps the entry hitting.
        dicts.advance(2);
        assert_eq!(run(2), expected);
        assert_eq!((dicts.stats().hits, dicts.stats().misses), (1, 1));
        // A query pinned to an older snapshot builds uncached and leaves
        // the newer entry alone.
        assert_eq!(run(1), expected);
        let stats = dicts.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        // A schema-personalization publish flushes.
        dicts.invalidate(3);
        let stats = dicts.stats();
        assert_eq!((stats.entries, stats.invalidations), (0, 1));
        assert_eq!(run(3), expected);
        assert_eq!(dicts.stats().entries, 1);
        // A lookup at a generation the cache has never seen flushes
        // conservatively and re-seeds.
        assert_eq!(run(5), expected);
        let stats = dicts.stats();
        assert_eq!((stats.entries, stats.invalidations), (1, 2));
    }
}
