//! The query engine: morsel-parallel group-by aggregation through
//! personalized views.
//!
//! # Execution model
//!
//! Execution is a two-phase *morsel* pipeline in the style of
//! morsel-driven parallelism: the fact table is split into fixed-size row
//! chunks ("morsels"); scoped worker threads pull morsel indices from a
//! shared atomic counter and run filter + partial aggregation per morsel
//! into a private hash table; the partial [`Accumulator`] states are then
//! merged **in morsel-index order** and finalised once.
//!
//! Because morsel boundaries and the merge order depend only on
//! [`ExecutionConfig::morsel_rows`] — never on the worker count or on
//! which worker processed which morsel — the result (including every
//! floating-point partial sum) is bit-for-bit identical whether the
//! pipeline runs on 1 or N workers. [`QueryEngine::execute_serial_with_view`]
//! keeps the classic row-at-a-time loop as the reference implementation
//! the equivalence property suite compares against.
//!
//! Within a morsel, measure reads are pushed down to the chunked column
//! storage: numeric measures go through pre-resolved column indices and
//! typed accessors instead of per-row [`CellValue`] materialisation, and
//! ungrouped all-numeric aggregates run entirely on the vectorised
//! per-chunk kernels of [`crate::kernels`] (one `&[f64]` / `&[i64]` slice
//! pass per chunk, with a validity-mask branch only for chunks that
//! actually contain nulls). The serial reference stays row-at-a-time on
//! purpose — it is the semantic yardstick the fast paths are property-
//! tested against.

use crate::aggregate::Accumulator;
use crate::column::ColumnType;
use crate::cube::{attribute_column, Cube};
use crate::error::OlapError;
use crate::kernels::NumericAgg;
use crate::query::{Query, QueryResult, ResultRow};
use crate::table::Table;
use crate::value::CellValue;
use crate::view::InstanceView;
use sdwp_model::AggregationFunction;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of fact rows per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Tuning knobs of the morsel-parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub workers: usize,
    /// Fact rows per morsel. The morsel size fixes the partial-merge tree,
    /// so two runs with equal `morsel_rows` produce identical results
    /// regardless of `workers`.
    pub morsel_rows: usize,
    /// Capacity (entries) of the query-result cache layered on top by
    /// callers such as `sdwp-core`; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            workers: 0,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            cache_capacity: 256,
        }
    }
}

impl ExecutionConfig {
    /// A configuration that runs everything on the calling thread.
    pub fn serial() -> Self {
        ExecutionConfig {
            workers: 1,
            ..ExecutionConfig::default()
        }
    }

    /// Sets the worker count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the morsel size in fact rows (clamped to at least 1).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Sets the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// The number of worker threads this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// How the morsel executor reads one measure.
struct MeasurePlan {
    /// The measure column's declaration index in the fact table, when it
    /// exists there (resolved once, so the scan loop never does a
    /// name lookup per row).
    column: Option<usize>,
    /// Whether the column is numeric (integer / float / date) and the
    /// aggregation can run on bare numbers — the typed fast path. COUNT
    /// DISTINCT needs the full value and always takes the `CellValue`
    /// path.
    numeric: bool,
}

/// The resolved, validated parts of a query that every scan shares.
struct Resolved<'q> {
    /// `(column name, aggregation)` per requested measure.
    measures: Vec<(String, AggregationFunction)>,
    /// Per-measure read plan for the morsel executor, index-aligned with
    /// `measures`.
    plans: Vec<MeasurePlan>,
    /// Allowed member sets per filtered dimension. A `BTreeMap` so the
    /// per-row check order is deterministic across executions.
    allowed_members: BTreeMap<&'q str, BTreeSet<usize>>,
    /// Whether the whole query can run on the vectorised per-chunk
    /// kernels: no grouping, and every measure on the numeric fast path.
    vectorised: bool,
}

/// Group-by state: group key string → (key cells, accumulators).
type GroupMap = HashMap<String, (Vec<CellValue>, Vec<Accumulator>)>;

/// The partial aggregate of one morsel.
struct MorselPartial {
    groups: GroupMap,
    facts_scanned: usize,
    facts_matched: usize,
}

/// Executes [`Query`]s against a [`Cube`], optionally through an
/// [`InstanceView`] (the personalized selection produced by the
/// `SelectInstance` action).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryEngine {
    config: ExecutionConfig,
}

impl QueryEngine {
    /// Creates a query engine with the default (parallel) configuration.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Creates a query engine with an explicit execution configuration.
    pub fn with_config(config: ExecutionConfig) -> Self {
        QueryEngine { config }
    }

    /// The engine's execution configuration.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Executes a query without any personalization.
    pub fn execute(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a personalized instance view: only fact
    /// rows visible through the view participate in the aggregation.
    ///
    /// Runs the morsel-parallel pipeline described in the module docs.
    /// The result is deterministic: it depends on the cube, query, view
    /// and [`ExecutionConfig::morsel_rows`], but not on the worker count.
    pub fn execute_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        let resolved = resolve(cube, query)?;
        let fact_table = &cube.fact_table(&query.fact)?.table;
        let total_rows = fact_table.len();
        let morsel_rows = self.config.morsel_rows.max(1);
        let morsel_count = total_rows.div_ceil(morsel_rows);
        let workers = self
            .config
            .effective_workers()
            .clamp(1, morsel_count.max(1));

        let next_morsel = AtomicUsize::new(0);
        let scan_morsels = || {
            scan_assigned_morsels(
                cube,
                query,
                view,
                &resolved,
                fact_table,
                &next_morsel,
                morsel_count,
                morsel_rows,
                total_rows,
            )
        };

        let mut partials: Vec<(usize, Result<MorselPartial, OlapError>)> = if workers <= 1 {
            scan_morsels()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(scan_morsels)).collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("morsel worker panicked"))
                    .collect()
            })
        };

        // Merge the partial states in morsel-index order so the combined
        // accumulator state (and the reported error, if any) never depends
        // on worker scheduling.
        partials.sort_by_key(|(morsel, _)| *morsel);
        let mut groups: GroupMap = HashMap::new();
        let mut facts_scanned = 0usize;
        let mut facts_matched = 0usize;
        for (_, partial) in partials {
            let partial = partial?;
            facts_scanned += partial.facts_scanned;
            facts_matched += partial.facts_matched;
            for (key, (cells, accumulators)) in partial.groups {
                match groups.entry(key) {
                    Entry::Vacant(entry) => {
                        entry.insert((cells, accumulators));
                    }
                    Entry::Occupied(mut entry) => {
                        for (merged, partial_acc) in
                            entry.get_mut().1.iter_mut().zip(accumulators.iter())
                        {
                            merged.merge(partial_acc);
                        }
                    }
                }
            }
        }

        Ok(materialise(
            query,
            &resolved,
            groups,
            facts_scanned,
            facts_matched,
        ))
    }

    /// Executes a query serially, without personalization — the
    /// row-at-a-time reference implementation.
    pub fn execute_serial(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_serial_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a view with the classic single-threaded
    /// row-at-a-time loop. This is the reference implementation the
    /// parallel-equivalence property suite compares
    /// [`QueryEngine::execute_with_view`] against.
    pub fn execute_serial_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        let resolved = resolve(cube, query)?;
        let fact_table = &cube.fact_table(&query.fact)?.table;
        let mut key_cache: Vec<HashMap<usize, CellValue>> =
            vec![HashMap::new(); query.group_by.len()];
        let mut groups: GroupMap = HashMap::new();
        let (facts_scanned, facts_matched) = scan_range(
            cube,
            query,
            view,
            &resolved,
            fact_table,
            0..fact_table.len(),
            &mut key_cache,
            &mut groups,
        )?;
        Ok(materialise(
            query,
            &resolved,
            groups,
            facts_scanned,
            facts_matched,
        ))
    }

    /// Convenience: total of a single measure over the (possibly
    /// personalized) cube, with no grouping.
    pub fn total(
        &self,
        cube: &Cube,
        fact: &str,
        measure: &str,
        view: &InstanceView,
    ) -> Result<f64, OlapError> {
        let query = Query::over(fact).measure(measure);
        let result = self.execute_with_view(cube, &query, view)?;
        Ok(result
            .rows
            .first()
            .and_then(|r| r.values.first())
            .and_then(CellValue::as_number)
            .unwrap_or(0.0))
    }
}

/// Validates the query against the cube's schema and pre-computes the
/// allowed member sets of every filtered dimension. Shared by the
/// parallel pipeline and the serial reference so both report identical
/// errors for invalid queries.
fn resolve<'q>(cube: &Cube, query: &'q Query) -> Result<Resolved<'q>, OlapError> {
    let fact_def = cube
        .schema()
        .fact(&query.fact)
        .ok_or_else(|| OlapError::UnknownElement {
            kind: "fact",
            name: query.fact.clone(),
        })?;
    if query.measures.is_empty() {
        return Err(OlapError::InvalidQuery {
            message: "a query needs at least one measure".into(),
        });
    }

    // Resolve measures: (column name, aggregation) plus the executor's
    // read plan. A measure column missing from the fact table (it cannot
    // happen for cubes built through `Cube::new`) keeps `column: None`
    // and falls back to the name-based read, which reports the same
    // error, in the same place, as the serial reference.
    let fact_table = &cube.fact_table(&query.fact)?.table;
    let mut measures: Vec<(String, AggregationFunction)> = Vec::new();
    let mut plans: Vec<MeasurePlan> = Vec::new();
    for m in &query.measures {
        let def = fact_def
            .measure(&m.measure)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "measure",
                name: m.measure.clone(),
            })?;
        let aggregation = m.aggregation.unwrap_or(def.aggregation);
        let column = fact_table.column_index(&def.name);
        let numeric = aggregation != AggregationFunction::CountDistinct
            && column
                .map(|idx| {
                    matches!(
                        fact_table.column_at(idx).column_type(),
                        ColumnType::Integer | ColumnType::Float | ColumnType::Date
                    )
                })
                .unwrap_or(false);
        measures.push((def.name.clone(), aggregation));
        plans.push(MeasurePlan { column, numeric });
    }

    // Validate group-by references and check the dimensions are reachable.
    for key in &query.group_by {
        if !fact_def.references_dimension(&key.dimension) {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "fact '{}' is not analysed by dimension '{}'",
                    fact_def.name, key.dimension
                ),
            });
        }
        let dim =
            cube.schema()
                .dimension(&key.dimension)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "dimension",
                    name: key.dimension.clone(),
                })?;
        let level = dim
            .level(&key.level)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "level",
                name: key.level.clone(),
            })?;
        if level.attribute(&key.attribute).is_none() {
            return Err(OlapError::UnknownElement {
                kind: "attribute",
                name: format!("{}.{}", key.level, key.attribute),
            });
        }
    }

    // Pre-compute allowed member sets for every filtered dimension.
    let mut allowed_members: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for (dimension, filter) in &query.dimension_filters {
        if !fact_def.references_dimension(dimension) {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "filtered dimension '{dimension}' is not referenced by fact '{}'",
                    fact_def.name
                ),
            });
        }
        let table = &cube.dimension_table(dimension)?.table;
        let matching: BTreeSet<usize> = filter.matching_rows(table)?.into_iter().collect();
        match allowed_members.entry(dimension.as_str()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let intersection: BTreeSet<usize> =
                    e.get().intersection(&matching).copied().collect();
                e.insert(intersection);
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(matching);
            }
        }
    }

    let vectorised = query.group_by.is_empty() && plans.iter().all(|p| p.numeric);
    Ok(Resolved {
        measures,
        plans,
        allowed_members,
        vectorised,
    })
}

/// Scans one contiguous row range, accumulating into `groups` — the
/// row-at-a-time **serial reference**: every value goes through
/// [`Table::get`]'s `CellValue` materialisation. The morsel pipeline's
/// typed and vectorised scans ([`scan_morsel`]) must stay observably
/// equivalent to this loop — same groups, same counters, same error for
/// the same first failing row — which the storage-equivalence and
/// parallel-equivalence property suites enforce.
#[allow(clippy::too_many_arguments)]
fn scan_range(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    key_cache: &mut [HashMap<usize, CellValue>],
    groups: &mut GroupMap,
) -> Result<(usize, usize), OlapError> {
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    for fact_row in rows {
        // Retracted rows are invisible to every query (and not counted as
        // scanned). Shared by the serial reference and each parallel
        // morsel, so the two executors stay equivalent mid-ingest by
        // construction.
        if !fact_table.is_live(fact_row) {
            continue;
        }
        if !view.allows_fact_row(cube, &query.fact, fact_row)? {
            continue;
        }
        facts_scanned += 1;

        // Dimension filters.
        let mut passes = true;
        for (dimension, allowed) in &resolved.allowed_members {
            let member = cube.fact_member(&query.fact, fact_row, dimension)?;
            if !allowed.contains(&member) {
                passes = false;
                break;
            }
        }
        if !passes {
            continue;
        }
        // Fact filter.
        if let Some(filter) = &query.fact_filter {
            if !filter.matches(fact_table, fact_row)? {
                continue;
            }
        }
        facts_matched += 1;

        // Build the group key.
        let mut key_cells = Vec::with_capacity(query.group_by.len());
        let mut key_string = String::new();
        for (i, attr) in query.group_by.iter().enumerate() {
            let member = cube.fact_member(&query.fact, fact_row, &attr.dimension)?;
            let cell = match key_cache[i].get(&member) {
                Some(c) => c.clone(),
                None => {
                    let table = &cube.dimension_table(&attr.dimension)?.table;
                    let cell =
                        table.get(member, &attribute_column(&attr.level, &attr.attribute))?;
                    key_cache[i].insert(member, cell.clone());
                    cell
                }
            };
            key_string.push_str(&cell.group_key());
            key_string.push('\u{1f}');
            key_cells.push(cell);
        }

        let entry = groups.entry(key_string).or_insert_with(|| {
            (
                key_cells.clone(),
                resolved
                    .measures
                    .iter()
                    .map(|(_, agg)| Accumulator::new(*agg))
                    .collect(),
            )
        });
        for ((column, _), acc) in resolved.measures.iter().zip(entry.1.iter_mut()) {
            let value = fact_table.get(fact_row, column)?;
            acc.update(&value);
        }
    }
    Ok((facts_scanned, facts_matched))
}

/// One morsel of the parallel pipeline. Dispatches between the
/// vectorised kernel path (no grouping, all measures numeric) and the
/// typed row-at-a-time path; both are equivalent to [`scan_range`] — the
/// serial reference the property suites compare against — by the shared
/// per-row semantics and, for floats, by summing in ascending row order
/// within the morsel.
#[allow(clippy::too_many_arguments)]
fn scan_morsel(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    key_cache: &mut [HashMap<usize, CellValue>],
    groups: &mut GroupMap,
) -> Result<(usize, usize), OlapError> {
    if resolved.vectorised {
        scan_morsel_vectorised(cube, query, view, resolved, fact_table, rows, groups)
    } else {
        scan_range_typed(
            cube, query, view, resolved, fact_table, rows, key_cache, groups,
        )
    }
}

/// One row's selection decision — liveness, view, dimension filters and
/// fact filter, with the scanned/matched counters updated in exactly the
/// serial reference's order. Shared by both morsel scans so their
/// counter and error semantics cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn row_selected(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    fact_row: usize,
    facts_scanned: &mut usize,
    facts_matched: &mut usize,
) -> Result<bool, OlapError> {
    if !fact_table.is_live(fact_row) || !view.allows_fact_row(cube, &query.fact, fact_row)? {
        return Ok(false);
    }
    *facts_scanned += 1;
    for (dimension, allowed) in &resolved.allowed_members {
        let member = cube.fact_member(&query.fact, fact_row, dimension)?;
        if !allowed.contains(&member) {
            return Ok(false);
        }
    }
    if let Some(filter) = &query.fact_filter {
        if !filter.matches(fact_table, fact_row)? {
            return Ok(false);
        }
    }
    *facts_matched += 1;
    Ok(true)
}

/// The typed row-at-a-time morsel scan: identical control flow to
/// [`scan_range`], but measures are read through pre-resolved column
/// indices and fed to the accumulators as bare numbers where the column
/// is numeric — no per-row `CellValue` (or `String`) materialisation on
/// the hot path.
#[allow(clippy::too_many_arguments)]
fn scan_range_typed(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    key_cache: &mut [HashMap<usize, CellValue>],
    groups: &mut GroupMap,
) -> Result<(usize, usize), OlapError> {
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    for fact_row in rows {
        if !row_selected(
            cube,
            query,
            view,
            resolved,
            fact_table,
            fact_row,
            &mut facts_scanned,
            &mut facts_matched,
        )? {
            continue;
        }

        let mut key_cells = Vec::with_capacity(query.group_by.len());
        let mut key_string = String::new();
        for (i, attr) in query.group_by.iter().enumerate() {
            let member = cube.fact_member(&query.fact, fact_row, &attr.dimension)?;
            let cell = match key_cache[i].get(&member) {
                Some(c) => c.clone(),
                None => {
                    let table = &cube.dimension_table(&attr.dimension)?.table;
                    let cell =
                        table.get(member, &attribute_column(&attr.level, &attr.attribute))?;
                    key_cache[i].insert(member, cell.clone());
                    cell
                }
            };
            key_string.push_str(&cell.group_key());
            key_string.push('\u{1f}');
            key_cells.push(cell);
        }

        let entry = groups.entry(key_string).or_insert_with(|| {
            (
                key_cells.clone(),
                resolved
                    .measures
                    .iter()
                    .map(|(_, agg)| Accumulator::new(*agg))
                    .collect(),
            )
        });
        for (i, (plan, acc)) in resolved.plans.iter().zip(entry.1.iter_mut()).enumerate() {
            match plan.column {
                Some(index) if plan.numeric => {
                    if let Some(n) = fact_table.column_at(index).get_number(fact_row) {
                        acc.update_number(n);
                    }
                }
                Some(index) => acc.update(&fact_table.column_at(index).get(fact_row)),
                None => acc.update(&fact_table.get(fact_row, &resolved.measures[i].0)?),
            }
        }
    }
    Ok((facts_scanned, facts_matched))
}

/// Merges each measure column's kernel partial over one run of selected
/// rows.
fn accumulate_run(
    fact_table: &Table,
    resolved: &Resolved<'_>,
    partials: &mut [NumericAgg],
    run: Range<usize>,
) {
    for (plan, partial) in resolved.plans.iter().zip(partials.iter_mut()) {
        let index = plan.column.expect("vectorised plans resolve every column");
        let part = fact_table
            .column_at(index)
            .numeric_agg(run.clone())
            .expect("vectorised plans are numeric");
        partial.merge(&part);
    }
}

/// The vectorised morsel scan for ungrouped all-numeric aggregates: the
/// morsel's selected rows are gathered into maximal contiguous runs and
/// each run is aggregated by the per-chunk slice kernels. When nothing
/// restricts the scan (no view, no filters), tombstone gaps are the only
/// run boundaries and no per-row work happens at all.
fn scan_morsel_vectorised(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    groups: &mut GroupMap,
) -> Result<(usize, usize), OlapError> {
    let mut partials: Vec<NumericAgg> = vec![NumericAgg::default(); resolved.plans.len()];
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;

    let unrestricted = view.is_unrestricted()
        && resolved.allowed_members.is_empty()
        && query.fact_filter.is_none();
    if unrestricted {
        for run in fact_table.live_runs(rows) {
            facts_scanned += run.len();
            facts_matched += run.len();
            accumulate_run(fact_table, resolved, &mut partials, run);
        }
    } else {
        // Per-row selection (the shared `row_selected` mirrors
        // `scan_range`'s check order and error behaviour), gathering
        // selected rows into runs.
        let end = rows.end;
        let mut run_start: Option<usize> = None;
        for fact_row in rows {
            let selected = row_selected(
                cube,
                query,
                view,
                resolved,
                fact_table,
                fact_row,
                &mut facts_scanned,
                &mut facts_matched,
            )?;
            match (selected, run_start) {
                (true, None) => run_start = Some(fact_row),
                (false, Some(start)) => {
                    accumulate_run(fact_table, resolved, &mut partials, start..fact_row);
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            accumulate_run(fact_table, resolved, &mut partials, start..end);
        }
    }

    // Like the reference loop, the single (ungrouped) group exists only
    // when at least one row matched.
    if facts_matched > 0 {
        let accumulators = resolved
            .measures
            .iter()
            .zip(&partials)
            .map(|((_, agg), partial)| {
                let mut acc = Accumulator::new(*agg);
                acc.absorb(partial);
                acc
            })
            .collect();
        groups.insert(String::new(), (Vec::new(), accumulators));
    }
    Ok((facts_scanned, facts_matched))
}

/// The per-worker loop of the parallel pipeline: pulls morsel indices
/// from the shared counter until the table is exhausted, producing one
/// partial aggregate per morsel. A morsel that errors records the error
/// and the worker moves on, so the merge phase can always report the
/// error of the *lowest-indexed* failing morsel — the same error the
/// serial reference reports.
#[allow(clippy::too_many_arguments)]
fn scan_assigned_morsels(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    next_morsel: &AtomicUsize,
    morsel_count: usize,
    morsel_rows: usize,
    total_rows: usize,
) -> Vec<(usize, Result<MorselPartial, OlapError>)> {
    let mut out = Vec::new();
    // Member-row → key-cell cache, shared across this worker's morsels.
    let mut key_cache: Vec<HashMap<usize, CellValue>> = vec![HashMap::new(); query.group_by.len()];
    loop {
        let morsel = next_morsel.fetch_add(1, Ordering::Relaxed);
        if morsel >= morsel_count {
            break;
        }
        let start = morsel * morsel_rows;
        let end = (start + morsel_rows).min(total_rows);
        let mut groups: GroupMap = HashMap::new();
        let scanned = scan_morsel(
            cube,
            query,
            view,
            resolved,
            fact_table,
            start..end,
            &mut key_cache,
            &mut groups,
        );
        out.push((
            morsel,
            scanned.map(|(facts_scanned, facts_matched)| MorselPartial {
                groups,
                facts_scanned,
                facts_matched,
            }),
        ));
    }
    out
}

/// Finalises the merged group state into a sorted, limited result.
fn materialise(
    query: &Query,
    resolved: &Resolved<'_>,
    groups: GroupMap,
    facts_scanned: usize,
    facts_matched: usize,
) -> QueryResult {
    let mut rows: Vec<ResultRow> = groups
        .into_values()
        .map(|(keys, accs)| ResultRow {
            keys,
            values: accs.iter().map(Accumulator::finish).collect(),
        })
        .collect();
    rows.sort_by(|a, b| {
        let ka: Vec<String> = a.keys.iter().map(CellValue::group_key).collect();
        let kb: Vec<String> = b.keys.iter().map(CellValue::group_key).collect();
        ka.cmp(&kb)
    });
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    QueryResult {
        key_names: query.group_by.iter().map(|a| a.label()).collect(),
        value_names: resolved
            .measures
            .iter()
            .map(|(name, agg)| format!("{agg}({name})"))
            .collect(),
        rows,
        facts_scanned,
        facts_matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::query::AttributeRef;
    use sdwp_geometry::Point;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    /// Builds a small sales cube: 4 stores in 2 cities, 3 days, one fact
    /// row per (store, day) with UnitSales = store index + 1.
    fn sales_cube() -> Cube {
        let schema = SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .level(
                        "Day",
                        vec![sdwp_model::Attribute::descriptor(
                            "date",
                            AttributeType::Date,
                        )],
                    )
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure_with("StoreCost", AttributeType::Float, AggregationFunction::Avg)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        let cities = ["Alicante", "Alicante", "Madrid", "Madrid"];
        for (i, city) in cities.iter().enumerate() {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    ("City.name", CellValue::from(*city)),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        for d in 0..3 {
            cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(d))])
                .unwrap();
        }
        for s in 0..4usize {
            for d in 0..3usize {
                cube.add_fact_row(
                    "Sales",
                    vec![("Store", s), ("Time", d)],
                    vec![
                        ("UnitSales", CellValue::Float((s + 1) as f64)),
                        ("StoreCost", CellValue::Float(10.0 * (s + 1) as f64)),
                    ],
                )
                .unwrap();
            }
        }
        cube
    }

    #[test]
    fn rollup_to_city() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        // Alicante: stores 0 and 1 → (1 + 2) * 3 days = 9.
        let alicante = result.find(&[CellValue::from("Alicante")]).unwrap();
        assert_eq!(alicante.values[0], CellValue::Float(9.0));
        // Madrid: stores 2 and 3 → (3 + 4) * 3 = 21.
        let madrid = result.find(&[CellValue::from("Madrid")]).unwrap();
        assert_eq!(madrid.values[0], CellValue::Float(21.0));
        assert_eq!(result.facts_scanned, 12);
        assert_eq!(result.facts_matched, 12);
    }

    #[test]
    fn grand_total_and_avg() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure("UnitSales")
            .measure("StoreCost");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0].values[0], CellValue::Float(30.0));
        // StoreCost uses its default AVG aggregation: mean of 10,20,30,40
        // over 3 days each = 25.
        assert_eq!(result.rows[0].values[1], CellValue::Float(25.0));
        assert_eq!(
            engine
                .total(&cube, "Sales", "UnitSales", &InstanceView::unrestricted())
                .unwrap(),
            30.0
        );
    }

    #[test]
    fn dimension_filter_slice() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "Store", "name"))
            .measure("UnitSales")
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"));
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.facts_matched, 6);
    }

    #[test]
    fn spatial_dimension_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        // Stores within 15 units of the origin: stores 0 (x=0) and 1 (x=10).
        let query = Query::over("Sales").measure("UnitSales").filter_dimension(
            "Store",
            Filter::within_km("Store.geometry", Point::new(0.0, 0.0).into(), 15.0),
        );
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
    }

    #[test]
    fn view_restriction_is_equivalent_to_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let via_view = engine.execute_with_view(&cube, &query, &view).unwrap();
        let via_filter = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Store", Filter::eq("City.name", "Alicante")),
            )
            .unwrap();
        assert_eq!(via_view.rows[0].values[0], via_filter.rows[0].values[0]);
        // The view reduces the number of facts even scanned.
        assert_eq!(via_view.facts_scanned, 6);
        assert_eq!(via_filter.facts_scanned, 12);
    }

    #[test]
    fn fact_filter_on_measures() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure_agg("UnitSales", AggregationFunction::Count)
            .filter_fact(Filter::Attribute {
                column: "UnitSales".into(),
                op: crate::filter::CompareOp::Ge,
                value: CellValue::Float(3.0),
            });
        let result = engine.execute(&cube, &query).unwrap();
        // Stores 2 and 3 have UnitSales 3 and 4, over 3 days each.
        assert_eq!(result.rows[0].values[0], CellValue::Integer(6));
    }

    #[test]
    fn multi_key_grouping_and_limit() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .group_by(AttributeRef::new("Time", "Day", "date"))
            .measure("UnitSales");
        let full = engine.execute(&cube, &query).unwrap();
        assert_eq!(full.len(), 6); // 2 cities x 3 days
        let limited = engine.execute(&cube, &query.clone().limit(4)).unwrap();
        assert_eq!(limited.len(), 4);
    }

    #[test]
    fn error_cases() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        assert!(engine
            .execute(&cube, &Query::over("Returns").measure("UnitSales"))
            .is_err());
        assert!(engine.execute(&cube, &Query::over("Sales")).is_err());
        assert!(engine
            .execute(&cube, &Query::over("Sales").measure("Profit"))
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Customer", "Customer", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Store", "Country", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Customer", Filter::All)
            )
            .is_err());
    }

    #[test]
    fn parallel_matches_serial_on_the_sales_cube() {
        let cube = sales_cube();
        let serial = QueryEngine::with_config(ExecutionConfig::serial());
        let queries = [
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .measure("UnitSales")
                .measure("StoreCost"),
            Query::over("Sales")
                .measure_agg("UnitSales", AggregationFunction::CountDistinct)
                .measure_agg("StoreCost", AggregationFunction::Min),
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "Store", "name"))
                .group_by(AttributeRef::new("Time", "Day", "date"))
                .measure("UnitSales")
                .limit(5),
        ];
        for workers in [1usize, 2, 8] {
            let parallel = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(workers)
                    .with_morsel_rows(4),
            );
            for query in &queries {
                assert_eq!(
                    parallel.execute(&cube, query).unwrap(),
                    serial.execute_serial(&cube, query).unwrap(),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_preserves_view_restrictions() {
        let cube = sales_cube();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let result = engine.execute_with_view(&cube, &query, &view).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
        assert_eq!(result.facts_scanned, 6);
        assert_eq!(
            result,
            engine
                .execute_serial_with_view(&cube, &query, &view)
                .unwrap()
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let cube = sales_cube();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales")
            .measure_agg("StoreCost", AggregationFunction::Avg);
        let reference = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(1)
                .with_morsel_rows(3),
        )
        .execute(&cube, &query)
        .unwrap();
        for workers in [2usize, 3, 8] {
            let result = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(workers)
                    .with_morsel_rows(3),
            )
            .execute(&cube, &query)
            .unwrap();
            assert_eq!(result, reference, "workers={workers}");
        }
    }

    #[test]
    fn retracted_rows_are_invisible_to_both_executors() {
        let mut cube = sales_cube();
        // Retract all three rows of store 0 and one row of store 2.
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.retract_fact_row("Sales", 1).unwrap();
        cube.retract_fact_row("Sales", 2).unwrap();
        cube.retract_fact_row("Sales", 6).unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let result = parallel.execute(&cube, &query).unwrap();
        // Alicante keeps only store 1 (2.0 × 3 days); Madrid loses one
        // store-2 row (3+4)*3 - 3 = 18.
        assert_eq!(
            result.find(&[CellValue::from("Alicante")]).unwrap().values[0],
            CellValue::Float(6.0)
        );
        assert_eq!(
            result.find(&[CellValue::from("Madrid")]).unwrap().values[0],
            CellValue::Float(18.0)
        );
        assert_eq!(result.facts_scanned, 8);
        assert_eq!(
            result,
            QueryEngine::with_config(ExecutionConfig::serial())
                .execute_serial(&cube, &query)
                .unwrap()
        );
    }

    #[test]
    fn parallel_reports_serial_errors() {
        let cube = sales_cube();
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(8)
                .with_morsel_rows(1),
        );
        let serial = QueryEngine::with_config(ExecutionConfig::serial());
        let bad_queries = [
            Query::over("Returns").measure("UnitSales"),
            Query::over("Sales"),
            Query::over("Sales").measure("Profit"),
            Query::over("Sales")
                .measure("UnitSales")
                .filter_fact(Filter::eq("ghost", "x")),
        ];
        for query in &bad_queries {
            let a = parallel.execute(&cube, query).unwrap_err();
            let b = serial.execute_serial(&cube, query).unwrap_err();
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }

    #[test]
    fn execution_config_resolution() {
        assert_eq!(ExecutionConfig::serial().effective_workers(), 1);
        assert_eq!(ExecutionConfig::default().with_workers(3).workers, 3);
        assert_eq!(
            ExecutionConfig::default().with_morsel_rows(0).morsel_rows,
            1
        );
        assert!(ExecutionConfig::default().effective_workers() >= 1);
        assert_eq!(
            ExecutionConfig::default()
                .with_cache_capacity(7)
                .cache_capacity,
            7
        );
        let engine = QueryEngine::with_config(ExecutionConfig::serial());
        assert_eq!(engine.config().workers, 1);
    }

    #[test]
    fn empty_cube_returns_empty_result() {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap();
        let cube = Cube::new(schema);
        let engine = QueryEngine::new();
        let result = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .group_by(AttributeRef::new("Store", "Store", "name"))
                    .measure("UnitSales"),
            )
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.facts_scanned, 0);
    }
}
