//! The query engine: morsel-parallel group-by aggregation through
//! personalized views.
//!
//! # Execution model
//!
//! Execution is a two-phase *morsel* pipeline in the style of
//! morsel-driven parallelism: the fact table is split into fixed-size row
//! chunks ("morsels"); scoped worker threads pull morsel indices from a
//! shared atomic counter and run filter + partial aggregation per morsel
//! into a private hash table; the partial [`Accumulator`] states are then
//! merged **in morsel-index order** and finalised once.
//!
//! Because morsel boundaries and the merge order depend only on
//! [`ExecutionConfig::morsel_rows`] — never on the worker count or on
//! which worker processed which morsel — the result (including every
//! floating-point partial sum) is bit-for-bit identical whether the
//! pipeline runs on 1 or N workers. [`QueryEngine::execute_serial_with_view`]
//! keeps the classic row-at-a-time loop as the reference implementation
//! the equivalence property suite compares against.
//!
//! Within a morsel, measure reads are pushed down to the chunked column
//! storage: numeric measures go through pre-resolved column indices and
//! typed accessors instead of per-row [`CellValue`] materialisation, and
//! ungrouped all-numeric aggregates run entirely on the vectorised
//! per-chunk kernels of [`crate::kernels`] (one `&[f64]` / `&[i64]` slice
//! pass per chunk, with a validity-mask branch only for chunks that
//! actually contain nulls). The serial reference stays row-at-a-time on
//! purpose — it is the semantic yardstick the fast paths are property-
//! tested against.
//!
//! # Grouped execution: dense ids and selection vectors
//!
//! Grouped queries never touch a string key or clone a key `CellValue`
//! per row on the parallel path. Query resolution walks each group-by
//! attribute's dimension table **once** and builds a dictionary
//! `member id → dense key id` (distinct attribute values get consecutive
//! `u32` ids; the key `CellValue`s live only in the dictionary), so the
//! per-row cost of key building collapses to one array index. Composite
//! keys pack the per-attribute dense ids into a single mixed-radix
//! integer.
//!
//! Per morsel the grouped scan first materialises a **selection vector**
//! (the surviving row indices after liveness, view and filter checks),
//! batch-resolves the foreign-key columns through typed chunk slices
//! ([`crate::Column::gather_members`]) into a parallel slot vector, and
//! then accumulates one measure at a time: when the product of the
//! dictionary sizes stays under [`ExecutionConfig::group_slot_limit`],
//! measures are gathered into compacted `(values, slots)` pairs and fed
//! through the grouped slice kernels of [`crate::kernels`] into flat
//! per-slot vectors ([`crate::aggregate::SlotAccumulator`]); above the
//! limit (or when a measure needs full values, e.g. COUNT DISTINCT) the
//! morsel falls back to an **integer-keyed** hash table. Dense ids are
//! resolved back to `CellValue`s only once, at finalisation.

use crate::aggregate::{Accumulator, SlotAccumulator};
use crate::column::{Column, ColumnType};
use crate::cube::{attribute_column, fk_column, Cube};
use crate::error::OlapError;
use crate::kernels::NumericAgg;
use crate::query::{Query, QueryResult, ResultRow};
use crate::table::Table;
use crate::value::CellValue;
use crate::view::InstanceView;
use sdwp_model::AggregationFunction;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of fact rows per morsel.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Default cap on the product of group-key dictionary sizes under which
/// the grouped executor uses flat per-slot vectors instead of a hash
/// table (64 Ki slots ≈ a few hundred KiB of slot state per worker).
pub const DEFAULT_GROUP_SLOT_LIMIT: usize = 1 << 16;

/// Tuning knobs of the morsel-parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub workers: usize,
    /// Fact rows per morsel. The morsel size fixes the partial-merge tree,
    /// so two runs with equal `morsel_rows` produce identical results
    /// regardless of `workers`.
    pub morsel_rows: usize,
    /// Capacity (entries) of the query-result cache layered on top by
    /// callers such as `sdwp-core`; `0` disables caching.
    pub cache_capacity: usize,
    /// Cap on the total group cardinality (product of the per-attribute
    /// key-dictionary sizes) under which grouped aggregation runs on flat
    /// per-slot vectors; above it, morsels fall back to an integer-keyed
    /// hash table. `0` disables the flat path entirely.
    pub group_slot_limit: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            workers: 0,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            cache_capacity: 256,
            group_slot_limit: DEFAULT_GROUP_SLOT_LIMIT,
        }
    }
}

impl ExecutionConfig {
    /// A configuration that runs everything on the calling thread.
    pub fn serial() -> Self {
        ExecutionConfig {
            workers: 1,
            ..ExecutionConfig::default()
        }
    }

    /// Sets the worker count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the morsel size in fact rows (clamped to at least 1).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Sets the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the flat-slot cardinality cap of the grouped executor (`0`
    /// forces the integer-keyed hash fallback for every grouped query).
    pub fn with_group_slot_limit(mut self, group_slot_limit: usize) -> Self {
        self.group_slot_limit = group_slot_limit;
        self
    }

    /// The number of worker threads this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// How the morsel executor reads one measure.
struct MeasurePlan {
    /// The measure column's declaration index in the fact table, when it
    /// exists there (resolved once, so the scan loop never does a
    /// name lookup per row).
    column: Option<usize>,
    /// Whether the column is numeric (integer / float / date) and the
    /// aggregation can run on bare numbers — the typed fast path. COUNT
    /// DISTINCT needs the full value and always takes the `CellValue`
    /// path.
    numeric: bool,
}

/// The resolved, validated parts of a query that every scan shares.
struct Resolved<'q> {
    /// `(column name, aggregation)` per requested measure.
    measures: Vec<(String, AggregationFunction)>,
    /// Per-measure read plan for the morsel executor, index-aligned with
    /// `measures`.
    plans: Vec<MeasurePlan>,
    /// Allowed member sets per filtered dimension, each with the
    /// pre-resolved index of the fact table's FK column (`None` falls
    /// back to the name-based read, which reports the serial reference's
    /// error). A `BTreeMap` so the per-row check order is deterministic
    /// across executions.
    allowed_members: BTreeMap<&'q str, (Option<usize>, BTreeSet<usize>)>,
    /// Whether the whole query can run on the vectorised per-chunk
    /// kernels: no grouping, and every measure on the numeric fast path.
    vectorised: bool,
}

/// Group-by state of the **serial reference**: group key string →
/// (key cells, accumulators). The parallel path never builds these
/// strings; it keys by dense integer ids ([`GroupId`]).
type GroupMap = HashMap<String, (Vec<CellValue>, Vec<Accumulator>)>;

/// One group-by attribute pre-resolved for the parallel path: the
/// dimension walked once into a dense dictionary, so per-row key building
/// is a single `u32` array index — no `HashMap` probe, no `CellValue`
/// clone, no string append.
struct GroupKeyDict {
    /// Index of the fact table's FK column for the attribute's dimension
    /// (`None` falls back to the name-based `fact_member` read).
    fk_column: Option<usize>,
    /// Member row id → dense key id. Members sharing an attribute value
    /// (the serial reference collapses them by `CellValue::group_key`)
    /// share a dense id.
    member_to_key: Vec<u32>,
    /// Dense key id → the key `CellValue`, resolved once here and read
    /// back only at finalisation. Entry 0 is reserved for `Null`, which
    /// is also what the serial reference reads for an out-of-range
    /// member.
    key_values: Vec<CellValue>,
}

/// Dense id every [`GroupKeyDict`] reserves for the `Null` key value.
const NULL_KEY: u32 = 0;

/// The grouped execution plan of one parallel query: per-attribute
/// dictionaries plus the flat-vs-hashed path decision.
struct GroupPlan {
    /// Dictionaries in `query.group_by` order. Shorter than the query's
    /// group-by list only when a build error occurred (see `error`).
    dicts: Vec<GroupKeyDict>,
    /// A dictionary build error, replayed with the serial reference's
    /// per-row semantics: the scan reports it at the first row that
    /// passes selection and reaches the failing attribute — so a query
    /// that matches no rows succeeds exactly where the serial loop does.
    error: Option<(usize, OlapError)>,
    /// Product of the dictionary sizes — the mixed-radix range of a
    /// packed group id. `None` when it overflows `u128` (keys fall back
    /// to [`GroupId::Wide`]).
    cardinality: Option<u128>,
    /// `Some(total slots)` when the morsels accumulate into flat per-slot
    /// vectors (cardinality under the configured limit, every measure
    /// numeric); `None` uses the integer-keyed hash fallback.
    flat: Option<usize>,
}

impl GroupPlan {
    /// An empty plan for ungrouped queries.
    fn ungrouped() -> Self {
        GroupPlan {
            dicts: Vec::new(),
            error: None,
            cardinality: Some(1),
            flat: None,
        }
    }

    /// Resolves a group id back to its key `CellValue`s — the only point
    /// where the parallel path materialises key cells, once per surviving
    /// group at finalisation.
    fn decode(&self, id: &GroupId) -> Vec<CellValue> {
        match id {
            GroupId::Packed(value) => {
                let mut value = *value;
                let mut cells = vec![CellValue::Null; self.dicts.len()];
                for (cell, dict) in cells.iter_mut().zip(&self.dicts).rev() {
                    let radix = dict.key_values.len() as u128;
                    *cell = dict.key_values[(value % radix) as usize].clone();
                    value /= radix;
                }
                cells
            }
            GroupId::Wide(ids) => ids
                .iter()
                .zip(&self.dicts)
                .map(|(&dense, dict)| dict.key_values[dense as usize].clone())
                .collect(),
        }
    }
}

/// A group key on the parallel path: per-attribute dense ids packed into
/// one mixed-radix integer, or the raw dense-id tuple when the packed
/// range would overflow `u128` (astronomical cardinalities only). Never a
/// string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupId {
    Packed(u128),
    Wide(Box<[u32]>),
}

/// The group state of one morsel's partial aggregate. Key cells are
/// never materialised here — the merge phase works entirely on integers
/// and decodes the surviving groups once at finalisation.
enum MorselGroups {
    /// Integer group ids → accumulator states, in first-occurrence order
    /// (the vectorised-ungrouped and hashed paths).
    Keyed(Vec<(GroupId, Vec<Accumulator>)>),
    /// The flat dense-slot path: the touched slots in first-occurrence
    /// order plus, per measure, the slots' kernel partials (parallel to
    /// `touched`). Merging is a slot-indexed [`NumericAgg::merge`] into
    /// flat totals — no hashing, no per-group allocation.
    Flat {
        touched: Vec<u32>,
        partials: Vec<Vec<NumericAgg>>,
    },
}

/// The partial aggregate of one morsel.
struct MorselPartial {
    groups: MorselGroups,
    facts_scanned: usize,
    facts_matched: usize,
}

/// Executes [`Query`]s against a [`Cube`], optionally through an
/// [`InstanceView`] (the personalized selection produced by the
/// `SelectInstance` action).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryEngine {
    config: ExecutionConfig,
}

impl QueryEngine {
    /// Creates a query engine with the default (parallel) configuration.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// Creates a query engine with an explicit execution configuration.
    pub fn with_config(config: ExecutionConfig) -> Self {
        QueryEngine { config }
    }

    /// The engine's execution configuration.
    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Executes a query without any personalization.
    pub fn execute(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a personalized instance view: only fact
    /// rows visible through the view participate in the aggregation.
    ///
    /// Runs the morsel-parallel pipeline described in the module docs.
    /// The result is deterministic: it depends on the cube, query, view
    /// and [`ExecutionConfig::morsel_rows`], but not on the worker count.
    pub fn execute_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        let resolved = resolve(cube, query)?;
        let fact_table = &cube.fact_table(&query.fact)?.table;
        let plan = if query.group_by.is_empty() {
            GroupPlan::ungrouped()
        } else {
            build_group_plan(
                cube,
                query,
                fact_table,
                &resolved,
                self.config.group_slot_limit,
            )
        };
        let total_rows = fact_table.len();
        let morsel_rows = self.config.morsel_rows.max(1);
        let morsel_count = total_rows.div_ceil(morsel_rows);
        let workers = self
            .config
            .effective_workers()
            .clamp(1, morsel_count.max(1));

        let next_morsel = AtomicUsize::new(0);
        let scan_morsels = || {
            scan_assigned_morsels(
                cube,
                query,
                view,
                &resolved,
                &plan,
                fact_table,
                &next_morsel,
                morsel_count,
                morsel_rows,
                total_rows,
            )
        };

        let mut partials: Vec<(usize, Result<MorselPartial, OlapError>)> = if workers <= 1 {
            scan_morsels()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(scan_morsels)).collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("morsel worker panicked"))
                    .collect()
            })
        };

        // Merge the partial states in morsel-index order so the combined
        // accumulator state (and the reported error, if any) never depends
        // on worker scheduling. The merge works entirely on integer group
        // ids — slot-indexed into flat totals on the dense path, an
        // integer-keyed map otherwise; key cells are only decoded for the
        // groups that survive.
        partials.sort_by_key(|(morsel, _)| *morsel);
        let mut facts_scanned = 0usize;
        let mut facts_matched = 0usize;
        let rows: Vec<(Vec<CellValue>, Vec<Accumulator>)> = if let Some(slots) = plan.flat {
            let mut seen = vec![false; slots];
            let mut totals: Vec<Vec<NumericAgg>> = resolved
                .measures
                .iter()
                .map(|_| vec![NumericAgg::default(); slots])
                .collect();
            for (_, partial) in partials {
                let partial = partial?;
                facts_scanned += partial.facts_scanned;
                facts_matched += partial.facts_matched;
                let MorselGroups::Flat { touched, partials } = partial.groups else {
                    unreachable!("flat plans produce flat partials");
                };
                for (index, &slot) in touched.iter().enumerate() {
                    seen[slot as usize] = true;
                    for (total, partial) in totals.iter_mut().zip(&partials) {
                        total[slot as usize].merge(&partial[index]);
                    }
                }
            }
            (0..slots)
                .filter(|&slot| seen[slot])
                .map(|slot| {
                    let accumulators = resolved
                        .measures
                        .iter()
                        .zip(&totals)
                        .map(|((_, agg), total)| {
                            let mut acc = Accumulator::new(*agg);
                            acc.absorb(&total[slot]);
                            acc
                        })
                        .collect();
                    (plan.decode(&GroupId::Packed(slot as u128)), accumulators)
                })
                .collect()
        } else {
            let mut groups: HashMap<GroupId, Vec<Accumulator>> = HashMap::new();
            for (_, partial) in partials {
                let partial = partial?;
                facts_scanned += partial.facts_scanned;
                facts_matched += partial.facts_matched;
                let MorselGroups::Keyed(keyed) = partial.groups else {
                    unreachable!("non-flat plans produce keyed partials");
                };
                for (key, accumulators) in keyed {
                    match groups.entry(key) {
                        Entry::Vacant(entry) => {
                            entry.insert(accumulators);
                        }
                        Entry::Occupied(mut entry) => {
                            for (merged, partial_acc) in
                                entry.get_mut().iter_mut().zip(accumulators.iter())
                            {
                                merged.merge(partial_acc);
                            }
                        }
                    }
                }
            }
            groups
                .into_iter()
                .map(|(id, accumulators)| (plan.decode(&id), accumulators))
                .collect()
        };
        Ok(materialise(
            query,
            &resolved,
            rows,
            facts_scanned,
            facts_matched,
        ))
    }

    /// Executes a query serially, without personalization — the
    /// row-at-a-time reference implementation.
    pub fn execute_serial(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_serial_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a view with the classic single-threaded
    /// row-at-a-time loop. This is the reference implementation the
    /// parallel-equivalence property suite compares
    /// [`QueryEngine::execute_with_view`] against.
    pub fn execute_serial_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        let resolved = resolve(cube, query)?;
        let fact_table = &cube.fact_table(&query.fact)?.table;
        let mut key_cache: Vec<HashMap<usize, CellValue>> =
            vec![HashMap::new(); query.group_by.len()];
        let mut groups: GroupMap = HashMap::new();
        let (facts_scanned, facts_matched) = scan_range(
            cube,
            query,
            view,
            &resolved,
            fact_table,
            0..fact_table.len(),
            &mut key_cache,
            &mut groups,
        )?;
        let rows = groups.into_values().collect();
        Ok(materialise(
            query,
            &resolved,
            rows,
            facts_scanned,
            facts_matched,
        ))
    }

    /// Convenience: total of a single measure over the (possibly
    /// personalized) cube, with no grouping.
    pub fn total(
        &self,
        cube: &Cube,
        fact: &str,
        measure: &str,
        view: &InstanceView,
    ) -> Result<f64, OlapError> {
        let query = Query::over(fact).measure(measure);
        let result = self.execute_with_view(cube, &query, view)?;
        Ok(result
            .rows
            .first()
            .and_then(|r| r.values.first())
            .and_then(CellValue::as_number)
            .unwrap_or(0.0))
    }
}

/// Validates the query against the cube's schema and pre-computes the
/// allowed member sets of every filtered dimension. Shared by the
/// parallel pipeline and the serial reference so both report identical
/// errors for invalid queries.
fn resolve<'q>(cube: &Cube, query: &'q Query) -> Result<Resolved<'q>, OlapError> {
    let fact_def = cube
        .schema()
        .fact(&query.fact)
        .ok_or_else(|| OlapError::UnknownElement {
            kind: "fact",
            name: query.fact.clone(),
        })?;
    if query.measures.is_empty() {
        return Err(OlapError::InvalidQuery {
            message: "a query needs at least one measure".into(),
        });
    }

    // Resolve measures: (column name, aggregation) plus the executor's
    // read plan. A measure column missing from the fact table (it cannot
    // happen for cubes built through `Cube::new`) keeps `column: None`
    // and falls back to the name-based read, which reports the same
    // error, in the same place, as the serial reference.
    let fact_table = &cube.fact_table(&query.fact)?.table;
    let mut measures: Vec<(String, AggregationFunction)> = Vec::new();
    let mut plans: Vec<MeasurePlan> = Vec::new();
    for m in &query.measures {
        let def = fact_def
            .measure(&m.measure)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "measure",
                name: m.measure.clone(),
            })?;
        let aggregation = m.aggregation.unwrap_or(def.aggregation);
        let column = fact_table.column_index(&def.name);
        let numeric = aggregation != AggregationFunction::CountDistinct
            && column
                .map(|idx| {
                    matches!(
                        fact_table.column_at(idx).column_type(),
                        ColumnType::Integer | ColumnType::Float | ColumnType::Date
                    )
                })
                .unwrap_or(false);
        measures.push((def.name.clone(), aggregation));
        plans.push(MeasurePlan { column, numeric });
    }

    // Validate group-by references and check the dimensions are reachable.
    for key in &query.group_by {
        if !fact_def.references_dimension(&key.dimension) {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "fact '{}' is not analysed by dimension '{}'",
                    fact_def.name, key.dimension
                ),
            });
        }
        let dim =
            cube.schema()
                .dimension(&key.dimension)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "dimension",
                    name: key.dimension.clone(),
                })?;
        let level = dim
            .level(&key.level)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "level",
                name: key.level.clone(),
            })?;
        if level.attribute(&key.attribute).is_none() {
            return Err(OlapError::UnknownElement {
                kind: "attribute",
                name: format!("{}.{}", key.level, key.attribute),
            });
        }
    }

    // Pre-compute allowed member sets for every filtered dimension, with
    // the FK column index pre-resolved for the parallel path's typed
    // reads.
    let mut allowed_members: BTreeMap<&str, (Option<usize>, BTreeSet<usize>)> = BTreeMap::new();
    for (dimension, filter) in &query.dimension_filters {
        if !fact_def.references_dimension(dimension) {
            return Err(OlapError::InvalidQuery {
                message: format!(
                    "filtered dimension '{dimension}' is not referenced by fact '{}'",
                    fact_def.name
                ),
            });
        }
        let table = &cube.dimension_table(dimension)?.table;
        let matching: BTreeSet<usize> = filter.matching_rows(table)?.into_iter().collect();
        match allowed_members.entry(dimension.as_str()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let intersection: BTreeSet<usize> =
                    e.get().1.intersection(&matching).copied().collect();
                e.get_mut().1 = intersection;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((fact_table.column_index(&fk_column(dimension)), matching));
            }
        }
    }

    let vectorised = query.group_by.is_empty() && plans.iter().all(|p| p.numeric);
    Ok(Resolved {
        measures,
        plans,
        allowed_members,
        vectorised,
    })
}

/// Builds the grouped execution plan: one dense dictionary per group-by
/// attribute (the dimension table walked once per query) plus the
/// flat-vs-hashed decision. Never fails — a dictionary that cannot be
/// built (a schema attribute with no backing column, impossible for cubes
/// loaded through [`Cube`]'s constructors) is recorded and replayed with
/// the serial reference's per-row error semantics.
fn build_group_plan(
    cube: &Cube,
    query: &Query,
    fact_table: &Table,
    resolved: &Resolved<'_>,
    group_slot_limit: usize,
) -> GroupPlan {
    let mut dicts = Vec::with_capacity(query.group_by.len());
    let mut error = None;
    for (index, attr) in query.group_by.iter().enumerate() {
        match build_group_dict(cube, fact_table, attr) {
            Ok(dict) => dicts.push(dict),
            Err(e) => {
                error = Some((index, e));
                break;
            }
        }
    }
    let cardinality = dicts.iter().try_fold(1u128, |product, dict| {
        product.checked_mul(dict.key_values.len() as u128)
    });
    let flat = match (&error, cardinality) {
        (None, Some(slots))
            if resolved.plans.iter().all(|p| p.numeric)
                && slots <= group_slot_limit.min(u32::MAX as usize) as u128 =>
        {
            Some(slots as usize)
        }
        _ => None,
    };
    GroupPlan {
        dicts,
        error,
        cardinality,
        flat,
    }
}

/// Walks one group-by attribute's dimension table into a dense
/// dictionary. Members sharing a key value (by `CellValue::group_key`,
/// the serial reference's grouping identity) share a dense id; id 0 is
/// reserved for `Null`.
fn build_group_dict(
    cube: &Cube,
    fact_table: &Table,
    attr: &crate::query::AttributeRef,
) -> Result<GroupKeyDict, OlapError> {
    let fk_col = fact_table.column_index(&fk_column(&attr.dimension));
    let table = &cube.dimension_table(&attr.dimension)?.table;
    let column = table.column(&attribute_column(&attr.level, &attr.attribute))?;
    // Text attributes are already dictionary-encoded in storage, and the
    // interner guarantees distinct codes ↔ distinct strings — exactly the
    // grouping identity `group_key` provides — so the dense dictionary is
    // the storage dictionary shifted by the reserved null id, with no
    // per-member string materialisation at all.
    if let Column::Text { codes, dictionary } = column {
        let mut key_values = Vec::with_capacity(dictionary.len() + 1);
        key_values.push(CellValue::Null);
        for code in 0..dictionary.len() as u32 {
            let text = dictionary.resolve(code).expect("codes are dense");
            key_values.push(CellValue::Text(text.to_string()));
        }
        let member_to_key = (0..table.len())
            .map(|member| codes.get(member).map_or(NULL_KEY, |code| code + 1))
            .collect();
        return Ok(GroupKeyDict {
            fk_column: fk_col,
            member_to_key,
            key_values,
        });
    }
    let mut key_values = vec![CellValue::Null];
    let mut interned: HashMap<String, u32> = HashMap::new();
    interned.insert(CellValue::Null.group_key(), NULL_KEY);
    let mut member_to_key = Vec::with_capacity(table.len());
    for member in 0..table.len() {
        let cell = column.get(member);
        let dense = match interned.entry(cell.group_key()) {
            Entry::Occupied(entry) => *entry.get(),
            Entry::Vacant(entry) => {
                let dense = key_values.len() as u32;
                key_values.push(cell);
                entry.insert(dense);
                dense
            }
        };
        member_to_key.push(dense);
    }
    Ok(GroupKeyDict {
        fk_column: fk_col,
        member_to_key,
        key_values,
    })
}

/// Scans one contiguous row range, accumulating into `groups` — the
/// row-at-a-time **serial reference**: every value goes through
/// [`Table::get`]'s `CellValue` materialisation. The morsel pipeline's
/// typed and vectorised scans ([`scan_morsel`]) must stay observably
/// equivalent to this loop — same groups, same counters, same error for
/// the same first failing row — which the storage-equivalence and
/// parallel-equivalence property suites enforce.
#[allow(clippy::too_many_arguments)]
fn scan_range(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    key_cache: &mut [HashMap<usize, CellValue>],
    groups: &mut GroupMap,
) -> Result<(usize, usize), OlapError> {
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    for fact_row in rows {
        // Retracted rows are invisible to every query (and not counted as
        // scanned). Shared by the serial reference and each parallel
        // morsel, so the two executors stay equivalent mid-ingest by
        // construction.
        if !fact_table.is_live(fact_row) {
            continue;
        }
        if !view.allows_fact_row(cube, &query.fact, fact_row)? {
            continue;
        }
        facts_scanned += 1;

        // Dimension filters (the classic name-based member read — the
        // reference the typed parallel path is measured against).
        let mut passes = true;
        for (dimension, (_, allowed)) in &resolved.allowed_members {
            let member = cube.fact_member(&query.fact, fact_row, dimension)?;
            if !allowed.contains(&member) {
                passes = false;
                break;
            }
        }
        if !passes {
            continue;
        }
        // Fact filter.
        if let Some(filter) = &query.fact_filter {
            if !filter.matches(fact_table, fact_row)? {
                continue;
            }
        }
        facts_matched += 1;

        // Build the group key.
        let mut key_cells = Vec::with_capacity(query.group_by.len());
        let mut key_string = String::new();
        for (i, attr) in query.group_by.iter().enumerate() {
            let member = cube.fact_member(&query.fact, fact_row, &attr.dimension)?;
            let cell = match key_cache[i].get(&member) {
                Some(c) => c.clone(),
                None => {
                    let table = &cube.dimension_table(&attr.dimension)?.table;
                    let cell =
                        table.get(member, &attribute_column(&attr.level, &attr.attribute))?;
                    key_cache[i].insert(member, cell.clone());
                    cell
                }
            };
            // Length-prefix each attribute's key so the concatenation is
            // injective even when a text key itself contains the
            // separator — keeping the serial reference's grouping
            // identical to the dense-id parallel path, which keys each
            // attribute independently.
            let key = cell.group_key();
            key_string.push_str(&key.len().to_string());
            key_string.push('\u{1f}');
            key_string.push_str(&key);
            key_cells.push(cell);
        }

        let entry = groups.entry(key_string).or_insert_with(|| {
            (
                key_cells.clone(),
                resolved
                    .measures
                    .iter()
                    .map(|(_, agg)| Accumulator::new(*agg))
                    .collect(),
            )
        });
        for ((column, _), acc) in resolved.measures.iter().zip(entry.1.iter_mut()) {
            let value = fact_table.get(fact_row, column)?;
            acc.update(&value);
        }
    }
    Ok((facts_scanned, facts_matched))
}

/// One morsel of the parallel pipeline. Dispatches between the
/// vectorised kernel path (no grouping, all measures numeric), the flat
/// dense-slot grouped path, and the integer-keyed hashed path; all are
/// equivalent to [`scan_range`] — the serial reference the property
/// suites compare against — by the shared per-row selection semantics
/// and, for floats, by summing in ascending row order within the morsel.
#[allow(clippy::too_many_arguments)]
fn scan_morsel(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    rows: Range<usize>,
    scratch: &mut Option<FlatScratch>,
) -> Result<MorselPartial, OlapError> {
    if resolved.vectorised {
        let mut groups = Vec::new();
        let (facts_scanned, facts_matched) =
            scan_morsel_vectorised(cube, query, view, resolved, fact_table, rows, &mut groups)?;
        Ok(MorselPartial {
            groups: MorselGroups::Keyed(groups),
            facts_scanned,
            facts_matched,
        })
    } else if let Some(scratch) = scratch {
        scan_morsel_flat(cube, query, view, resolved, plan, fact_table, rows, scratch)
    } else {
        let mut groups = Vec::new();
        let (facts_scanned, facts_matched) = scan_morsel_hashed(
            cube,
            query,
            view,
            resolved,
            plan,
            fact_table,
            rows,
            &mut groups,
        )?;
        Ok(MorselPartial {
            groups: MorselGroups::Keyed(groups),
            facts_scanned,
            facts_matched,
        })
    }
}

/// A single-row typed FK read: the member id a fact row points to,
/// through a pre-resolved column index. Value-for-value identical to
/// [`Cube::fact_member`] (float round trip, clamping, error wording)
/// without the name lookup or the `CellValue` materialisation.
fn member_at(column: &Column, fact_row: usize) -> Result<usize, OlapError> {
    match column.get_number(fact_row) {
        Some(member) => Ok(member as usize),
        None => Err(OlapError::TypeMismatch {
            expected: "integer foreign key",
            found: column.get(fact_row).type_name().to_string(),
        }),
    }
}

/// One row's selection decision — liveness, view, dimension filters and
/// fact filter, with the scanned/matched counters updated in exactly the
/// serial reference's order. Shared by every morsel scan so their
/// counter and error semantics cannot drift apart. Dimension filters go
/// through pre-resolved FK column indices (typed reads) where available.
#[allow(clippy::too_many_arguments)]
fn row_selected(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    fact_row: usize,
    facts_scanned: &mut usize,
    facts_matched: &mut usize,
) -> Result<bool, OlapError> {
    if !fact_table.is_live(fact_row) {
        return Ok(false);
    }
    // An unrestricted view admits every live row (resolution already
    // validated the fact), so skip the per-row selection/FK walk.
    if !view.is_unrestricted() && !view.allows_fact_row(cube, &query.fact, fact_row)? {
        return Ok(false);
    }
    *facts_scanned += 1;
    for (dimension, (fk, allowed)) in &resolved.allowed_members {
        let member = match fk {
            Some(index) => member_at(fact_table.column_at(*index), fact_row)?,
            None => cube.fact_member(&query.fact, fact_row, dimension)?,
        };
        if !allowed.contains(&member) {
            return Ok(false);
        }
    }
    if let Some(filter) = &query.fact_filter {
        if !filter.matches(fact_table, fact_row)? {
            return Ok(false);
        }
    }
    *facts_matched += 1;
    Ok(true)
}

/// The dense key id of one group-by attribute for one fact row: a typed
/// FK read plus one dictionary index. Members outside the dictionary
/// (impossible through validated loads) read as `Null`, exactly what the
/// serial reference's out-of-range `Table::get` returns.
fn dense_key(
    cube: &Cube,
    query: &Query,
    dict: &GroupKeyDict,
    dimension: &str,
    fact_table: &Table,
    fact_row: usize,
) -> Result<u32, OlapError> {
    let member = match dict.fk_column {
        Some(index) => member_at(fact_table.column_at(index), fact_row)?,
        None => cube.fact_member(&query.fact, fact_row, dimension)?,
    };
    Ok(dict.member_to_key.get(member).copied().unwrap_or(NULL_KEY))
}

/// The integer group id of one fact row, built attribute by attribute in
/// query order (so FK-read errors surface in the serial reference's
/// order, and a recorded dictionary-build error replays at the exact
/// attribute the serial loop would have failed on).
fn row_group_id(
    cube: &Cube,
    query: &Query,
    plan: &GroupPlan,
    fact_table: &Table,
    fact_row: usize,
) -> Result<GroupId, OlapError> {
    let mut packed: u128 = 0;
    let mut wide: Vec<u32> = Vec::new();
    if plan.cardinality.is_none() {
        wide.reserve(query.group_by.len());
    }
    for (index, attr) in query.group_by.iter().enumerate() {
        let Some(dict) = plan.dicts.get(index) else {
            let (_, error) = plan.error.as_ref().expect("missing dict implies an error");
            return Err(error.clone());
        };
        let dense = dense_key(cube, query, dict, &attr.dimension, fact_table, fact_row)?;
        match plan.cardinality {
            Some(_) => packed = packed * dict.key_values.len() as u128 + u128::from(dense),
            None => wide.push(dense),
        }
    }
    Ok(match plan.cardinality {
        Some(_) => GroupId::Packed(packed),
        None => GroupId::Wide(wide.into_boxed_slice()),
    })
}

/// The integer-keyed hashed morsel scan: the fallback for group
/// cardinalities above the flat-slot limit and for measures that need
/// full values (COUNT DISTINCT, text columns). Identical control flow to
/// [`scan_range`], but group keys are dense integer ids — no string
/// keys, no per-row key-cell clones — and numeric measures are fed as
/// bare numbers through pre-resolved column indices.
#[allow(clippy::too_many_arguments)]
fn scan_morsel_hashed(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    rows: Range<usize>,
    out: &mut Vec<(GroupId, Vec<Accumulator>)>,
) -> Result<(usize, usize), OlapError> {
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    let mut groups: HashMap<GroupId, usize> = HashMap::new();
    for fact_row in rows {
        if !row_selected(
            cube,
            query,
            view,
            resolved,
            fact_table,
            fact_row,
            &mut facts_scanned,
            &mut facts_matched,
        )? {
            continue;
        }

        let id = row_group_id(cube, query, plan, fact_table, fact_row)?;
        let slot = match groups.entry(id) {
            Entry::Occupied(entry) => *entry.get(),
            Entry::Vacant(entry) => {
                let slot = out.len();
                out.push((
                    entry.key().clone(),
                    resolved
                        .measures
                        .iter()
                        .map(|(_, agg)| Accumulator::new(*agg))
                        .collect(),
                ));
                entry.insert(slot);
                slot
            }
        };
        let accumulators = &mut out[slot].1;
        for (i, (measure_plan, acc)) in resolved
            .plans
            .iter()
            .zip(accumulators.iter_mut())
            .enumerate()
        {
            match measure_plan.column {
                Some(index) if measure_plan.numeric => {
                    if let Some(n) = fact_table.column_at(index).get_number(fact_row) {
                        acc.update_number(n);
                    }
                }
                Some(index) => acc.update(&fact_table.column_at(index).get(fact_row)),
                None => acc.update(&fact_table.get(fact_row, &resolved.measures[i].0)?),
            }
        }
    }
    Ok((facts_scanned, facts_matched))
}

/// Reusable per-worker buffers of the flat grouped scan, sized once per
/// query (the slot vectors to the plan's total cardinality) and reset
/// between morsels through the touched-slot list — never an
/// O(cardinality) clear per morsel.
struct FlatScratch {
    /// Selection vector: surviving row ids of the current morsel.
    sel: Vec<u32>,
    /// Group slot per selected row (parallel to `sel`).
    slots: Vec<u32>,
    /// FK gather buffer (member ids, parallel to `sel`).
    members: Vec<u32>,
    /// Gathered non-null measure values and their slots.
    values: Vec<f64>,
    value_slots: Vec<u32>,
    /// Per-slot group-existence flags for the current morsel (a group
    /// exists once a row matches, even if every measure value is null —
    /// the serial reference's semantics).
    slot_seen: Vec<bool>,
    /// Slots touched by the current morsel, in first-occurrence order.
    touched: Vec<u32>,
    /// Per-measure slot-backed accumulator state.
    measures: Vec<SlotAccumulator>,
}

impl FlatScratch {
    fn new(resolved: &Resolved<'_>, slots: usize) -> Self {
        FlatScratch {
            sel: Vec::new(),
            slots: Vec::new(),
            members: Vec::new(),
            values: Vec::new(),
            value_slots: Vec::new(),
            slot_seen: vec![false; slots],
            touched: Vec::new(),
            measures: resolved
                .measures
                .iter()
                .map(|(_, agg)| SlotAccumulator::new(*agg, slots))
                .collect(),
        }
    }
}

/// The flat dense-slot grouped morsel scan. Three passes over the
/// morsel, each vectorisable:
///
/// 1. materialise the **selection vector** (liveness + view + filters,
///    via the shared [`row_selected`]);
/// 2. resolve the FK columns through typed chunk slices
///    ([`Column::gather_members`]) and fold the per-attribute dense ids
///    into one mixed-radix **slot vector**;
/// 3. per measure, gather the column into a compacted null-free
///    `(values, slots)` pair ([`Column::gather_numeric`]) and run the
///    grouped slice kernel into the per-slot vectors.
///
/// The morsel's partial is then read out of the touched slots in
/// first-occurrence order, as per-measure [`NumericAgg`] columns the
/// merge phase adds slot-wise into flat totals.
#[allow(clippy::too_many_arguments)]
fn scan_morsel_flat(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    rows: Range<usize>,
    scratch: &mut FlatScratch,
) -> Result<MorselPartial, OlapError> {
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;
    scratch.sel.clear();
    for fact_row in rows {
        if row_selected(
            cube,
            query,
            view,
            resolved,
            fact_table,
            fact_row,
            &mut facts_scanned,
            &mut facts_matched,
        )? {
            scratch.sel.push(fact_row as u32);
        }
    }
    if scratch.sel.is_empty() {
        return Ok(MorselPartial {
            groups: MorselGroups::Flat {
                touched: Vec::new(),
                partials: Vec::new(),
            },
            facts_scanned,
            facts_matched,
        });
    }

    // Slot vector: one typed FK gather per attribute, folded mixed-radix.
    scratch.slots.clear();
    scratch.slots.resize(scratch.sel.len(), 0);
    for (dict, attr) in plan.dicts.iter().zip(&query.group_by) {
        scratch.members.clear();
        match dict.fk_column {
            Some(index) => fact_table
                .column_at(index)
                .gather_members(&scratch.sel, &mut scratch.members)?,
            None => {
                for &row in &scratch.sel {
                    let member = cube.fact_member(&query.fact, row as usize, &attr.dimension)?;
                    scratch.members.push(member.min(u32::MAX as usize) as u32);
                }
            }
        }
        let radix = dict.key_values.len() as u32;
        for (slot, &member) in scratch.slots.iter_mut().zip(&scratch.members) {
            let dense = dict
                .member_to_key
                .get(member as usize)
                .copied()
                .unwrap_or(NULL_KEY);
            *slot = *slot * radix + dense;
        }
    }

    // Group existence: a slot is born when its first row matches.
    for &slot in &scratch.slots {
        let seen = &mut scratch.slot_seen[slot as usize];
        if !*seen {
            scratch.touched.push(slot);
            *seen = true;
        }
    }

    // One kernel pass per measure over the gathered null-free pairs.
    for (measure_plan, state) in resolved.plans.iter().zip(scratch.measures.iter_mut()) {
        let index = measure_plan
            .column
            .expect("flat plans resolve every measure column");
        scratch.values.clear();
        scratch.value_slots.clear();
        fact_table.column_at(index).gather_numeric(
            &scratch.sel,
            &scratch.slots,
            &mut scratch.values,
            &mut scratch.value_slots,
        );
        state.accumulate(&scratch.values, &scratch.value_slots);
    }

    // Drain the touched slots into the morsel partial (per-measure
    // `NumericAgg` columns parallel to the touched list), resetting the
    // slot state for the next morsel.
    let mut partials: Vec<Vec<NumericAgg>> = resolved
        .measures
        .iter()
        .map(|_| Vec::with_capacity(scratch.touched.len()))
        .collect();
    for &slot in &scratch.touched {
        scratch.slot_seen[slot as usize] = false;
        for (state, column) in scratch.measures.iter_mut().zip(partials.iter_mut()) {
            column.push(state.take_slot(slot as usize));
        }
    }
    let touched = std::mem::take(&mut scratch.touched);
    Ok(MorselPartial {
        groups: MorselGroups::Flat { touched, partials },
        facts_scanned,
        facts_matched,
    })
}

/// Merges each measure column's kernel partial over one run of selected
/// rows.
fn accumulate_run(
    fact_table: &Table,
    resolved: &Resolved<'_>,
    partials: &mut [NumericAgg],
    run: Range<usize>,
) {
    for (plan, partial) in resolved.plans.iter().zip(partials.iter_mut()) {
        let index = plan.column.expect("vectorised plans resolve every column");
        let part = fact_table
            .column_at(index)
            .numeric_agg(run.clone())
            .expect("vectorised plans are numeric");
        partial.merge(&part);
    }
}

/// The vectorised morsel scan for ungrouped all-numeric aggregates: the
/// morsel's selected rows are gathered into maximal contiguous runs and
/// each run is aggregated by the per-chunk slice kernels. When nothing
/// restricts the scan (no view, no filters), tombstone gaps are the only
/// run boundaries and no per-row work happens at all.
fn scan_morsel_vectorised(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    fact_table: &Table,
    rows: Range<usize>,
    groups: &mut Vec<(GroupId, Vec<Accumulator>)>,
) -> Result<(usize, usize), OlapError> {
    let mut partials: Vec<NumericAgg> = vec![NumericAgg::default(); resolved.plans.len()];
    let mut facts_scanned = 0usize;
    let mut facts_matched = 0usize;

    let unrestricted = view.is_unrestricted()
        && resolved.allowed_members.is_empty()
        && query.fact_filter.is_none();
    if unrestricted {
        for run in fact_table.live_runs(rows) {
            facts_scanned += run.len();
            facts_matched += run.len();
            accumulate_run(fact_table, resolved, &mut partials, run);
        }
    } else {
        // Per-row selection (the shared `row_selected` mirrors
        // `scan_range`'s check order and error behaviour), gathering
        // selected rows into runs.
        let end = rows.end;
        let mut run_start: Option<usize> = None;
        for fact_row in rows {
            let selected = row_selected(
                cube,
                query,
                view,
                resolved,
                fact_table,
                fact_row,
                &mut facts_scanned,
                &mut facts_matched,
            )?;
            match (selected, run_start) {
                (true, None) => run_start = Some(fact_row),
                (false, Some(start)) => {
                    accumulate_run(fact_table, resolved, &mut partials, start..fact_row);
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            accumulate_run(fact_table, resolved, &mut partials, start..end);
        }
    }

    // Like the reference loop, the single (ungrouped) group exists only
    // when at least one row matched.
    if facts_matched > 0 {
        let accumulators = resolved
            .measures
            .iter()
            .zip(&partials)
            .map(|((_, agg), partial)| {
                let mut acc = Accumulator::new(*agg);
                acc.absorb(partial);
                acc
            })
            .collect();
        groups.push((GroupId::Packed(0), accumulators));
    }
    Ok((facts_scanned, facts_matched))
}

/// The per-worker loop of the parallel pipeline: pulls morsel indices
/// from the shared counter until the table is exhausted, producing one
/// partial aggregate per morsel. A morsel that errors records the error
/// and the worker moves on, so the merge phase can always report the
/// error of the *lowest-indexed* failing morsel — the same error the
/// serial reference reports.
#[allow(clippy::too_many_arguments)]
fn scan_assigned_morsels(
    cube: &Cube,
    query: &Query,
    view: &InstanceView,
    resolved: &Resolved<'_>,
    plan: &GroupPlan,
    fact_table: &Table,
    next_morsel: &AtomicUsize,
    morsel_count: usize,
    morsel_rows: usize,
    total_rows: usize,
) -> Vec<(usize, Result<MorselPartial, OlapError>)> {
    let mut out = Vec::new();
    // Worker-local flat-slot buffers, sized once and reused across this
    // worker's morsels (reset through the touched list, not by clearing
    // whole slot vectors).
    let mut scratch = plan.flat.map(|slots| FlatScratch::new(resolved, slots));
    loop {
        let morsel = next_morsel.fetch_add(1, Ordering::Relaxed);
        if morsel >= morsel_count {
            break;
        }
        let start = morsel * morsel_rows;
        let end = (start + morsel_rows).min(total_rows);
        let partial = scan_morsel(
            cube,
            query,
            view,
            resolved,
            plan,
            fact_table,
            start..end,
            &mut scratch,
        );
        out.push((morsel, partial));
    }
    out
}

/// Finalises the group rows — `(key cells, accumulators)` pairs from
/// either executor — into a sorted, limited result.
fn materialise(
    query: &Query,
    resolved: &Resolved<'_>,
    groups: Vec<(Vec<CellValue>, Vec<Accumulator>)>,
    facts_scanned: usize,
    facts_matched: usize,
) -> QueryResult {
    let mut rows: Vec<ResultRow> = groups
        .into_iter()
        .map(|(keys, accs)| ResultRow {
            keys,
            values: accs.iter().map(Accumulator::finish).collect(),
        })
        .collect();
    rows.sort_by(|a, b| {
        let ka: Vec<String> = a.keys.iter().map(CellValue::group_key).collect();
        let kb: Vec<String> = b.keys.iter().map(CellValue::group_key).collect();
        ka.cmp(&kb)
    });
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    QueryResult {
        key_names: query.group_by.iter().map(|a| a.label()).collect(),
        value_names: resolved
            .measures
            .iter()
            .map(|(name, agg)| format!("{agg}({name})"))
            .collect(),
        rows,
        facts_scanned,
        facts_matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::query::AttributeRef;
    use sdwp_geometry::Point;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    /// Builds a small sales cube: 4 stores in 2 cities, 3 days, one fact
    /// row per (store, day) with UnitSales = store index + 1.
    fn sales_cube() -> Cube {
        let schema = SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .level(
                        "Day",
                        vec![sdwp_model::Attribute::descriptor(
                            "date",
                            AttributeType::Date,
                        )],
                    )
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure_with("StoreCost", AttributeType::Float, AggregationFunction::Avg)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        let cities = ["Alicante", "Alicante", "Madrid", "Madrid"];
        for (i, city) in cities.iter().enumerate() {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    ("City.name", CellValue::from(*city)),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        for d in 0..3 {
            cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(d))])
                .unwrap();
        }
        for s in 0..4usize {
            for d in 0..3usize {
                cube.add_fact_row(
                    "Sales",
                    vec![("Store", s), ("Time", d)],
                    vec![
                        ("UnitSales", CellValue::Float((s + 1) as f64)),
                        ("StoreCost", CellValue::Float(10.0 * (s + 1) as f64)),
                    ],
                )
                .unwrap();
            }
        }
        cube
    }

    #[test]
    fn rollup_to_city() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        // Alicante: stores 0 and 1 → (1 + 2) * 3 days = 9.
        let alicante = result.find(&[CellValue::from("Alicante")]).unwrap();
        assert_eq!(alicante.values[0], CellValue::Float(9.0));
        // Madrid: stores 2 and 3 → (3 + 4) * 3 = 21.
        let madrid = result.find(&[CellValue::from("Madrid")]).unwrap();
        assert_eq!(madrid.values[0], CellValue::Float(21.0));
        assert_eq!(result.facts_scanned, 12);
        assert_eq!(result.facts_matched, 12);
    }

    #[test]
    fn grand_total_and_avg() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure("UnitSales")
            .measure("StoreCost");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0].values[0], CellValue::Float(30.0));
        // StoreCost uses its default AVG aggregation: mean of 10,20,30,40
        // over 3 days each = 25.
        assert_eq!(result.rows[0].values[1], CellValue::Float(25.0));
        assert_eq!(
            engine
                .total(&cube, "Sales", "UnitSales", &InstanceView::unrestricted())
                .unwrap(),
            30.0
        );
    }

    #[test]
    fn dimension_filter_slice() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "Store", "name"))
            .measure("UnitSales")
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"));
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.facts_matched, 6);
    }

    #[test]
    fn spatial_dimension_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        // Stores within 15 units of the origin: stores 0 (x=0) and 1 (x=10).
        let query = Query::over("Sales").measure("UnitSales").filter_dimension(
            "Store",
            Filter::within_km("Store.geometry", Point::new(0.0, 0.0).into(), 15.0),
        );
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
    }

    #[test]
    fn view_restriction_is_equivalent_to_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let via_view = engine.execute_with_view(&cube, &query, &view).unwrap();
        let via_filter = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Store", Filter::eq("City.name", "Alicante")),
            )
            .unwrap();
        assert_eq!(via_view.rows[0].values[0], via_filter.rows[0].values[0]);
        // The view reduces the number of facts even scanned.
        assert_eq!(via_view.facts_scanned, 6);
        assert_eq!(via_filter.facts_scanned, 12);
    }

    #[test]
    fn fact_filter_on_measures() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure_agg("UnitSales", AggregationFunction::Count)
            .filter_fact(Filter::Attribute {
                column: "UnitSales".into(),
                op: crate::filter::CompareOp::Ge,
                value: CellValue::Float(3.0),
            });
        let result = engine.execute(&cube, &query).unwrap();
        // Stores 2 and 3 have UnitSales 3 and 4, over 3 days each.
        assert_eq!(result.rows[0].values[0], CellValue::Integer(6));
    }

    #[test]
    fn multi_key_grouping_and_limit() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .group_by(AttributeRef::new("Time", "Day", "date"))
            .measure("UnitSales");
        let full = engine.execute(&cube, &query).unwrap();
        assert_eq!(full.len(), 6); // 2 cities x 3 days
        let limited = engine.execute(&cube, &query.clone().limit(4)).unwrap();
        assert_eq!(limited.len(), 4);
    }

    #[test]
    fn error_cases() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        assert!(engine
            .execute(&cube, &Query::over("Returns").measure("UnitSales"))
            .is_err());
        assert!(engine.execute(&cube, &Query::over("Sales")).is_err());
        assert!(engine
            .execute(&cube, &Query::over("Sales").measure("Profit"))
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Customer", "Customer", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Store", "Country", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Customer", Filter::All)
            )
            .is_err());
    }

    #[test]
    fn parallel_matches_serial_on_the_sales_cube() {
        let cube = sales_cube();
        let serial = QueryEngine::with_config(ExecutionConfig::serial());
        let queries = [
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "City", "name"))
                .measure("UnitSales")
                .measure("StoreCost"),
            Query::over("Sales")
                .measure_agg("UnitSales", AggregationFunction::CountDistinct)
                .measure_agg("StoreCost", AggregationFunction::Min),
            Query::over("Sales")
                .group_by(AttributeRef::new("Store", "Store", "name"))
                .group_by(AttributeRef::new("Time", "Day", "date"))
                .measure("UnitSales")
                .limit(5),
        ];
        for workers in [1usize, 2, 8] {
            let parallel = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(workers)
                    .with_morsel_rows(4),
            );
            for query in &queries {
                assert_eq!(
                    parallel.execute(&cube, query).unwrap(),
                    serial.execute_serial(&cube, query).unwrap(),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_preserves_view_restrictions() {
        let cube = sales_cube();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let engine = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let result = engine.execute_with_view(&cube, &query, &view).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
        assert_eq!(result.facts_scanned, 6);
        assert_eq!(
            result,
            engine
                .execute_serial_with_view(&cube, &query, &view)
                .unwrap()
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let cube = sales_cube();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales")
            .measure_agg("StoreCost", AggregationFunction::Avg);
        let reference = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(1)
                .with_morsel_rows(3),
        )
        .execute(&cube, &query)
        .unwrap();
        for workers in [2usize, 3, 8] {
            let result = QueryEngine::with_config(
                ExecutionConfig::default()
                    .with_workers(workers)
                    .with_morsel_rows(3),
            )
            .execute(&cube, &query)
            .unwrap();
            assert_eq!(result, reference, "workers={workers}");
        }
    }

    #[test]
    fn retracted_rows_are_invisible_to_both_executors() {
        let mut cube = sales_cube();
        // Retract all three rows of store 0 and one row of store 2.
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.retract_fact_row("Sales", 1).unwrap();
        cube.retract_fact_row("Sales", 2).unwrap();
        cube.retract_fact_row("Sales", 6).unwrap();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(4)
                .with_morsel_rows(2),
        );
        let result = parallel.execute(&cube, &query).unwrap();
        // Alicante keeps only store 1 (2.0 × 3 days); Madrid loses one
        // store-2 row (3+4)*3 - 3 = 18.
        assert_eq!(
            result.find(&[CellValue::from("Alicante")]).unwrap().values[0],
            CellValue::Float(6.0)
        );
        assert_eq!(
            result.find(&[CellValue::from("Madrid")]).unwrap().values[0],
            CellValue::Float(18.0)
        );
        assert_eq!(result.facts_scanned, 8);
        assert_eq!(
            result,
            QueryEngine::with_config(ExecutionConfig::serial())
                .execute_serial(&cube, &query)
                .unwrap()
        );
    }

    #[test]
    fn parallel_reports_serial_errors() {
        let cube = sales_cube();
        let parallel = QueryEngine::with_config(
            ExecutionConfig::default()
                .with_workers(8)
                .with_morsel_rows(1),
        );
        let serial = QueryEngine::with_config(ExecutionConfig::serial());
        let bad_queries = [
            Query::over("Returns").measure("UnitSales"),
            Query::over("Sales"),
            Query::over("Sales").measure("Profit"),
            Query::over("Sales")
                .measure("UnitSales")
                .filter_fact(Filter::eq("ghost", "x")),
        ];
        for query in &bad_queries {
            let a = parallel.execute(&cube, query).unwrap_err();
            let b = serial.execute_serial(&cube, query).unwrap_err();
            assert_eq!(format!("{a}"), format!("{b}"));
        }
    }

    #[test]
    fn execution_config_resolution() {
        assert_eq!(ExecutionConfig::serial().effective_workers(), 1);
        assert_eq!(ExecutionConfig::default().with_workers(3).workers, 3);
        assert_eq!(
            ExecutionConfig::default().with_morsel_rows(0).morsel_rows,
            1
        );
        assert!(ExecutionConfig::default().effective_workers() >= 1);
        assert_eq!(
            ExecutionConfig::default()
                .with_cache_capacity(7)
                .cache_capacity,
            7
        );
        let engine = QueryEngine::with_config(ExecutionConfig::serial());
        assert_eq!(engine.config().workers, 1);
    }

    #[test]
    fn empty_cube_returns_empty_result() {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap();
        let cube = Cube::new(schema);
        let engine = QueryEngine::new();
        let result = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .group_by(AttributeRef::new("Store", "Store", "name"))
                    .measure("UnitSales"),
            )
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.facts_scanned, 0);
    }
}
