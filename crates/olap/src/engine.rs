//! The query engine: group-by aggregation through personalized views.

use crate::aggregate::Accumulator;
use crate::cube::{attribute_column, Cube};
use crate::error::OlapError;
use crate::query::{Query, QueryResult, ResultRow};
use crate::value::CellValue;
use crate::view::InstanceView;
use sdwp_model::AggregationFunction;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

/// Executes [`Query`]s against a [`Cube`], optionally through an
/// [`InstanceView`] (the personalized selection produced by the
/// `SelectInstance` action).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryEngine;

impl QueryEngine {
    /// Creates a query engine.
    pub fn new() -> Self {
        QueryEngine
    }

    /// Executes a query without any personalization.
    pub fn execute(&self, cube: &Cube, query: &Query) -> Result<QueryResult, OlapError> {
        self.execute_with_view(cube, query, &InstanceView::unrestricted())
    }

    /// Executes a query through a personalized instance view: only fact
    /// rows visible through the view participate in the aggregation.
    pub fn execute_with_view(
        &self,
        cube: &Cube,
        query: &Query,
        view: &InstanceView,
    ) -> Result<QueryResult, OlapError> {
        let fact_def =
            cube.schema()
                .fact(&query.fact)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "fact",
                    name: query.fact.clone(),
                })?;
        if query.measures.is_empty() {
            return Err(OlapError::InvalidQuery {
                message: "a query needs at least one measure".into(),
            });
        }

        // Resolve measures: (column name, aggregation).
        let mut measures: Vec<(String, AggregationFunction)> = Vec::new();
        for m in &query.measures {
            let def = fact_def
                .measure(&m.measure)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "measure",
                    name: m.measure.clone(),
                })?;
            measures.push((def.name.clone(), m.aggregation.unwrap_or(def.aggregation)));
        }

        // Validate group-by references and check the dimensions are reachable.
        for key in &query.group_by {
            if !fact_def.references_dimension(&key.dimension) {
                return Err(OlapError::InvalidQuery {
                    message: format!(
                        "fact '{}' is not analysed by dimension '{}'",
                        fact_def.name, key.dimension
                    ),
                });
            }
            let dim = cube.schema().dimension(&key.dimension).ok_or_else(|| {
                OlapError::UnknownElement {
                    kind: "dimension",
                    name: key.dimension.clone(),
                }
            })?;
            let level = dim
                .level(&key.level)
                .ok_or_else(|| OlapError::UnknownElement {
                    kind: "level",
                    name: key.level.clone(),
                })?;
            if level.attribute(&key.attribute).is_none() {
                return Err(OlapError::UnknownElement {
                    kind: "attribute",
                    name: format!("{}.{}", key.level, key.attribute),
                });
            }
        }

        // Pre-compute allowed member sets for every filtered dimension.
        let mut allowed_members: HashMap<&str, BTreeSet<usize>> = HashMap::new();
        for (dimension, filter) in &query.dimension_filters {
            if !fact_def.references_dimension(dimension) {
                return Err(OlapError::InvalidQuery {
                    message: format!(
                        "filtered dimension '{dimension}' is not referenced by fact '{}'",
                        fact_def.name
                    ),
                });
            }
            let table = &cube.dimension_table(dimension)?.table;
            let matching: BTreeSet<usize> = filter.matching_rows(table)?.into_iter().collect();
            match allowed_members.entry(dimension.as_str()) {
                Entry::Occupied(mut e) => {
                    let intersection: BTreeSet<usize> =
                        e.get().intersection(&matching).copied().collect();
                    e.insert(intersection);
                }
                Entry::Vacant(e) => {
                    e.insert(matching);
                }
            }
        }

        let fact_table = &cube.fact_table(&query.fact)?.table;
        let total_rows = fact_table.len();

        // Group-by state: group key string -> (key cells, accumulators).
        let mut groups: HashMap<String, (Vec<CellValue>, Vec<Accumulator>)> = HashMap::new();
        let mut facts_scanned = 0usize;
        let mut facts_matched = 0usize;
        // Cache of member-row → key-cell lookups per group-by attribute.
        let mut key_cache: Vec<HashMap<usize, CellValue>> =
            vec![HashMap::new(); query.group_by.len()];

        for fact_row in 0..total_rows {
            if !view.allows_fact_row(cube, &query.fact, fact_row)? {
                continue;
            }
            facts_scanned += 1;

            // Dimension filters.
            let mut passes = true;
            for (dimension, allowed) in &allowed_members {
                let member = cube.fact_member(&query.fact, fact_row, dimension)?;
                if !allowed.contains(&member) {
                    passes = false;
                    break;
                }
            }
            if !passes {
                continue;
            }
            // Fact filter.
            if let Some(filter) = &query.fact_filter {
                if !filter.matches(fact_table, fact_row)? {
                    continue;
                }
            }
            facts_matched += 1;

            // Build the group key.
            let mut key_cells = Vec::with_capacity(query.group_by.len());
            let mut key_string = String::new();
            for (i, attr) in query.group_by.iter().enumerate() {
                let member = cube.fact_member(&query.fact, fact_row, &attr.dimension)?;
                let cell = match key_cache[i].get(&member) {
                    Some(c) => c.clone(),
                    None => {
                        let table = &cube.dimension_table(&attr.dimension)?.table;
                        let cell =
                            table.get(member, &attribute_column(&attr.level, &attr.attribute))?;
                        key_cache[i].insert(member, cell.clone());
                        cell
                    }
                };
                key_string.push_str(&cell.group_key());
                key_string.push('\u{1f}');
                key_cells.push(cell);
            }

            let entry = groups.entry(key_string).or_insert_with(|| {
                (
                    key_cells.clone(),
                    measures
                        .iter()
                        .map(|(_, agg)| Accumulator::new(*agg))
                        .collect(),
                )
            });
            for ((column, _), acc) in measures.iter().zip(entry.1.iter_mut()) {
                let value = fact_table.get(fact_row, column)?;
                acc.update(&value);
            }
        }

        // Materialise and sort rows for deterministic output.
        let mut rows: Vec<ResultRow> = groups
            .into_values()
            .map(|(keys, accs)| ResultRow {
                keys,
                values: accs.iter().map(Accumulator::finish).collect(),
            })
            .collect();
        rows.sort_by(|a, b| {
            let ka: Vec<String> = a.keys.iter().map(CellValue::group_key).collect();
            let kb: Vec<String> = b.keys.iter().map(CellValue::group_key).collect();
            ka.cmp(&kb)
        });
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }

        Ok(QueryResult {
            key_names: query.group_by.iter().map(|a| a.label()).collect(),
            value_names: measures
                .iter()
                .map(|(name, agg)| format!("{agg}({name})"))
                .collect(),
            rows,
            facts_scanned,
            facts_matched,
        })
    }

    /// Convenience: total of a single measure over the (possibly
    /// personalized) cube, with no grouping.
    pub fn total(
        &self,
        cube: &Cube,
        fact: &str,
        measure: &str,
        view: &InstanceView,
    ) -> Result<f64, OlapError> {
        let query = Query::over(fact).measure(measure);
        let result = self.execute_with_view(cube, &query, view)?;
        Ok(result
            .rows
            .first()
            .and_then(|r| r.values.first())
            .and_then(CellValue::as_number)
            .unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::query::AttributeRef;
    use sdwp_geometry::Point;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    /// Builds a small sales cube: 4 stores in 2 cities, 3 days, one fact
    /// row per (store, day) with UnitSales = store index + 1.
    fn sales_cube() -> Cube {
        let schema = SchemaBuilder::new("SalesDW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .level(
                        "Day",
                        vec![sdwp_model::Attribute::descriptor(
                            "date",
                            AttributeType::Date,
                        )],
                    )
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .measure_with("StoreCost", AttributeType::Float, AggregationFunction::Avg)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        let cities = ["Alicante", "Alicante", "Madrid", "Madrid"];
        for (i, city) in cities.iter().enumerate() {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    ("City.name", CellValue::from(*city)),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64 * 10.0, 0.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        for d in 0..3 {
            cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(d))])
                .unwrap();
        }
        for s in 0..4usize {
            for d in 0..3usize {
                cube.add_fact_row(
                    "Sales",
                    vec![("Store", s), ("Time", d)],
                    vec![
                        ("UnitSales", CellValue::Float((s + 1) as f64)),
                        ("StoreCost", CellValue::Float(10.0 * (s + 1) as f64)),
                    ],
                )
                .unwrap();
            }
        }
        cube
    }

    #[test]
    fn rollup_to_city() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        // Alicante: stores 0 and 1 → (1 + 2) * 3 days = 9.
        let alicante = result.find(&[CellValue::from("Alicante")]).unwrap();
        assert_eq!(alicante.values[0], CellValue::Float(9.0));
        // Madrid: stores 2 and 3 → (3 + 4) * 3 = 21.
        let madrid = result.find(&[CellValue::from("Madrid")]).unwrap();
        assert_eq!(madrid.values[0], CellValue::Float(21.0));
        assert_eq!(result.facts_scanned, 12);
        assert_eq!(result.facts_matched, 12);
    }

    #[test]
    fn grand_total_and_avg() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure("UnitSales")
            .measure("StoreCost");
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0].values[0], CellValue::Float(30.0));
        // StoreCost uses its default AVG aggregation: mean of 10,20,30,40
        // over 3 days each = 25.
        assert_eq!(result.rows[0].values[1], CellValue::Float(25.0));
        assert_eq!(
            engine
                .total(&cube, "Sales", "UnitSales", &InstanceView::unrestricted())
                .unwrap(),
            30.0
        );
    }

    #[test]
    fn dimension_filter_slice() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "Store", "name"))
            .measure("UnitSales")
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"));
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.facts_matched, 6);
    }

    #[test]
    fn spatial_dimension_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        // Stores within 15 units of the origin: stores 0 (x=0) and 1 (x=10).
        let query = Query::over("Sales").measure("UnitSales").filter_dimension(
            "Store",
            Filter::within_km("Store.geometry", Point::new(0.0, 0.0).into(), 15.0),
        );
        let result = engine.execute(&cube, &query).unwrap();
        assert_eq!(result.rows[0].values[0], CellValue::Float(9.0));
    }

    #[test]
    fn view_restriction_is_equivalent_to_filter() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        let query = Query::over("Sales").measure("UnitSales");
        let via_view = engine.execute_with_view(&cube, &query, &view).unwrap();
        let via_filter = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Store", Filter::eq("City.name", "Alicante")),
            )
            .unwrap();
        assert_eq!(via_view.rows[0].values[0], via_filter.rows[0].values[0]);
        // The view reduces the number of facts even scanned.
        assert_eq!(via_view.facts_scanned, 6);
        assert_eq!(via_filter.facts_scanned, 12);
    }

    #[test]
    fn fact_filter_on_measures() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .measure_agg("UnitSales", AggregationFunction::Count)
            .filter_fact(Filter::Attribute {
                column: "UnitSales".into(),
                op: crate::filter::CompareOp::Ge,
                value: CellValue::Float(3.0),
            });
        let result = engine.execute(&cube, &query).unwrap();
        // Stores 2 and 3 have UnitSales 3 and 4, over 3 days each.
        assert_eq!(result.rows[0].values[0], CellValue::Integer(6));
    }

    #[test]
    fn multi_key_grouping_and_limit() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        let query = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .group_by(AttributeRef::new("Time", "Day", "date"))
            .measure("UnitSales");
        let full = engine.execute(&cube, &query).unwrap();
        assert_eq!(full.len(), 6); // 2 cities x 3 days
        let limited = engine.execute(&cube, &query.clone().limit(4)).unwrap();
        assert_eq!(limited.len(), 4);
    }

    #[test]
    fn error_cases() {
        let cube = sales_cube();
        let engine = QueryEngine::new();
        assert!(engine
            .execute(&cube, &Query::over("Returns").measure("UnitSales"))
            .is_err());
        assert!(engine.execute(&cube, &Query::over("Sales")).is_err());
        assert!(engine
            .execute(&cube, &Query::over("Sales").measure("Profit"))
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Customer", "Customer", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .group_by(AttributeRef::new("Store", "Country", "name"))
            )
            .is_err());
        assert!(engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .measure("UnitSales")
                    .filter_dimension("Customer", Filter::All)
            )
            .is_err());
    }

    #[test]
    fn empty_cube_returns_empty_result() {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .build()
            .unwrap();
        let cube = Cube::new(schema);
        let engine = QueryEngine::new();
        let result = engine
            .execute(
                &cube,
                &Query::over("Sales")
                    .group_by(AttributeRef::new("Store", "Store", "name"))
                    .measure("UnitSales"),
            )
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.facts_scanned, 0);
    }
}
