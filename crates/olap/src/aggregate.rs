//! Measure accumulators for group-by aggregation.
//!
//! Accumulators carry *mergeable* partial state rather than finished
//! values: AVG keeps `(sum, count)` and COUNT DISTINCT keeps the value
//! set, so per-morsel partial aggregates can be combined with
//! [`Accumulator::merge`] by the parallel executor and only finalised
//! once at the end.

use crate::kernels::{self, NumericAgg};
use crate::value::CellValue;
use sdwp_model::AggregationFunction;
use std::collections::HashSet;

/// Slot-backed accumulator state for one measure across the dense group
/// slots of one morsel — the flat-vector counterpart of a
/// `HashMap<group, Accumulator>`.
///
/// The grouped morsel executor resolves group keys to dense slot ids and
/// feeds each measure's gathered `(values, slots)` pair through the
/// grouped kernels of [`crate::kernels`] into these per-slot vectors; a
/// slot's state reads back as the same [`NumericAgg`] the row-at-a-time
/// accumulator would have built, so per-morsel partials merge through the
/// ordinary [`Accumulator::absorb`]/[`Accumulator::merge`] machinery.
///
/// Only the vectors the aggregation function actually needs are
/// allocated (counts always — every mergeable state needs them — plus
/// sums for SUM/AVG, mins for MIN, maxs for MAX). COUNT DISTINCT needs
/// full values and never takes the flat path.
#[derive(Debug, Clone)]
pub struct SlotAccumulator {
    function: AggregationFunction,
    counts: Vec<u64>,
    sums: Vec<f64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl SlotAccumulator {
    /// Creates the per-slot state for `slots` dense group ids.
    ///
    /// # Panics
    /// COUNT DISTINCT has no numeric slot representation.
    pub fn new(function: AggregationFunction, slots: usize) -> Self {
        assert_ne!(
            function,
            AggregationFunction::CountDistinct,
            "COUNT DISTINCT cannot take the flat slot path"
        );
        let need_sums = matches!(
            function,
            AggregationFunction::Sum | AggregationFunction::Avg
        );
        SlotAccumulator {
            function,
            counts: vec![0; slots],
            sums: vec![0.0; if need_sums { slots } else { 0 }],
            mins: vec![
                0.0;
                if function == AggregationFunction::Min {
                    slots
                } else {
                    0
                }
            ],
            maxs: vec![
                0.0;
                if function == AggregationFunction::Max {
                    slots
                } else {
                    0
                }
            ],
        }
    }

    /// The aggregation function this state implements.
    pub fn function(&self) -> AggregationFunction {
        self.function
    }

    /// Feeds a gathered `(values, slots)` pair (nulls already dropped,
    /// slices parallel) through the function's grouped kernel.
    pub fn accumulate(&mut self, values: &[f64], slots: &[u32]) {
        match self.function {
            AggregationFunction::Sum | AggregationFunction::Avg => {
                kernels::sum_grouped(values, slots, &mut self.counts, &mut self.sums)
            }
            AggregationFunction::Min => {
                kernels::min_grouped(values, slots, &mut self.counts, &mut self.mins)
            }
            AggregationFunction::Max => {
                kernels::max_grouped(values, slots, &mut self.counts, &mut self.maxs)
            }
            AggregationFunction::Count => kernels::count_grouped(slots, &mut self.counts),
            AggregationFunction::CountDistinct => {
                unreachable!("COUNT DISTINCT never takes the flat slot path")
            }
        }
    }

    /// Reads one slot's partial state as a [`NumericAgg`] and resets the
    /// slot, so the vectors can be reused for the next morsel without an
    /// O(cardinality) clear.
    pub fn take_slot(&mut self, slot: usize) -> NumericAgg {
        let count = std::mem::take(&mut self.counts[slot]);
        let sum = self
            .sums
            .get_mut(slot)
            .map(std::mem::take)
            .unwrap_or_default();
        let min = (count > 0 && !self.mins.is_empty()).then(|| self.mins[slot]);
        let max = (count > 0 && !self.maxs.is_empty()).then(|| self.maxs[slot]);
        NumericAgg {
            count,
            sum,
            min,
            max,
        }
    }
}

/// An incremental accumulator for one measure within one group.
///
/// The numeric state (count / sum / min / max) *is* a
/// [`NumericAgg`] — the same type the vectorised per-chunk kernels
/// produce — so the per-row path, the typed fast path and the kernel
/// path share one implementation of every numeric identity by
/// construction.
#[derive(Debug, Clone)]
pub struct Accumulator {
    function: AggregationFunction,
    numeric: NumericAgg,
    distinct: HashSet<String>,
}

impl Accumulator {
    /// Creates an accumulator for the given aggregation function.
    pub fn new(function: AggregationFunction) -> Self {
        Accumulator {
            function,
            numeric: NumericAgg::default(),
            distinct: HashSet::new(),
        }
    }

    /// The aggregation function this accumulator implements.
    pub fn function(&self) -> AggregationFunction {
        self.function
    }

    /// Feeds one value into the accumulator. Null values are ignored except
    /// by COUNT DISTINCT (which ignores them too) — COUNT counts non-null
    /// values, matching SQL semantics.
    pub fn update(&mut self, value: &CellValue) {
        if value.is_null() {
            return;
        }
        match value.as_number() {
            Some(n) => self.numeric.observe(n),
            // Non-numeric non-null values still count (COUNT over a text
            // column) but contribute no sum/min/max.
            None => self.numeric.count += 1,
        }
        if self.function == AggregationFunction::CountDistinct {
            self.distinct.insert(value.group_key());
        }
    }

    /// Feeds one non-null numeric value — the typed fast path the morsel
    /// executor uses for numeric measure columns, equivalent to
    /// [`Accumulator::update`] with a numeric [`CellValue`] but without
    /// materialising one. Not valid for COUNT DISTINCT (which needs the
    /// value's group key); callers route those through `update`.
    #[inline]
    pub fn update_number(&mut self, n: f64) {
        debug_assert_ne!(
            self.function,
            AggregationFunction::CountDistinct,
            "COUNT DISTINCT needs the full value, not the numeric fast path"
        );
        self.numeric.observe(n);
    }

    /// Absorbs the partial state of a vectorised per-chunk kernel run
    /// ([`NumericAgg`]). Equivalent to feeding the kernel's input rows
    /// through [`Accumulator::update_number`] one by one; absorbing an
    /// empty partial is the identity.
    pub fn absorb(&mut self, partial: &NumericAgg) {
        debug_assert_ne!(
            self.function,
            AggregationFunction::CountDistinct,
            "COUNT DISTINCT cannot absorb numeric partials"
        );
        self.numeric.merge(partial);
    }

    /// Merges another accumulator's partial state into this one.
    ///
    /// Both accumulators must implement the same aggregation function.
    /// Merging the states of two disjoint row chunks is equivalent to
    /// feeding both chunks sequentially through [`Accumulator::update`]
    /// (the property the parallel executor's equivalence suite proves),
    /// and merging an empty accumulator is the identity.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(
            self.function, other.function,
            "merging accumulators of different aggregation functions"
        );
        self.numeric.merge(&other.numeric);
        if self.function == AggregationFunction::CountDistinct {
            self.distinct.extend(other.distinct.iter().cloned());
        }
    }

    /// Finalises the accumulator into a cell value.
    pub fn finish(&self) -> CellValue {
        let NumericAgg {
            count,
            sum,
            min,
            max,
        } = self.numeric;
        match self.function {
            AggregationFunction::Sum => CellValue::Float(sum),
            AggregationFunction::Avg => {
                if count == 0 {
                    CellValue::Null
                } else {
                    CellValue::Float(sum / count as f64)
                }
            }
            AggregationFunction::Min => min.map(CellValue::Float).unwrap_or(CellValue::Null),
            AggregationFunction::Max => max.map(CellValue::Float).unwrap_or(CellValue::Null),
            AggregationFunction::Count => CellValue::Integer(count as i64),
            AggregationFunction::CountDistinct => CellValue::Integer(self.distinct.len() as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(function: AggregationFunction, values: &[CellValue]) -> CellValue {
        let mut acc = Accumulator::new(function);
        for v in values {
            acc.update(v);
        }
        acc.finish()
    }

    #[test]
    fn sum_and_avg() {
        let values = vec![
            CellValue::Float(1.0),
            CellValue::Integer(2),
            CellValue::Null,
            CellValue::Float(3.0),
        ];
        assert_eq!(
            feed(AggregationFunction::Sum, &values),
            CellValue::Float(6.0)
        );
        assert_eq!(
            feed(AggregationFunction::Avg, &values),
            CellValue::Float(2.0)
        );
    }

    #[test]
    fn min_max_count() {
        let values = vec![
            CellValue::Float(5.0),
            CellValue::Float(-1.0),
            CellValue::Float(3.0),
        ];
        assert_eq!(
            feed(AggregationFunction::Min, &values),
            CellValue::Float(-1.0)
        );
        assert_eq!(
            feed(AggregationFunction::Max, &values),
            CellValue::Float(5.0)
        );
        assert_eq!(
            feed(AggregationFunction::Count, &values),
            CellValue::Integer(3)
        );
    }

    #[test]
    fn count_distinct() {
        let values = vec![
            CellValue::Text("a".into()),
            CellValue::Text("b".into()),
            CellValue::Text("a".into()),
            CellValue::Null,
        ];
        assert_eq!(
            feed(AggregationFunction::CountDistinct, &values),
            CellValue::Integer(2)
        );
        // COUNT counts non-null occurrences, not distinct values.
        assert_eq!(
            feed(AggregationFunction::Count, &values),
            CellValue::Integer(3)
        );
    }

    #[test]
    fn empty_input_semantics() {
        assert_eq!(feed(AggregationFunction::Sum, &[]), CellValue::Float(0.0));
        assert_eq!(feed(AggregationFunction::Avg, &[]), CellValue::Null);
        assert_eq!(feed(AggregationFunction::Min, &[]), CellValue::Null);
        assert_eq!(feed(AggregationFunction::Max, &[]), CellValue::Null);
        assert_eq!(feed(AggregationFunction::Count, &[]), CellValue::Integer(0));
        assert_eq!(
            feed(AggregationFunction::CountDistinct, &[]),
            CellValue::Integer(0)
        );
    }

    #[test]
    fn function_accessor() {
        let acc = Accumulator::new(AggregationFunction::Max);
        assert_eq!(acc.function(), AggregationFunction::Max);
    }

    /// Splits `values` at `at`, accumulates both halves separately and
    /// merges them.
    fn feed_split(function: AggregationFunction, values: &[CellValue], at: usize) -> CellValue {
        let (left, right) = values.split_at(at);
        let mut a = Accumulator::new(function);
        for v in left {
            a.update(v);
        }
        let mut b = Accumulator::new(function);
        for v in right {
            b.update(v);
        }
        a.merge(&b);
        a.finish()
    }

    #[test]
    fn merge_agrees_with_sequential_update() {
        let values = vec![
            CellValue::Float(1.5),
            CellValue::Integer(2),
            CellValue::Null,
            CellValue::Text("a".into()),
            CellValue::Text("a".into()),
            CellValue::Float(-3.0),
        ];
        for function in [
            AggregationFunction::Sum,
            AggregationFunction::Avg,
            AggregationFunction::Min,
            AggregationFunction::Max,
            AggregationFunction::Count,
            AggregationFunction::CountDistinct,
        ] {
            let sequential = feed(function, &values);
            for at in 0..=values.len() {
                assert_eq!(
                    feed_split(function, &values, at),
                    sequential,
                    "{function:?} split at {at}"
                );
            }
        }
    }

    #[test]
    fn numeric_fast_path_agrees_with_update() {
        use crate::kernels;
        let values = [1.5, -3.0, 0.25, 7.0];
        for function in [
            AggregationFunction::Sum,
            AggregationFunction::Avg,
            AggregationFunction::Min,
            AggregationFunction::Max,
            AggregationFunction::Count,
        ] {
            let mut reference = Accumulator::new(function);
            let mut typed = Accumulator::new(function);
            let mut absorbing = Accumulator::new(function);
            for v in values {
                reference.update(&CellValue::Float(v));
                typed.update_number(v);
            }
            absorbing.absorb(&kernels::agg_f64(&values));
            assert_eq!(typed.finish(), reference.finish(), "{function:?} typed");
            assert_eq!(
                absorbing.finish(),
                reference.finish(),
                "{function:?} absorb"
            );
            // Absorbing an empty kernel partial is the identity.
            let before = absorbing.finish();
            absorbing.absorb(&kernels::NumericAgg::default());
            assert_eq!(absorbing.finish(), before);
        }
    }

    #[test]
    fn slot_accumulator_agrees_with_per_group_accumulators() {
        let values = [1.5, -3.0, 0.25, 7.0, 2.0];
        let slots = [0u32, 1, 0, 2, 1];
        for function in [
            AggregationFunction::Sum,
            AggregationFunction::Avg,
            AggregationFunction::Min,
            AggregationFunction::Max,
            AggregationFunction::Count,
        ] {
            let mut flat = SlotAccumulator::new(function, 3);
            assert_eq!(flat.function(), function);
            flat.accumulate(&values, &slots);
            for slot in 0..3usize {
                let mut reference = Accumulator::new(function);
                for (&v, &s) in values.iter().zip(&slots) {
                    if s as usize == slot {
                        reference.update_number(v);
                    }
                }
                let mut absorbed = Accumulator::new(function);
                absorbed.absorb(&flat.take_slot(slot));
                assert_eq!(
                    absorbed.finish(),
                    reference.finish(),
                    "{function:?} slot {slot}"
                );
            }
            // take_slot reset every slot: a second read is empty.
            assert_eq!(flat.take_slot(0), NumericAgg::default());
        }
    }

    #[test]
    fn merging_empty_accumulators_is_the_identity() {
        for function in [
            AggregationFunction::Sum,
            AggregationFunction::Avg,
            AggregationFunction::Min,
            AggregationFunction::Max,
            AggregationFunction::Count,
            AggregationFunction::CountDistinct,
        ] {
            let mut acc = Accumulator::new(function);
            acc.update(&CellValue::Float(4.0));
            acc.update(&CellValue::Text("x".into()));
            let before = acc.finish();
            acc.merge(&Accumulator::new(function));
            assert_eq!(acc.finish(), before, "{function:?} right identity");
            let mut fresh = Accumulator::new(function);
            fresh.merge(&acc);
            assert_eq!(fresh.finish(), before, "{function:?} left identity");
        }
    }
}
