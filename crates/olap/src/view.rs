//! Personalized instance views over a cube.

use crate::cube::{fk_column, Cube};
use crate::error::OlapError;
use crate::table::{RowRemap, Table};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A fact-row selection pinned to the compaction version of the fact
/// table its row ids were captured against.
///
/// Fact tables can be *compacted* (tombstones dropped, stable row ids
/// remapped), so a bare row-id set is only meaningful together with the
/// numbering it refers to. [`InstanceView::allows_fact_row`] translates a
/// queried row id backwards through the table's remap chain to the
/// selection's version, so a view captured before a compaction keeps
/// resolving exactly the live rows it selected.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FactSelection {
    /// The fact table's compaction version the row ids refer to (= the
    /// length of the table's remap chain at capture time).
    pub version: u64,
    /// The allowed fact row ids, in `version`'s numbering.
    pub rows: BTreeSet<usize>,
}

/// The outcome of instance personalization: a restriction of the cube to
/// the dimension members (and/or fact rows) a decision maker should see.
///
/// This is the model-side effect of the paper's `SelectInstance` action.
/// "All the succeeding analysis in any BI tool will have the sales fact
/// instances only made in selected stores" — the view restricts every
/// later query without copying any data.
///
/// An empty view is unrestricted; restrictions are added per dimension (a
/// set of allowed member row ids) or per fact (a set of allowed fact row
/// ids). A fact row passes the view when its row id is allowed *and* every
/// foreign key points to an allowed member.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InstanceView {
    dimension_selections: BTreeMap<String, BTreeSet<usize>>,
    fact_selections: BTreeMap<String, FactSelection>,
}

impl InstanceView {
    /// Creates an unrestricted view.
    pub fn unrestricted() -> Self {
        InstanceView::default()
    }

    /// Returns `true` when no restriction has been registered.
    pub fn is_unrestricted(&self) -> bool {
        self.dimension_selections.is_empty() && self.fact_selections.is_empty()
    }

    /// Restricts a dimension to the given member row ids. Selecting the
    /// same dimension again *intersects* with the previous selection, so
    /// several instance rules compose conjunctively (each rule further
    /// narrows what the user sees).
    pub fn select_dimension_members(
        &mut self,
        dimension: impl Into<String>,
        members: impl IntoIterator<Item = usize>,
    ) {
        let dimension = dimension.into();
        let new: BTreeSet<usize> = members.into_iter().collect();
        match self.dimension_selections.get_mut(&dimension) {
            Some(existing) => {
                *existing = existing.intersection(&new).copied().collect();
            }
            None => {
                self.dimension_selections.insert(dimension, new);
            }
        }
    }

    /// Restricts a fact to the given fact row ids (intersecting with any
    /// previous selection), with the ids referring to the fact table's
    /// *initial* numbering (compaction version 0). Callers selecting
    /// against a table that has already been compacted use
    /// [`InstanceView::select_fact_rows_at`].
    pub fn select_fact_rows(
        &mut self,
        fact: impl Into<String>,
        rows: impl IntoIterator<Item = usize>,
    ) {
        self.select_fact_rows_at(fact, 0, rows);
    }

    /// Restricts a fact to the given fact row ids captured at the given
    /// compaction version of the fact table (intersecting with any
    /// previous selection).
    ///
    /// When the previous selection was captured at a *different* version,
    /// the raw id sets are intersected and the newer version kept: the
    /// serving layer keeps stored views aligned with the current version
    /// (it remaps them under the same lock that compacts), so a mixed
    /// intersection only happens in the window between a firing and its
    /// application, and never widens the view.
    pub fn select_fact_rows_at(
        &mut self,
        fact: impl Into<String>,
        version: u64,
        rows: impl IntoIterator<Item = usize>,
    ) {
        let fact = fact.into();
        let new: BTreeSet<usize> = rows.into_iter().collect();
        match self.fact_selections.get_mut(&fact) {
            Some(existing) => {
                existing.rows = existing.rows.intersection(&new).copied().collect();
                existing.version = existing.version.max(version);
            }
            None => {
                self.fact_selections
                    .insert(fact, FactSelection { version, rows: new });
            }
        }
    }

    /// The compaction version a fact's selection was captured at, when the
    /// fact is restricted.
    pub fn fact_selection_version(&self, fact: &str) -> Option<u64> {
        self.fact_selections.get(fact).map(|s| s.version)
    }

    /// Every restricted fact with its selection's capture version — what
    /// a reader holding this view still references of each fact table's
    /// remap chain (the serving layer pins these while a query is in
    /// flight so chain trimming cannot outrun the view).
    pub fn fact_selection_versions(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.fact_selections
            .iter()
            .map(|(fact, selection)| (fact.as_str(), selection.version))
    }

    /// The selected fact-row set (in its capture version's numbering),
    /// when the fact is restricted.
    pub fn selected_fact_rows(&self, fact: &str) -> Option<&BTreeSet<usize>> {
        self.fact_selections.get(fact).map(|s| &s.rows)
    }

    /// Translates a fact's selection through one compaction remap: row ids
    /// captured at `from_version` become ids in `from_version + 1`'s
    /// numbering (rows dead at compaction time drop out). A no-op when the
    /// fact is unrestricted or its selection is at a different version.
    /// The serving layer calls this for every open session right after
    /// publishing a compacted snapshot, keeping stored views on the
    /// version-aligned fast path of [`InstanceView::allows_fact_row`].
    pub fn remap_fact_rows(&mut self, fact: &str, remap: &RowRemap, from_version: u64) {
        if let Some(selection) = self.fact_selections.get_mut(fact) {
            if selection.version == from_version {
                selection.rows = selection
                    .rows
                    .iter()
                    .filter_map(|&row| remap.new_id(row))
                    .collect();
                selection.version = from_version + 1;
            }
        }
    }

    /// Returns `true` when the member of a dimension is visible.
    pub fn allows_member(&self, dimension: &str, member: usize) -> bool {
        self.dimension_selections
            .get(dimension)
            .map(|s| s.contains(&member))
            .unwrap_or(true)
    }

    /// The selected member set for a dimension, when restricted.
    pub fn selected_members(&self, dimension: &str) -> Option<&BTreeSet<usize>> {
        self.dimension_selections.get(dimension)
    }

    /// Names of the dimensions this view restricts.
    pub fn restricted_dimensions(&self) -> Vec<&str> {
        self.dimension_selections
            .keys()
            .map(String::as_str)
            .collect()
    }

    /// Returns `true` when a fact row is visible through the view: the row
    /// id is allowed for the fact and every foreign key points to an
    /// allowed dimension member.
    pub fn allows_fact_row(
        &self,
        cube: &Cube,
        fact: &str,
        fact_row: usize,
    ) -> Result<bool, OlapError> {
        if let Some(selection) = self.fact_selections.get(fact) {
            let fact_table = cube.fact_table(fact)?;
            let current = fact_table.compaction_version();
            let row_at_capture = if selection.version < current {
                // The table was compacted since the selection was
                // captured: walk the queried id backwards through the
                // retained remap chain to the selection's numbering (the
                // serving layer only trims transitions no live selection
                // references, so the chain covers the span). A row with
                // no pre-compaction id was appended later — a closed
                // selection never contains it.
                let mut row = Some(fact_row);
                for remap in fact_table.remaps_from(selection.version).iter().rev() {
                    row = row.and_then(|r| remap.old_id(r));
                }
                row
            } else {
                // Version-aligned (the steady state) — or, in the tiny
                // window where a freshly remapped view meets a snapshot
                // published just before the compaction, best-effort raw
                // ids.
                Some(fact_row)
            };
            match row_at_capture {
                Some(row) if selection.rows.contains(&row) => {}
                _ => return Ok(false),
            }
        }
        let fact_def = cube
            .schema()
            .fact(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        for dimension in &fact_def.dimensions {
            if let Some(selected) = self.dimension_selections.get(dimension) {
                let member = cube.fact_member(fact, fact_row, dimension)?;
                if !selected.contains(&member) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Hoists every per-row name lookup of
    /// [`InstanceView::allows_fact_row`] out of a scan: the fact's row
    /// selection with its backward remap walk pre-fetched, and each
    /// view-restricted dimension the fact references with the fact
    /// table's FK column index pre-resolved for typed per-row reads.
    /// Row-for-row decision- and error-equivalent to `allows_fact_row`
    /// against the same cube (the serial reference keeps calling that
    /// name-based method directly, so the two paths stay comparable).
    pub fn resolve_for_fact<'a>(
        &'a self,
        cube: &'a Cube,
        fact: &str,
    ) -> Result<ResolvedViewCheck<'a>, OlapError> {
        let fact_table = cube.fact_table(fact)?;
        let selection = self.fact_selections.get(fact).map(|selection| {
            let remaps: Vec<&RowRemap> = if selection.version < fact_table.compaction_version() {
                fact_table
                    .remaps_from(selection.version)
                    .iter()
                    .rev()
                    .map(|r| r.as_ref())
                    .collect()
            } else {
                Vec::new()
            };
            (&selection.rows, remaps)
        });
        let fact_def = cube
            .schema()
            .fact(fact)
            .ok_or_else(|| OlapError::UnknownElement {
                kind: "fact",
                name: fact.to_string(),
            })?;
        let mut dimensions = Vec::new();
        for dimension in &fact_def.dimensions {
            if let Some(selected) = self.dimension_selections.get(dimension) {
                dimensions.push((
                    dimension.as_str(),
                    fact_table.table.column_index(&fk_column(dimension)),
                    selected,
                ));
            }
        }
        Ok(ResolvedViewCheck {
            selection,
            dimensions,
        })
    }

    /// Counts the fact rows visible through the view (retracted rows are
    /// invisible to everyone).
    pub fn visible_fact_count(&self, cube: &Cube, fact: &str) -> Result<usize, OlapError> {
        let table = &cube.fact_table(fact)?.table;
        let mut count = 0;
        for row in 0..table.len() {
            if table.is_live(row) && self.allows_fact_row(cube, fact, row)? {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Merges another view into this one (intersection semantics per
    /// dimension and per fact).
    pub fn merge(&mut self, other: &InstanceView) {
        for (dim, members) in &other.dimension_selections {
            self.select_dimension_members(dim.clone(), members.iter().copied());
        }
        for (fact, selection) in &other.fact_selections {
            self.select_fact_rows_at(
                fact.clone(),
                selection.version,
                selection.rows.iter().copied(),
            );
        }
    }
}

/// A view's per-fact row check with the name lookups resolved once, by
/// [`InstanceView::resolve_for_fact`]: scans then test each row with
/// [`ResolvedViewCheck::allows`] through typed FK column reads instead
/// of per-row name-based `fact_member` lookups (and without re-fetching
/// the fact table or its remap chain on every row).
pub struct ResolvedViewCheck<'a> {
    /// The fact's allowed row set plus the remap transitions a queried
    /// id must walk backwards through (newest first) to reach the
    /// selection's numbering. `None` when the fact is unrestricted.
    selection: Option<(&'a BTreeSet<usize>, Vec<&'a RowRemap>)>,
    /// `(dimension, FK column index, allowed members)` per restricted
    /// dimension the fact references. A `None` index falls back to the
    /// name-based read, which reports the reference path's error.
    dimensions: Vec<(&'a str, Option<usize>, &'a BTreeSet<usize>)>,
}

impl ResolvedViewCheck<'_> {
    /// Returns `true` when the fact row is visible — the resolved form
    /// of [`InstanceView::allows_fact_row`] on the cube this check was
    /// built against (`fact_table` must be that cube's table for the
    /// same fact).
    pub fn allows(
        &self,
        cube: &Cube,
        fact: &str,
        fact_table: &Table,
        fact_row: usize,
    ) -> Result<bool, OlapError> {
        if let Some((rows, remaps)) = &self.selection {
            let mut row = Some(fact_row);
            for remap in remaps {
                row = row.and_then(|r| remap.old_id(r));
            }
            match row {
                Some(row) if rows.contains(&row) => {}
                _ => return Ok(false),
            }
        }
        for (dimension, fk, allowed) in &self.dimensions {
            let member = match fk {
                Some(index) => {
                    let column = fact_table.column_at(*index);
                    match column.get_number(fact_row) {
                        Some(member) => member as usize,
                        None => {
                            return Err(OlapError::TypeMismatch {
                                expected: "integer foreign key",
                                found: column.get(fact_row).type_name().to_string(),
                            })
                        }
                    }
                }
                None => cube.fact_member(fact, fact_row, dimension)?,
            };
            if !allowed.contains(&member) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;
    use sdwp_geometry::Point;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    fn small_cube() -> Cube {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .build(),
            )
            .dimension(
                DimensionBuilder::new("Time")
                    .level(
                        "Day",
                        vec![sdwp_model::Attribute::descriptor(
                            "date",
                            AttributeType::Date,
                        )],
                    )
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .dimension("Time")
                    .build(),
            )
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        for i in 0..4 {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64, 0.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        for d in 0..2 {
            cube.add_dimension_member("Time", vec![("Day.date", CellValue::Date(d))])
                .unwrap();
        }
        // One fact row per (store, day) pair.
        for s in 0..4 {
            for d in 0..2 {
                cube.add_fact_row(
                    "Sales",
                    vec![("Store", s), ("Time", d as usize)],
                    vec![("UnitSales", CellValue::Float(1.0))],
                )
                .unwrap();
            }
        }
        cube
    }

    #[test]
    fn unrestricted_view_allows_everything() {
        let cube = small_cube();
        let view = InstanceView::unrestricted();
        assert!(view.is_unrestricted());
        assert!(view.allows_member("Store", 3));
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 8);
    }

    #[test]
    fn dimension_selection_restricts_facts() {
        let cube = small_cube();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1]);
        assert!(!view.is_unrestricted());
        assert!(view.allows_member("Store", 0));
        assert!(!view.allows_member("Store", 2));
        assert!(view.allows_member("Time", 0)); // unrestricted dimension
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 4);
        assert_eq!(view.restricted_dimensions(), vec!["Store"]);
        assert_eq!(view.selected_members("Store").unwrap().len(), 2);
    }

    #[test]
    fn repeated_selections_intersect() {
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", vec![0, 1, 2]);
        view.select_dimension_members("Store", vec![1, 2, 3]);
        assert_eq!(
            view.selected_members("Store")
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn fact_row_selection() {
        let cube = small_cube();
        let mut view = InstanceView::unrestricted();
        view.select_fact_rows("Sales", vec![0, 1, 2]);
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 3);
        // Combining with a dimension restriction narrows further: rows 0..3
        // belong to stores 0 and 1 (two rows each).
        view.select_dimension_members("Store", vec![1]);
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 1);
    }

    #[test]
    fn merge_applies_intersection_semantics() {
        let cube = small_cube();
        let mut a = InstanceView::unrestricted();
        a.select_dimension_members("Store", vec![0, 1, 2]);
        let mut b = InstanceView::unrestricted();
        b.select_dimension_members("Store", vec![2, 3]);
        b.select_fact_rows("Sales", vec![4, 5]);
        a.merge(&b);
        assert_eq!(
            a.selected_members("Store")
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![2]
        );
        // Fact rows 4 and 5 belong to store 2 → both visible.
        assert_eq!(a.visible_fact_count(&cube, "Sales").unwrap(), 2);
    }

    #[test]
    fn empty_selection_hides_everything() {
        let cube = small_cube();
        let mut view = InstanceView::unrestricted();
        view.select_dimension_members("Store", Vec::<usize>::new());
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 0);
    }

    #[test]
    fn unknown_fact_is_an_error() {
        let cube = small_cube();
        let view = InstanceView::unrestricted();
        assert!(view.allows_fact_row(&cube, "Returns", 0).is_err());
    }

    #[test]
    fn stale_selections_survive_compaction_via_the_remap_chain() {
        let mut cube = small_cube();
        // Select fact rows 2, 3 and 5 (stores 1 and 2), then retract rows
        // 0, 3 and 6 and compact: old ids 1,2,4,5,7 → new ids 0..5.
        let mut view = InstanceView::unrestricted();
        view.select_fact_rows("Sales", vec![2, 3, 5]);
        cube.retract_fact_row("Sales", 0).unwrap();
        cube.retract_fact_row("Sales", 3).unwrap();
        cube.retract_fact_row("Sales", 6).unwrap();
        let visible_before = view.visible_fact_count(&cube, "Sales").unwrap();
        assert_eq!(visible_before, 2, "rows 2 and 5 are live, 3 is dead");
        cube.compact_fact_table("Sales").unwrap();
        // The *stale* view (version 0) still resolves the same live rows
        // through the remap chain: old 2 → new 1, old 5 → new 3.
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 2);
        assert!(view.allows_fact_row(&cube, "Sales", 1).unwrap());
        assert!(view.allows_fact_row(&cube, "Sales", 3).unwrap());
        assert!(!view.allows_fact_row(&cube, "Sales", 0).unwrap());
        // Rows appended after the compaction are invisible to the closed
        // selection.
        cube.add_fact_row(
            "Sales",
            vec![("Store", 0), ("Time", 0)],
            vec![("UnitSales", CellValue::Float(9.0))],
        )
        .unwrap();
        assert!(!view.allows_fact_row(&cube, "Sales", 5).unwrap());

        // Eagerly remapping the view gives the same answers on the
        // version-aligned fast path.
        let remap = cube.fact_table("Sales").unwrap().remaps[0].clone();
        let mut remapped = view.clone();
        remapped.remap_fact_rows("Sales", &remap, 0);
        assert_eq!(remapped.fact_selection_version("Sales"), Some(1));
        assert_eq!(
            remapped
                .selected_fact_rows("Sales")
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(remapped.visible_fact_count(&cube, "Sales").unwrap(), 2);
        // Remapping at a non-matching version is a no-op.
        let mut untouched = remapped.clone();
        untouched.remap_fact_rows("Sales", &remap, 0);
        assert_eq!(untouched, remapped);

        // A second compaction chains: retract new row 1 (old 2) and
        // compact again; the original version-0 view still sees old 5.
        cube.retract_fact_row("Sales", 1).unwrap();
        cube.compact_fact_table("Sales").unwrap();
        assert_eq!(view.visible_fact_count(&cube, "Sales").unwrap(), 1);
        assert_eq!(remapped.visible_fact_count(&cube, "Sales").unwrap(), 1);
    }
}
