//! Spatial selection over cube dimensions and layers.
//!
//! These helpers implement the data-access side of the paper's spatial
//! instance rules: "for every store, the distance to the user is
//! calculated; if this value is less than 5 km, the store is selected".
//! They come in three flavours — a plain scan, an R-tree-accelerated
//! variant and a grid-accelerated variant — so benchmark B2 can compare
//! them.

use crate::cube::{geometry_column, Cube};
use crate::error::OlapError;
use crate::filter::SpatialPredicateOp;
use sdwp_geometry::distance::{distance, DistanceMetric};
use sdwp_geometry::{Geometry, Point};
use sdwp_index::{GridIndex, IndexEntry, RTree, SpatialQuery};

/// Reads every non-null geometry of a dimension level, paired with its
/// member row id.
pub fn level_geometries(
    cube: &Cube,
    dimension: &str,
    level: &str,
) -> Result<Vec<(usize, Geometry)>, OlapError> {
    let table = &cube.dimension_table(dimension)?.table;
    let column = table.column(&geometry_column(level))?;
    let mut out = Vec::new();
    for row in 0..table.len() {
        if let Some(g) = column.get_geometry(row) {
            out.push((row, g.clone()));
        }
    }
    Ok(out)
}

/// Reads every geometry of a layer table, paired with its row id.
pub fn layer_geometries(cube: &Cube, layer: &str) -> Result<Vec<(usize, Geometry)>, OlapError> {
    let table = &cube.layer_table(layer)?.table;
    let column = table.column("geometry")?;
    let mut out = Vec::new();
    for row in 0..table.len() {
        if let Some(g) = column.get_geometry(row) {
            out.push((row, g.clone()));
        }
    }
    Ok(out)
}

/// Builds an R-tree over the bounding boxes of a dimension level's
/// geometries; payloads are member row ids.
pub fn build_level_rtree(
    cube: &Cube,
    dimension: &str,
    level: &str,
) -> Result<RTree<usize>, OlapError> {
    let table = &cube.dimension_table(dimension)?.table;
    let column = table.column(&geometry_column(level))?;
    let mut entries = Vec::new();
    for row in 0..table.len() {
        if let Some(bbox) = column.get_geometry(row).and_then(Geometry::bbox) {
            entries.push(IndexEntry::new(bbox, row));
        }
    }
    Ok(RTree::bulk_load(entries))
}

/// Builds a uniform-grid index over a dimension level's geometries.
pub fn build_level_grid(
    cube: &Cube,
    dimension: &str,
    level: &str,
    cell_size: f64,
) -> Result<GridIndex<usize>, OlapError> {
    let table = &cube.dimension_table(dimension)?.table;
    let column = table.column(&geometry_column(level))?;
    let mut entries = Vec::new();
    for row in 0..table.len() {
        if let Some(bbox) = column.get_geometry(row).and_then(Geometry::bbox) {
            entries.push(IndexEntry::new(bbox, row));
        }
    }
    Ok(GridIndex::bulk_load(cell_size, entries))
}

/// Scan variant: member row ids whose geometry lies strictly within
/// `max_distance` of `target`.
pub fn members_within_distance(
    cube: &Cube,
    dimension: &str,
    level: &str,
    target: &Geometry,
    max_distance: f64,
    metric: DistanceMetric,
) -> Result<Vec<usize>, OlapError> {
    let table = &cube.dimension_table(dimension)?.table;
    let column = table.column(&geometry_column(level))?;
    let mut out = Vec::new();
    for row in 0..table.len() {
        if let Some(g) = column.get_geometry(row) {
            if distance(g, target, metric) < max_distance {
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Index-accelerated variant of [`members_within_distance`]: the index
/// prunes candidates by bounding box, then the exact distance refines.
pub fn members_within_distance_indexed(
    cube: &Cube,
    dimension: &str,
    level: &str,
    index: &dyn SpatialQuery<usize>,
    target: &Geometry,
    max_distance: f64,
    metric: DistanceMetric,
) -> Result<Vec<usize>, OlapError> {
    let table = &cube.dimension_table(dimension)?.table;
    let column = table.column(&geometry_column(level))?;
    let center = target
        .representative_coord()
        .unwrap_or(sdwp_geometry::Coord::new(0.0, 0.0));
    // Geodetic metrics need a wider candidate window than planar ones; use
    // the bounding-box distance only as a pre-filter in planar mode.
    let candidates: Vec<usize> = match metric {
        DistanceMetric::Euclidean => index
            .query_within_distance(&center, max_distance)
            .into_iter()
            .copied()
            .collect(),
        DistanceMetric::HaversineKm => {
            let deg = sdwp_geometry::haversine::km_to_deg_lon(max_distance, center.y)
                .max(sdwp_geometry::haversine::km_to_deg_lat(max_distance));
            index
                .query_within_distance(&center, deg)
                .into_iter()
                .copied()
                .collect()
        }
    };
    let mut out: Vec<usize> = candidates
        .into_iter()
        .filter(|&row| {
            column
                .get_geometry(row)
                .map(|g| distance(g, target, metric) < max_distance)
                .unwrap_or(false)
        })
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Member row ids whose geometry satisfies `op` against `target`.
pub fn members_matching_predicate(
    cube: &Cube,
    dimension: &str,
    level: &str,
    op: SpatialPredicateOp,
    target: &Geometry,
) -> Result<Vec<usize>, OlapError> {
    let table = &cube.dimension_table(dimension)?.table;
    let column = table.column(&geometry_column(level))?;
    let mut out = Vec::new();
    for row in 0..table.len() {
        if let Some(g) = column.get_geometry(row) {
            if op.eval(g, target) {
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// The k members of a level nearest to a point, by exact geometry distance.
pub fn nearest_members(
    cube: &Cube,
    dimension: &str,
    level: &str,
    target: &Point,
    k: usize,
) -> Result<Vec<usize>, OlapError> {
    let geometries = level_geometries(cube, dimension, level)?;
    let target_geom: Geometry = (*target).into();
    let mut with_d: Vec<(f64, usize)> = geometries
        .into_iter()
        .map(|(row, g)| (distance(&g, &target_geom, DistanceMetric::Euclidean), row))
        .collect();
    with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    Ok(with_d.into_iter().take(k).map(|(_, row)| row).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;
    use sdwp_model::{AttributeType, DimensionBuilder, FactBuilder, SchemaBuilder};

    fn cube_with_stores(n: usize) -> Cube {
        let schema = SchemaBuilder::new("DW")
            .dimension(
                DimensionBuilder::new("Store")
                    .simple_level("Store", "name")
                    .simple_level("City", "name")
                    .build(),
            )
            .fact(
                FactBuilder::new("Sales")
                    .measure("UnitSales", AttributeType::Float)
                    .dimension("Store")
                    .build(),
            )
            .layer("Airport", sdwp_geometry::GeometricType::Point)
            .build()
            .unwrap();
        let mut cube = Cube::new(schema);
        for i in 0..n {
            cube.add_dimension_member(
                "Store",
                vec![
                    ("Store.name", CellValue::from(format!("S{i}"))),
                    (
                        "Store.geometry",
                        CellValue::Geometry(Point::new(i as f64, 0.0).into()),
                    ),
                ],
            )
            .unwrap();
        }
        cube.add_layer_instance("Airport", "ALC", Point::new(2.0, 2.0).into())
            .unwrap();
        cube
    }

    #[test]
    fn scan_and_indexed_selection_agree() {
        let cube = cube_with_stores(50);
        let user: Geometry = Point::new(10.0, 0.0).into();
        let scan = members_within_distance(
            &cube,
            "Store",
            "Store",
            &user,
            5.0,
            DistanceMetric::Euclidean,
        )
        .unwrap();
        let rtree = build_level_rtree(&cube, "Store", "Store").unwrap();
        let via_rtree = members_within_distance_indexed(
            &cube,
            "Store",
            "Store",
            &rtree,
            &user,
            5.0,
            DistanceMetric::Euclidean,
        )
        .unwrap();
        let grid = build_level_grid(&cube, "Store", "Store", 5.0).unwrap();
        let via_grid = members_within_distance_indexed(
            &cube,
            "Store",
            "Store",
            &grid,
            &user,
            5.0,
            DistanceMetric::Euclidean,
        )
        .unwrap();
        assert_eq!(scan, via_rtree);
        assert_eq!(scan, via_grid);
        // Stores 6..14 are strictly within 5 km of x=10.
        assert_eq!(scan, (6..=14).collect::<Vec<_>>());
    }

    #[test]
    fn geometries_accessors() {
        let cube = cube_with_stores(3);
        let level = level_geometries(&cube, "Store", "Store").unwrap();
        assert_eq!(level.len(), 3);
        // The City level has no geometry values loaded.
        assert!(level_geometries(&cube, "Store", "City").unwrap().is_empty());
        let layer = layer_geometries(&cube, "Airport").unwrap();
        assert_eq!(layer.len(), 1);
        assert!(layer_geometries(&cube, "Train").is_err());
    }

    #[test]
    fn predicate_selection() {
        let cube = cube_with_stores(10);
        let region: Geometry = sdwp_geometry::Polygon::from_tuples(&[
            (2.5, -1.0),
            (6.5, -1.0),
            (6.5, 1.0),
            (2.5, 1.0),
        ])
        .unwrap()
        .into();
        let inside = members_matching_predicate(
            &cube,
            "Store",
            "Store",
            SpatialPredicateOp::Inside,
            &region,
        )
        .unwrap();
        assert_eq!(inside, vec![3, 4, 5, 6]);
        let disjoint = members_matching_predicate(
            &cube,
            "Store",
            "Store",
            SpatialPredicateOp::Disjoint,
            &region,
        )
        .unwrap();
        assert_eq!(disjoint.len(), 6);
    }

    #[test]
    fn nearest_members_ordering() {
        let cube = cube_with_stores(10);
        let nearest = nearest_members(&cube, "Store", "Store", &Point::new(7.2, 0.0), 3).unwrap();
        assert_eq!(nearest, vec![7, 8, 6]);
        // k larger than the population returns everything.
        assert_eq!(
            nearest_members(&cube, "Store", "Store", &Point::new(0.0, 0.0), 100)
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn haversine_indexed_selection() {
        let cube = cube_with_stores(20);
        let rtree = build_level_rtree(&cube, "Store", "Store").unwrap();
        let user: Geometry = Point::new(0.0, 0.0).into();
        // 150 km at the equator is roughly 1.35 degrees of longitude: only
        // stores 0 and 1 qualify (stores sit 1 degree apart).
        let rows = members_within_distance_indexed(
            &cube,
            "Store",
            "Store",
            &rtree,
            &user,
            150.0,
            DistanceMetric::HaversineKm,
        )
        .unwrap();
        let scan = members_within_distance(
            &cube,
            "Store",
            "Store",
            &user,
            150.0,
            DistanceMetric::HaversineKm,
        )
        .unwrap();
        assert_eq!(rows, scan);
        assert_eq!(rows, vec![0, 1]);
    }
}
