//! OLAP queries and their results.

use crate::filter::Filter;
use crate::value::CellValue;
use sdwp_model::AggregationFunction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a level attribute used as a group-by key
/// (e.g. `Store / City / name` — roll up sales to cities).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeRef {
    /// Dimension name.
    pub dimension: String,
    /// Level name within the dimension.
    pub level: String,
    /// Attribute name within the level.
    pub attribute: String,
}

impl AttributeRef {
    /// Creates an attribute reference.
    pub fn new(
        dimension: impl Into<String>,
        level: impl Into<String>,
        attribute: impl Into<String>,
    ) -> Self {
        AttributeRef {
            dimension: dimension.into(),
            level: level.into(),
            attribute: attribute.into(),
        }
    }

    /// Display label of the reference (`"Store.City.name"`).
    pub fn label(&self) -> String {
        format!("{}.{}.{}", self.dimension, self.level, self.attribute)
    }
}

/// A reference to a measure with an optional aggregation override.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasureRef {
    /// Measure name.
    pub measure: String,
    /// Aggregation override; `None` uses the measure's default.
    pub aggregation: Option<AggregationFunction>,
}

impl MeasureRef {
    /// References a measure with its default aggregation.
    pub fn new(measure: impl Into<String>) -> Self {
        MeasureRef {
            measure: measure.into(),
            aggregation: None,
        }
    }

    /// References a measure with an explicit aggregation.
    pub fn with_aggregation(measure: impl Into<String>, aggregation: AggregationFunction) -> Self {
        MeasureRef {
            measure: measure.into(),
            aggregation: Some(aggregation),
        }
    }
}

/// A group-by aggregation query over one fact.
///
/// Rolling up to a coarser level is expressed by grouping on that level's
/// descriptor; slicing/dicing is expressed through `dimension_filters`
/// (attribute or spatial predicates on dimension members) and
/// `fact_filter` (predicates on measures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The fact to aggregate.
    pub fact: String,
    /// Group-by keys.
    pub group_by: Vec<AttributeRef>,
    /// Measures to aggregate.
    pub measures: Vec<MeasureRef>,
    /// Filters on dimension members, as `(dimension, filter)` pairs.
    pub dimension_filters: Vec<(String, Filter)>,
    /// Filter on fact rows (measure columns / foreign keys).
    pub fact_filter: Option<Filter>,
    /// Optional cap on the number of result rows (after sorting).
    pub limit: Option<usize>,
}

impl Query {
    /// Starts a query over the given fact.
    pub fn over(fact: impl Into<String>) -> Self {
        Query {
            fact: fact.into(),
            group_by: Vec::new(),
            measures: Vec::new(),
            dimension_filters: Vec::new(),
            fact_filter: None,
            limit: None,
        }
    }

    /// Adds a group-by key.
    pub fn group_by(mut self, attr: AttributeRef) -> Self {
        self.group_by.push(attr);
        self
    }

    /// Adds a measure with its default aggregation.
    pub fn measure(mut self, measure: impl Into<String>) -> Self {
        self.measures.push(MeasureRef::new(measure));
        self
    }

    /// Adds a measure with an explicit aggregation.
    pub fn measure_agg(
        mut self,
        measure: impl Into<String>,
        aggregation: AggregationFunction,
    ) -> Self {
        self.measures
            .push(MeasureRef::with_aggregation(measure, aggregation));
        self
    }

    /// Adds a filter over a dimension's members (slice/dice).
    pub fn filter_dimension(mut self, dimension: impl Into<String>, filter: Filter) -> Self {
        self.dimension_filters.push((dimension.into(), filter));
        self
    }

    /// Sets the fact-row filter.
    pub fn filter_fact(mut self, filter: Filter) -> Self {
        self.fact_filter = Some(filter);
        self
    }

    /// Caps the number of result rows.
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// A canonical text form of the query, used as a result-cache key.
    ///
    /// Dimension filters are conjunctive, so their order does not affect
    /// the result; sorting them by dimension name lets two queries that
    /// differ only in filter order share a cache entry. Everything else is
    /// order-sensitive (group-by and measure order shape the result) and
    /// is kept as written.
    pub fn canonical_key(&self) -> String {
        let mut canonical = self.clone();
        canonical
            .dimension_filters
            .sort_by(|(a, _), (b, _)| a.cmp(b));
        format!("{canonical:?}")
    }
}

/// One row of a query result: group-key values plus aggregated measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// The group-by key values, in query order.
    pub keys: Vec<CellValue>,
    /// The aggregated measure values, in query order.
    pub values: Vec<CellValue>,
}

/// The result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Labels of the group-by keys.
    pub key_names: Vec<String>,
    /// Labels of the aggregated measures.
    pub value_names: Vec<String>,
    /// Result rows, sorted by key for determinism.
    pub rows: Vec<ResultRow>,
    /// Number of fact rows examined (after the view restriction).
    pub facts_scanned: usize,
    /// Number of fact rows that passed every filter.
    pub facts_matched: usize,
}

impl QueryResult {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finds the row with the given key values.
    pub fn find(&self, keys: &[CellValue]) -> Option<&ResultRow> {
        self.rows.iter().find(|r| r.keys == keys)
    }

    /// Sums a measure column (by index) across all rows.
    pub fn column_total(&self, value_index: usize) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.values.get(value_index))
            .filter_map(CellValue::as_number)
            .sum()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header: Vec<String> = self
            .key_names
            .iter()
            .chain(self.value_names.iter())
            .cloned()
            .collect();
        writeln!(f, "{}", header.join(" | "))?;
        writeln!(f, "{}", "-".repeat(header.join(" | ").len().max(8)))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .keys
                .iter()
                .chain(row.values.iter())
                .map(CellValue::to_string)
                .collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        write!(
            f,
            "({} rows, {} of {} facts matched)",
            self.rows.len(),
            self.facts_matched,
            self.facts_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_ref_label() {
        let a = AttributeRef::new("Store", "City", "name");
        assert_eq!(a.label(), "Store.City.name");
    }

    #[test]
    fn measure_ref_constructors() {
        let m = MeasureRef::new("UnitSales");
        assert!(m.aggregation.is_none());
        let m2 = MeasureRef::with_aggregation("UnitSales", AggregationFunction::Avg);
        assert_eq!(m2.aggregation, Some(AggregationFunction::Avg));
    }

    #[test]
    fn query_builder() {
        let q = Query::over("Sales")
            .group_by(AttributeRef::new("Store", "City", "name"))
            .measure("UnitSales")
            .measure_agg("StoreCost", AggregationFunction::Avg)
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"))
            .limit(10);
        assert_eq!(q.fact, "Sales");
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.measures.len(), 2);
        assert_eq!(q.dimension_filters.len(), 1);
        assert_eq!(q.limit, Some(10));
        assert!(q.fact_filter.is_none());
    }

    #[test]
    fn canonical_key_is_order_insensitive_for_filters_only() {
        let a = Query::over("Sales")
            .measure("UnitSales")
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"))
            .filter_dimension("Time", Filter::eq("Day.date", CellValue::Date(1)));
        let b = Query::over("Sales")
            .measure("UnitSales")
            .filter_dimension("Time", Filter::eq("Day.date", CellValue::Date(1)))
            .filter_dimension("Store", Filter::eq("City.name", "Alicante"));
        assert_eq!(a.canonical_key(), b.canonical_key());
        // Measure order shapes the result, so it must stay significant.
        let c = Query::over("Sales").measure("UnitSales").measure("Cost");
        let d = Query::over("Sales").measure("Cost").measure("UnitSales");
        assert_ne!(c.canonical_key(), d.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn result_helpers() {
        let result = QueryResult {
            key_names: vec!["city".into()],
            value_names: vec!["sum(UnitSales)".into()],
            rows: vec![
                ResultRow {
                    keys: vec![CellValue::from("Alicante")],
                    values: vec![CellValue::Float(10.0)],
                },
                ResultRow {
                    keys: vec![CellValue::from("Madrid")],
                    values: vec![CellValue::Float(5.0)],
                },
            ],
            facts_scanned: 7,
            facts_matched: 6,
        };
        assert_eq!(result.len(), 2);
        assert!(!result.is_empty());
        assert!(result.find(&[CellValue::from("Madrid")]).is_some());
        assert!(result.find(&[CellValue::from("Valencia")]).is_none());
        assert_eq!(result.column_total(0), 15.0);
        let rendered = result.to_string();
        assert!(rendered.contains("city | sum(UnitSales)"));
        assert!(rendered.contains("Alicante"));
        assert!(rendered.contains("6 of 7 facts matched"));
    }
}
