//! Errors raised by the OLAP engine.

use std::fmt;

/// Errors raised while building cubes or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum OlapError {
    /// A referenced column does not exist in a table.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A referenced dimension, level, layer or measure does not exist.
    UnknownElement {
        /// The kind of element.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A row had the wrong number of values or a wrong value type.
    RowShape {
        /// Description of the mismatch.
        message: String,
    },
    /// A value had an unexpected type.
    TypeMismatch {
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// The query was structurally invalid.
    InvalidQuery {
        /// Description of the problem.
        message: String,
    },
    /// The query's deadline expired before the scan completed. The
    /// execution left no partial state behind: nothing was cached, and
    /// the admission slot was released.
    DeadlineExceeded,
    /// A participant of the query's morsel scan panicked. The panic was
    /// contained to this query — the worker pool keeps serving — but
    /// its morsel set is incomplete, so no result can be merged.
    ExecutionPanicked,
}

impl fmt::Display for OlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OlapError::UnknownColumn { table, column } => {
                write!(f, "table '{table}' has no column '{column}'")
            }
            OlapError::UnknownElement { kind, name } => write!(f, "unknown {kind} '{name}'"),
            OlapError::RowShape { message } => write!(f, "bad row: {message}"),
            OlapError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            OlapError::InvalidQuery { message } => write!(f, "invalid query: {message}"),
            OlapError::DeadlineExceeded => {
                write!(f, "query deadline exceeded before the scan completed")
            }
            OlapError::ExecutionPanicked => {
                write!(
                    f,
                    "query execution panicked; the panic was contained to this query"
                )
            }
        }
    }
}

impl std::error::Error for OlapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            OlapError::UnknownColumn {
                table: "Store".into(),
                column: "zip".into()
            }
            .to_string(),
            "table 'Store' has no column 'zip'"
        );
        assert!(OlapError::InvalidQuery {
            message: "no measures".into()
        }
        .to_string()
        .contains("no measures"));
        assert!(OlapError::TypeMismatch {
            expected: "geometry",
            found: "text".into()
        }
        .to_string()
        .contains("geometry"));
    }

    #[test]
    fn implements_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&OlapError::RowShape {
            message: "x".into(),
        });
    }
}
